"""AdaptiveBatcher: deterministic grow/shrink control law."""

import pytest

from repro.bft.cop import AdaptiveBatcher


class TestControlLaw:
    def test_starts_at_floor(self):
        b = AdaptiveBatcher(floor=2, ceiling=16)
        assert b.limit == 2

    def test_grows_when_demand_exceeds_limit(self):
        b = AdaptiveBatcher(floor=1, ceiling=16)
        assert b.observe(5) == 2  # 5 > 1: double
        assert b.observe(5) == 4
        assert b.observe(5) == 8
        assert b.observe(5) == 8  # 5 <= 8: steady
        assert b.grow_count == 3

    def test_growth_capped_at_ceiling(self):
        b = AdaptiveBatcher(floor=1, ceiling=6)
        for _ in range(5):
            b.observe(100)
        assert b.limit == 6

    def test_backpressure_forces_growth_regardless_of_depth(self):
        # Outbox high-watermark means the network is the bottleneck:
        # batch harder even though the local queue looks shallow.
        b = AdaptiveBatcher(floor=1, ceiling=8)
        assert b.observe(0, backpressure=True) == 2
        assert b.observe(0, backpressure=True) == 4

    def test_shrinks_only_after_patience(self):
        b = AdaptiveBatcher(floor=1, ceiling=16, shrink_patience=3)
        for _ in range(4):
            b.observe(100)
        assert b.limit == 16
        assert b.observe(0) == 16
        assert b.observe(0) == 16
        assert b.observe(0) == 8  # third idle observation: halve
        assert b.shrink_count == 1

    def test_moderate_load_resets_idle_streak(self):
        b = AdaptiveBatcher(floor=1, ceiling=8, shrink_patience=2)
        for _ in range(3):
            b.observe(100)
        assert b.limit == 8
        b.observe(0)
        b.observe(7)  # >= limit//2: busy enough, streak resets
        b.observe(0)
        assert b.limit == 8  # never hit two consecutive idles

    def test_shrink_floored(self):
        b = AdaptiveBatcher(floor=3, ceiling=12, shrink_patience=1)
        b.observe(100)
        b.observe(100)
        assert b.limit == 12
        for _ in range(10):
            b.observe(0)
        assert b.limit == 3

    def test_deterministic_replay(self):
        # Pure function of the observation sequence: two controllers
        # fed the same trace agree at every step.
        trace = [0, 5, 9, 2, 0, 0, 0, 12, 1, 0, 0, 3, 8, 0]
        a = AdaptiveBatcher(floor=1, ceiling=16, shrink_patience=2)
        b = AdaptiveBatcher(floor=1, ceiling=16, shrink_patience=2)
        assert [a.observe(d) for d in trace] == [
            b.observe(d) for d in trace
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveBatcher(floor=0, ceiling=4)
        with pytest.raises(ValueError):
            AdaptiveBatcher(floor=4, ceiling=2)
        with pytest.raises(ValueError):
            AdaptiveBatcher(floor=1, ceiling=4, shrink_patience=0)
        with pytest.raises(ValueError):
            AdaptiveBatcher(floor=1, ceiling=4).observe(-1)
