"""Simulated hardware substrate: CPUs, NICs, links, hosts and fabrics.

This layer replaces the paper's physical testbed (two 4-core Xeon v2
machines, Mellanox MT27520 RoCE NICs, one 10 Gbps full-duplex link) with
calibrated cost models — see DESIGN.md §2 for the substitution rationale
and ``repro.bench.calibration`` for the constants.
"""

from repro.net.cpu import Cpu, CpuCosts
from repro.net.fabric import Fabric
from repro.net.faults import (
    FaultyFabric,
    HostFaultController,
    LinkFaultController,
    link_seed,
)
from repro.net.frame import ETHERNET_HEADER_BYTES, Frame
from repro.net.host import Host
from repro.net.link import GIGABIT, TEN_GIGABIT, DuplexLink, Link
from repro.net.nic import Nic

__all__ = [
    "Cpu",
    "CpuCosts",
    "Fabric",
    "FaultyFabric",
    "HostFaultController",
    "LinkFaultController",
    "link_seed",
    "Frame",
    "ETHERNET_HEADER_BYTES",
    "Host",
    "Link",
    "DuplexLink",
    "GIGABIT",
    "TEN_GIGABIT",
    "Nic",
]
