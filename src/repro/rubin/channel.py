"""RDMA channels: the RUBIN counterpart of NIO socket channels.

"An RDMA channel represents an RDMA connection.  The abstraction behaves
similar to a non-blocking NIO socket channel, which offers read() and
write() methods, and includes all necessary RDMA resources such as QPs and
WRs.  When an RDMA channel is created, the list of buffers that the
application will use for send and receive operations is also allocated and
registered" (paper, Section III-B).

The channel implements all four Section-IV optimizations (driven by
:class:`~repro.rubin.config.RubinConfig`):

* pre-registered, reusable buffer pools;
* batched re-posting of receive work requests;
* selective signaling for sends;
* inline sends below the threshold, zero-copy gather from the (once-)
  registered application buffer above it — while receives still copy out
  of the pool buffer, the documented large-message bottleneck.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from repro.errors import RubinError
from repro.nio.buffer import ByteBuffer
from repro.rdma.cm import CmEvent, ConnectionManager, ConnectRequest
from repro.rdma.cq import CompletionQueue
from repro.rdma.verbs import Opcode, QpState, WcStatus
from repro.rdma.wr import RecvWorkRequest, SendWorkRequest, Sge
from repro.rubin.buffer_pool import BufferPool, PooledBuffer
from repro.rubin.config import RubinConfig
from repro.sim import Counter, TimeSeries
from repro.sim.copystats import COPYSTATS
from repro.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.host import Host
    from repro.rdma.device import RdmaDevice
    from repro.sim import Environment, Event

__all__ = ["RubinChannel", "RubinServerChannel"]

_channel_ids = itertools.count(1)


class _InboundMessage:
    """A received message parked in its pool buffer until read out."""

    __slots__ = ("pooled", "offset", "remaining", "trace_ctx")

    def __init__(self, pooled: PooledBuffer, length: int, trace_ctx=None):
        self.pooled = pooled
        self.offset = 0
        self.remaining = length
        self.trace_ctx = trace_ctx


class RubinChannel:
    """A connected RDMA channel with NIO-style non-blocking read/write."""

    def __init__(
        self,
        device: "RdmaDevice",
        cm: ConnectionManager,
        config: Optional[RubinConfig] = None,
    ):
        self.device = device
        self.cm = cm
        self.host: "Host" = device.host
        self.env: "Environment" = device.env
        self.config = config if config is not None else RubinConfig()
        #: The unique connection identifier of the paper.
        self.channel_id = next(_channel_ids)

        self.pd = device.alloc_pd()
        self.send_cq: CompletionQueue = device.create_cq(
            name=f"ch{self.channel_id}.send"
        )
        self.recv_cq: CompletionQueue = device.create_cq(
            name=f"ch{self.channel_id}.recv"
        )
        self.qp = self._make_qp()

        # Buffer pools, allocated and registered at creation (paper §III-B);
        # the pin/map cost is charged asynchronously on this host's CPU.
        self.recv_pool = BufferPool(
            device,
            self.pd,
            self.config.num_recv_buffers,
            self.config.buffer_size,
            name=f"ch{self.channel_id}.recv_pool",
        )
        self.send_pool = BufferPool(
            device,
            self.pd,
            self.config.num_send_buffers,
            self.config.buffer_size,
            name=f"ch{self.channel_id}.send_pool",
        )
        self._charge_registration_cost()

        # Receive-side state.
        self._recv_wr_map: Dict[int, PooledBuffer] = {}
        self._ready_messages: Deque[_InboundMessage] = deque()
        self._repost_backlog: List[PooledBuffer] = []
        self._next_wr_id = itertools.count(1)

        # Send-side state.
        self._sends_since_signal = 0
        self._send_wr_buffers: Deque[tuple[int, Optional[PooledBuffer]]] = deque()
        self._app_mr_cache: Dict[int, object] = {}
        #: wr_id of the most recently posted send (monotonic across
        #: reconnects; lets callers correlate send completions with the
        #: frames they queued).
        self.last_write_wr_id = 0
        #: Trace context of the most recently read inbound message (set by
        #: ``read()`` so the caller can continue the causal chain).
        self.last_read_trace_ctx = None
        #: Counts application I/O calls (read/write/finish_connect); the
        #: selector-starvation auditor treats a ready key whose marker
        #: never moves as unserviced.
        self.progress_marker = 0
        self._send_watchers: List[Callable[[int], None]] = []

        # Flow-control observability: writes refused for lack of credit
        # or pool buffers, and how long each credit stall lasted.
        self.credit_stalls = Counter(f"ch{self.channel_id}.credit_stalls")
        self.pool_stalls = Counter(f"ch{self.channel_id}.pool_stalls")
        self.credit_stall_time = TimeSeries(
            self.env, f"ch{self.channel_id}.credit_stall_time"
        )
        self._stall_since: Optional[float] = None
        self._stall_span = None
        self._unblock_watchers: List[Callable[[], None]] = []
        #: Credits claimed by in-flight _write_proc instances that passed
        #: the gate but have not reached post_send yet (the QP only
        #: debits at post time, and the posting path yields in between —
        #: without the reservation, concurrent writers would overcommit).
        self._credit_reserved = 0

        # Connection state.
        self.established = False
        self._establish_pending = False
        self.closed = False
        self.errored = False
        #: Remote (host, port) of an active open; None for accepted
        #: channels.  Only actively opened channels can re-dial.
        self.remote_addr: Optional[tuple[str, int]] = None
        self._pending_conn_id: Optional[int] = None
        #: Successful re-establishments of this channel.
        self.reconnects = 0
        #: Cause of the most recent transport error (WcStatus value or
        #: "rejected"); surfaces in the supervisor's reconnect records.
        self.last_error: Optional[str] = None
        self._watchers: List[Callable[[], None]] = []
        cm.add_event_watcher(self._on_cm_event)

        # Pre-post every receive buffer (in device-max batches).
        self._prepost_all_recv_buffers()

    def _make_qp(self):
        """Provision a queue pair sized from the channel config."""
        from repro.rdma.qp import QpCapabilities

        caps_inline = min(
            self.config.inline_threshold, self.device.attrs.max_inline
        )
        qp = self.device.create_qp(
            self.pd,
            self.send_cq,
            self.recv_cq,
            caps=QpCapabilities(
                max_send_wr=self.config.num_send_buffers,
                max_recv_wr=self.config.num_recv_buffers,
                max_inline=caps_inline,
                retry_timeout=self.config.retry_timeout,
                retry_count=self.config.retry_count,
                rnr_retry=self.config.rnr_retry,
                rnr_timer=self.config.min_rnr_timer,
                flow_control=self.config.flow_control,
                # Both ends of a RUBIN connection run the same channel
                # config (the framework provisions them symmetrically),
                # so the peer preposts this many receives.  An asymmetric
                # peer is still safe: credits only ever move up on
                # advertisements, and the RNR machinery backstops an
                # optimistic initial window.
                initial_credit=self.config.num_recv_buffers,
            ),
        )
        qp.add_error_watcher(lambda qp: self._enter_error(qp.error_cause))
        qp.add_credit_watcher(lambda _qp: self._on_credit_granted())
        return qp

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        device: "RdmaDevice",
        cm: ConnectionManager,
        remote_host: str,
        port: int,
        config: Optional[RubinConfig] = None,
    ) -> "RubinChannel":
        """Active open toward ``remote_host:port`` (non-blocking)."""
        channel = cls(device, cm, config)
        channel.remote_addr = (remote_host, port)
        channel._begin_connect()
        return channel

    @classmethod
    def _accept(
        cls,
        device: "RdmaDevice",
        cm: ConnectionManager,
        request: ConnectRequest,
        config: Optional[RubinConfig] = None,
    ) -> "RubinChannel":
        """Passive open from a pending connect request."""
        channel = cls(device, cm, config)
        channel._establish_pending = True
        request.accept(channel.qp)
        return channel

    def _charge_registration_cost(self) -> None:
        """Charge buffer-pool registration on this host's CPU (async)."""
        attrs = self.device.attrs
        pages = self.recv_pool.registration_pages() + self.send_pool.registration_pages()
        cost = (
            2 * self.host.cpu.costs.syscall
            + 2 * attrs.mr_register_base
            + pages * attrs.mr_register_per_page
        )

        def charge():
            yield self.host.cpu.execute(cost)

        self.env.process(charge(), name=f"ch{self.channel_id}.reg_cost")

    def _prepost_all_recv_buffers(self) -> None:
        batch: List[RecvWorkRequest] = []
        limit = min(self.config.post_batch, self.device.attrs.max_post_batch)
        while True:
            pooled = self.recv_pool.try_acquire()
            if pooled is None:
                break
            wr_id = next(self._next_wr_id)
            self._recv_wr_map[wr_id] = pooled
            batch.append(RecvWorkRequest(wr_id=wr_id, sge=Sge(pooled.mr)))
            if len(batch) >= limit:
                self.qp.post_recv_batch(batch)
                batch = []
        if batch:
            self.qp.post_recv_batch(batch)

    # ------------------------------------------------------------------
    # connection state
    # ------------------------------------------------------------------

    def _begin_connect(self) -> int:
        """Start the CM handshake toward :attr:`remote_addr`."""
        assert self.remote_addr is not None
        remote_host, port = self.remote_addr
        self._establish_pending = True
        conn_id, established = self.cm.begin_connect(remote_host, port, self.qp)
        self._pending_conn_id = conn_id
        established.subscribe(self._on_connect_outcome)
        return conn_id

    def _on_connect_outcome(self, event) -> None:
        if not event.ok:
            self._enter_error()
            return
        # ESTABLISHED CmEvent also fires; state set in _on_cm_event.

    def _on_cm_event(self, event: CmEvent) -> None:
        if event.kind == "ESTABLISHED" and event.qp is self.qp:
            self.established = True
            self._pending_conn_id = None
            self._notify()
        elif (
            event.kind == "REJECTED"
            and self._pending_conn_id is not None
            and event.conn_id == self._pending_conn_id
        ):
            # Matched by connection id so a rejection of some *other*
            # channel's handshake on the shared CM cannot error this one.
            if not self.established:
                self._enter_error("rejected")

    def finish_connect(self) -> bool:
        """Consume the OP_ACCEPT readiness; True once established."""
        self.progress_marker += 1
        if self.errored:
            raise RubinError(f"{self}: connection failed")
        if self.established:
            self._establish_pending = False
            return True
        return False

    @property
    def accept_pending(self) -> bool:
        """Established but not yet acknowledged via finish_connect()."""
        return self.established and self._establish_pending

    def _enter_error(self, cause: Optional[str] = None) -> None:
        if cause is not None:
            self.last_error = cause
        self.errored = True
        self.closed = True
        self._notify()

    def reconnect(self) -> int:
        """Re-establish an errored channel on a fresh queue pair.

        Tears the dead QP down, re-provisions one on the same CQs/pools
        and re-runs the CM handshake toward :attr:`remote_addr`.  The
        channel then reports ``accept_pending`` readiness once the
        handshake completes, exactly like the original active open, so
        the application-level connect flow replays unchanged.

        Returns the CM connection id of the new attempt (for
        ``abort_connect`` on timeout).  Only actively opened channels
        carry a remote address; accepted channels recover via a fresh
        inbound accept instead.
        """
        if self.remote_addr is None:
            raise RubinError(f"{self}: accepted channels cannot re-dial")
        self._reprovision()
        return self._begin_connect()

    def _reprovision(self) -> None:
        """Replace the QP and reset transport state, keeping buffers.

        Received-but-unread messages survive in ``_ready_messages``; every
        buffer still attached to the dead QP (posted receives, in-flight
        sends, the re-post backlog) is returned to its pool — flush-error
        completions do not release pool buffers, so this is the one place
        that reclaims them.
        """
        stale_conn = self._pending_conn_id
        if stale_conn is not None:
            self.cm.abort_connect(stale_conn)
            self._pending_conn_id = None
        self.device.destroy_qp(self.qp)
        # Drain both CQs: keep successful receives, retire successful
        # sends, discard flush errors (their buffers are released below).
        for cq in (self.recv_cq, self.send_cq):
            while True:
                completions = cq.poll(max_entries=64)
                if not completions:
                    break
                for wc in completions:
                    if wc.ok:
                        self._handle_completion(wc)
        for pooled in self._recv_wr_map.values():
            pooled.release()
        self._recv_wr_map.clear()
        for _wr_id, pooled in self._send_wr_buffers:
            if pooled is not None:
                pooled.release()
        self._send_wr_buffers.clear()
        for pooled in self._repost_backlog:
            pooled.release()
        self._repost_backlog = []
        self._sends_since_signal = 0

        self.qp = self._make_qp()
        self.established = False
        self.errored = False
        self.closed = False
        self._prepost_all_recv_buffers()
        # Re-arm CQ notifications that may have fired while errored.
        for cq in (self.recv_cq, self.send_cq):
            if cq.channel is not None:
                cq.request_notify()

    def add_watcher(self, watcher: Callable[[], None]) -> None:
        """Invoke ``watcher()`` on readiness-relevant changes."""
        self._watchers.append(watcher)

    def add_send_watcher(self, watcher: Callable[[int], None]) -> None:
        """Invoke ``watcher(wr_id)`` when a send completes successfully.

        Completions are in post order, so a callback with ``wr_id`` also
        acknowledges every earlier (unsignaled) send.
        """
        self._send_watchers.append(watcher)

    def add_unblock_watcher(self, watcher: Callable[[], None]) -> None:
        """Invoke ``watcher()`` when fresh credit unblocks the send path.

        Fires only on a blocked-to-unblocked transition, so subscribers
        (the selector's wakeup) see no traffic on schedules that never
        exhaust the credit window.
        """
        self._unblock_watchers.append(watcher)

    def _on_credit_granted(self) -> None:
        """The peer's advertisement reopened the send window."""
        if self._stall_since is not None:
            self.credit_stall_time.record(self.env.now - self._stall_since)
            self._stall_since = None
        if self._stall_span is not None:
            self._stall_span.end()
            self._stall_span = None
        for watcher in list(self._unblock_watchers):
            watcher()
        self._notify()

    def _notify(self) -> None:
        for watcher in list(self._watchers):
            watcher()

    # ------------------------------------------------------------------
    # readiness
    # ------------------------------------------------------------------

    @property
    def receivable(self) -> bool:
        """A completed message is parked and ready to read."""
        return bool(self._ready_messages) or len(self.recv_cq) > 0

    @property
    def sendable(self) -> bool:
        """A write could make progress right now."""
        if not self.established or self.closed:
            return False
        if self.qp.send_queue_free < 1:
            return False
        if self.config.flow_control and (
            self.qp.send_credits_remaining - self._credit_reserved < 1
        ):
            return False
        if not self.config.zero_copy_send and self.send_pool.available == 0:
            return False
        return True

    # ------------------------------------------------------------------
    # completion handling
    # ------------------------------------------------------------------

    def on_cq_event(self, cq: CompletionQueue):
        """Drain ``cq`` after a notification; generator (selector yields).

        Charges the per-CQE reap cost and re-arms the notification."""
        cpu = self.host.cpu
        while True:
            completions = cq.poll(max_entries=16)
            if not completions:
                break
            yield cpu.execute(cpu.costs.cqe_poll * len(completions))
            for wc in completions:
                self._handle_completion(wc)
        if cq.channel is not None:
            cq.request_notify()
        self._notify()

    def _drain_cq_direct(self, cq: CompletionQueue):
        """Drain without a selector (used by read/write paths)."""
        yield from self.on_cq_event(cq)

    def _handle_completion(self, wc) -> None:
        if not wc.ok:
            if wc.status is not WcStatus.WR_FLUSH_ERR:
                self._enter_error(wc.status.value)
            return
        if wc.opcode is Opcode.RECV:
            pooled = self._recv_wr_map.pop(wc.wr_id, None)
            if pooled is None:
                raise RubinError(f"{self}: completion for unknown recv WR")
            self._ready_messages.append(
                _InboundMessage(pooled, wc.byte_len, wc.trace_ctx)
            )
        else:
            # A send CQE releases the pool buffers of this WR and of every
            # earlier unsignaled WR (in-order completion).
            while self._send_wr_buffers:
                wr_id, pooled = self._send_wr_buffers.popleft()
                if pooled is not None:
                    pooled.release()
                if wr_id == wc.wr_id:
                    break
            for watcher in list(self._send_watchers):
                watcher(wc.wr_id)

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------

    def read(self, buffer: ByteBuffer) -> "Event":
        """Read one (partial) message into ``buffer``; value = byte count.

        Non-blocking: 0 when no message is ready, ``None`` once closed.
        Charges the CQE reap and — unless ``zero_copy_recv`` — the
        receive-side copy from the pool buffer into the application
        buffer, the very copy the paper blames for large-message
        degradation.
        """
        self.progress_marker += 1
        return self.env.process(self._read_proc(buffer), name="rubin.read")

    def read_view(self, max_bytes: int) -> "Event":
        """Zero-copy read: event value is a memoryview over the pool buffer.

        Non-blocking like :meth:`read` (``0`` when nothing is ready,
        ``None`` once closed), with identical modeled charges — only the
        host-side copy into an application buffer is skipped.  The caller
        must fully consume (or copy out of) the view before yielding back
        to the kernel: once the event fires, the underlying pool buffer
        may already be reposted to the RNIC, and a later arrival's DMA —
        always strictly later in simulated time — will overwrite it.
        """
        self.progress_marker += 1
        return self.env.process(self._read_view_proc(max_bytes), name="rubin.read")

    def _read_view_proc(self, max_bytes: int):
        return (yield from self._read_message(None, max_bytes))

    def _read_proc(self, buffer: ByteBuffer):
        return (yield from self._read_message(buffer, 0))

    def _read_message(self, buffer: Optional[ByteBuffer], max_bytes: int):
        """Shared body of :meth:`read` and :meth:`read_view`.

        With ``buffer`` the message bytes are copied into it and the byte
        count returned; without, a view of the pool buffer is returned.
        Both paths create exactly the same events (CQE drain, modeled
        receive copy, buffer recycling), so schedules are bit-identical
        whichever the application picks.
        """
        if self.closed and not self._ready_messages and len(self.recv_cq) == 0:
            return None
        yield from self._drain_cq_direct(self.recv_cq)
        if not self._ready_messages:
            return None if self.closed else 0
        message = self._ready_messages[0]
        limit = buffer.remaining() if buffer is not None else max_bytes
        take = min(message.remaining, limit)
        if take == 0:
            return 0
        self.last_read_trace_ctx = message.trace_ctx
        tracer = self.env.tracer
        span = None
        if tracer is not None and tracer.enabled and message.trace_ctx is not None:
            span = tracer.start_span(
                "channel.read",
                layer="rubin",
                parent=message.trace_ctx,
                track=self.host.name,
                nbytes=take,
            )
        if not self.config.zero_copy_recv:
            yield self.host.cpu.copy(take)
        view = memoryview(message.pooled.data)[message.offset : message.offset + take]
        if buffer is not None:
            # Exactly one host copy on receive: pool buffer -> application
            # buffer (counted inside put()).  The paper's receive-side copy.
            buffer.put(view)
            view.release()
            result: "int | memoryview" = take
        else:
            # Zero-copy hand-off: the recycle below may repost the buffer,
            # but inbound DMA into it starts strictly later in simulated
            # time, so a caller that consumes the view before its next
            # yield can never observe overwritten data.
            result = view
        message.offset += take
        message.remaining -= take
        if message.remaining == 0:
            self._ready_messages.popleft()
            yield from self._recycle_recv_buffer(message.pooled)
        if span is not None:
            span.end()
        return result

    def _recycle_recv_buffer(self, pooled: PooledBuffer):
        """Queue a consumed buffer for batched re-posting."""
        self._repost_backlog.append(pooled)
        limit = min(self.config.post_batch, self.device.attrs.max_post_batch)
        if len(self._repost_backlog) >= limit:
            cpu = self.host.cpu
            batch = []
            for buf in self._repost_backlog:
                wr_id = next(self._next_wr_id)
                self._recv_wr_map[wr_id] = buf
                batch.append(RecvWorkRequest(wr_id=wr_id, sge=Sge(buf.mr)))
            self._repost_backlog = []
            # One doorbell for the whole batch (the paper's posting
            # optimization); WQE build cost per request.
            yield cpu.execute(
                cpu.costs.post_wr * len(batch) + cpu.costs.doorbell
            )
            self.qp.post_recv_batch(batch)
        else:
            yield from ()

    def write(self, buffer: ByteBuffer, trace_ctx=None) -> "Event":
        """Send ``buffer``'s remaining bytes as one message; value = count.

        Non-blocking: returns 0 when the send queue or pool is full.
        ``trace_ctx`` optionally attributes the post path to a trace and
        rides on the work request through the transport.
        """
        self.progress_marker += 1
        return self.env.process(
            self._write_proc(buffer, trace_ctx), name="rubin.write"
        )

    def _write_proc(self, buffer: ByteBuffer, trace_ctx=None):
        if self.closed:
            raise RubinError(f"{self}: channel is closed")
        if not self.established:
            raise RubinError(f"{self}: channel is not established")
        length = buffer.remaining()
        if length == 0:
            return 0
        if length > self.config.buffer_size:
            raise RubinError(
                f"{self}: message of {length}B exceeds channel buffer size "
                f"{self.config.buffer_size}B"
            )
        tracer = get_tracer(self.env)
        span = None
        if tracer.enabled and trace_ctx is not None:
            span = tracer.start_span(
                "channel.write",
                layer="rubin",
                parent=trace_ctx,
                track=self.host.name,
                nbytes=length,
            )
        reserved = False
        try:
            # Reap finished sends first so slots/pool buffers recycle.
            yield from self._drain_cq_direct(self.send_cq)
            if self.qp.send_queue_free < 1:
                return 0
            if self.config.flow_control:
                if self.qp.send_credits_remaining - self._credit_reserved < 1:
                    # Out of credits: refuse the write (0 bytes) and let
                    # the credit watcher re-arm readiness — never post
                    # into a window the peer has not provisioned.
                    self.credit_stalls.increment()
                    if self._stall_since is None:
                        self._stall_since = self.env.now
                        if tracer.enabled and trace_ctx is not None:
                            self._stall_span = tracer.start_span(
                                "channel.credit_stall",
                                layer="rubin",
                                parent=trace_ctx,
                                track=self.host.name,
                            )
                    return 0
                # Claim the credit across the yields below: the QP only
                # debits at post time, so without the reservation every
                # concurrently blocked writer would pass the gate.
                self._credit_reserved += 1
                reserved = True

            cpu = self.host.cpu
            self._sends_since_signal += 1
            signaled = self._sends_since_signal >= self.config.signal_interval
            if signaled:
                self._sends_since_signal = 0
            wr_id = next(self._next_wr_id)

            if length <= self.config.inline_threshold and length <= self.qp.caps.max_inline:
                # Inline: payload copied into the WQE; cheapest for small
                # messages, no gather DMA at the RNIC.
                data = buffer.get(length)
                yield cpu.execute(
                    cpu.costs.post_wr + cpu.costs.doorbell + cpu.costs.copy_seconds(length)
                )
                wr = SendWorkRequest(
                    wr_id=wr_id,
                    opcode=Opcode.SEND,
                    inline_data=data,
                    signaled=signaled,
                    trace_ctx=trace_ctx,
                )
                self._send_wr_buffers.append((wr_id, None))
            elif self.config.zero_copy_send:
                # Register the application's buffer once, then gather from it
                # directly (zero-copy send path of Section IV).
                mr = yield from self._app_buffer_mr(buffer)
                yield cpu.execute(cpu.costs.post_wr + cpu.costs.doorbell)
                wr = SendWorkRequest(
                    wr_id=wr_id,
                    opcode=Opcode.SEND,
                    sge=Sge(mr, buffer.position, length),
                    signaled=signaled,
                    trace_ctx=trace_ctx,
                )
                buffer.position = buffer.position + length
                self._send_wr_buffers.append((wr_id, None))
            else:
                pooled = self.send_pool.try_acquire()
                if pooled is None:
                    # Expected under load: stall (0 bytes) until a send
                    # completion recycles a buffer; no alarm, no raise.
                    self.pool_stalls.increment()
                    return 0
                # Single host copy app buffer -> registered pool buffer.
                view = buffer.peek_view(length)
                if COPYSTATS.enabled:
                    COPYSTATS.copy(length)
                pooled.data[:length] = view
                view.release()
                buffer.position = buffer.position + length
                yield cpu.copy(length)
                yield cpu.execute(cpu.costs.post_wr + cpu.costs.doorbell)
                wr = SendWorkRequest(
                    wr_id=wr_id,
                    opcode=Opcode.SEND,
                    sge=Sge(pooled.mr, 0, length),
                    signaled=signaled,
                    trace_ctx=trace_ctx,
                )
                self._send_wr_buffers.append((wr_id, pooled))
            self.last_write_wr_id = wr_id
            self.qp.post_send(wr)
            return length
        finally:
            if reserved:
                # post_send (if reached) has debited the QP by now; a
                # stalled pool path releases the claim unposted.
                self._credit_reserved -= 1
            if span is not None:
                span.end()

    def _app_buffer_mr(self, buffer: ByteBuffer):
        """Register (once) and return the MR for an application buffer.

        The cache is keyed on the :attr:`MemoryRegion.token` of the
        registration, stamped onto the ByteBuffer itself — tokens are
        monotonic and never recycled, so a new buffer can never alias a
        stale registration (``id()``-keyed caches could, because CPython
        recycles object ids).
        """
        token = getattr(buffer, "_mr_token", None)
        mr = self._app_mr_cache.get(token) if token is not None else None
        if mr is None:
            backing = buffer.array()
            attrs = self.device.attrs
            pages = max(1, -(-len(backing) // attrs.page_size))
            yield self.host.cpu.execute(
                self.host.cpu.costs.syscall
                + attrs.mr_register_base
                + pages * attrs.mr_register_per_page
            )
            mr = self.device.reg_mr(self.pd, backing)
            buffer._mr_token = mr.token
            self._app_mr_cache[mr.token] = mr
        # Stability is a property of the buffer's ownership discipline
        # (staging rings recycle slots only on completion), so refresh it
        # on every use.
        mr.stable = buffer.stable_until_completion
        return mr

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the channel and release its resources."""
        if self.closed:
            return
        self.closed = True
        if self._pending_conn_id is not None:
            self.cm.abort_connect(self._pending_conn_id)
            self._pending_conn_id = None
        self.device.destroy_qp(self.qp)
        self._notify()

    def __repr__(self) -> str:
        state = (
            "error"
            if self.errored
            else "closed"
            if self.closed
            else "established"
            if self.established
            else "connecting"
        )
        return f"<RubinChannel #{self.channel_id} on {self.host.name} {state}>"


class RubinServerChannel:
    """A listening RDMA channel producing :class:`RubinChannel` on accept."""

    def __init__(
        self,
        device: "RdmaDevice",
        cm: ConnectionManager,
        port: int,
        config: Optional[RubinConfig] = None,
    ):
        self.device = device
        self.cm = cm
        self.port = port
        self.config = config if config is not None else RubinConfig()
        self.channel_id = next(_channel_ids)
        self.listener = cm.listen(port)
        self._pending: Deque[ConnectRequest] = deque()
        self._watchers: List[Callable[[], None]] = []
        self.progress_marker = 0
        self.closed = False
        cm.add_event_watcher(self._on_cm_event)

    def _on_cm_event(self, event: CmEvent) -> None:
        if (
            event.kind == "CONNECT_REQUEST"
            and event.listener_port == self.port
            and not self.closed
        ):
            self._pending.append(event.request)
            for watcher in list(self._watchers):
                watcher()

    @property
    def connect_pending(self) -> bool:
        """True when an unaccepted connection request is queued."""
        return bool(self._pending)

    def accept(self, config: Optional[RubinConfig] = None) -> Optional[RubinChannel]:
        """Accept the next pending request; None when there is none.

        The returned channel is usable immediately (receive buffers are
        posted); it reports OP_ACCEPT readiness once the peer's RTU lands.
        """
        if self.closed:
            raise RubinError(f"{self}: server channel is closed")
        self.progress_marker += 1
        if not self._pending:
            return None
        request = self._pending.popleft()
        return RubinChannel._accept(
            self.device, self.cm, request, config or self.config
        )

    def add_watcher(self, watcher: Callable[[], None]) -> None:
        """Invoke ``watcher()`` when a connection request arrives."""
        self._watchers.append(watcher)

    def close(self) -> None:
        """Stop listening; pending unaccepted requests are rejected."""
        if self.closed:
            return
        self.closed = True
        while self._pending:
            self._pending.popleft().reject("listener closed")
        self.listener.close()

    def __repr__(self) -> str:
        return (
            f"<RubinServerChannel #{self.channel_id} "
            f"{self.device.host.name}:{self.port}>"
        )
