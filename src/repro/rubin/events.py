"""RUBIN's hybrid event queue and event manager.

Figure 2 of the paper: the Java NIO selector checks both transmission and
connection readiness with a single blocking call, so "RUBIN therefore
includes a hybrid event queue containing copies of both the event channel
elements and the completion queue elements.  When an event is added to
these channels, a copy of it will be added to the hybrid event queue of
the RUBIN selector, notifying it about this new I/O operation."

The :class:`EventManager` is the component that "is associated with the
selector to keep track of the events added to the queue and to notify the
selector" — it replaces epoll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional
from collections import deque

from repro.rdma.cm import CmEvent, ConnectionManager
from repro.rdma.cq import CompletionChannel, CompletionQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment, Event

__all__ = ["RubinEvent", "HybridEventQueue", "EventManager"]

#: Event kinds carried on the hybrid queue.
EVENT_CONNECTION = "connection"  # copied from the CM event channel
EVENT_COMPLETION = "completion"  # copied from a completion queue


@dataclass
class RubinEvent:
    """One entry of the hybrid event queue.

    ``event_id`` identifies the connection the event belongs to; the
    selector compares it against each registered channel's id (the
    paper's "comparing the event ID with the channel ID").
    """

    kind: str  # EVENT_CONNECTION or EVENT_COMPLETION
    event_id: Any
    cm_event: Optional[CmEvent] = None
    cq: Optional[CompletionQueue] = None


class HybridEventQueue:
    """FIFO of :class:`RubinEvent` with a wake-up hook for the selector."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._events: Deque[RubinEvent] = deque()
        self._wakeup: Optional["Event"] = None

    def push(self, event: RubinEvent) -> None:
        """Append an event and wake a blocked selector."""
        self._events.append(event)
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def drain(self) -> List[RubinEvent]:
        """Remove and return all queued events."""
        out = list(self._events)
        self._events.clear()
        return out

    def __len__(self) -> int:
        return len(self._events)

    def wait(self) -> "Event":
        """Event that triggers when something is pushed (single waiter)."""
        if self._events:
            done = self.env.event()
            done.succeed()
            return done
        self._wakeup = self.env.event()
        return self._wakeup


class EventManager:
    """Feeds the hybrid queue from CM events and CQ notifications."""

    def __init__(self, env: "Environment", queue: HybridEventQueue):
        self.env = env
        self.queue = queue
        #: Shared completion channel all registered channels' CQs notify.
        self.comp_channel = CompletionChannel(env)
        self._cq_owner: dict[int, Any] = {}
        self._running = True
        env.process(self._completion_loop(), name="rubin.event_manager")

    def watch_cm(self, cm: ConnectionManager, owner_id: Any) -> None:
        """Copy ``cm``'s events onto the hybrid queue, tagged ``owner_id``."""

        def on_cm_event(event: CmEvent) -> None:
            self.queue.push(
                RubinEvent(
                    kind=EVENT_CONNECTION,
                    event_id=owner_id,
                    cm_event=event,
                )
            )

        cm.add_event_watcher(on_cm_event)

    def watch_cq(self, cq: CompletionQueue, owner_id: Any) -> None:
        """Arm ``cq`` so its completions surface on the hybrid queue."""
        cq.channel = self.comp_channel
        self._cq_owner[cq.number] = owner_id
        cq.request_notify()

    def owner_of(self, cq: CompletionQueue) -> Any:
        """The channel id a CQ was registered under."""
        return self._cq_owner.get(cq.number)

    def _completion_loop(self):
        """Forward CQ notifications as hybrid-queue events and re-arm."""
        while self._running:
            cq = yield self.comp_channel.get_cq_event()
            owner = self._cq_owner.get(cq.number)
            if owner is None:
                continue  # CQ was unregistered; stale notification
            self.queue.push(
                RubinEvent(kind=EVENT_COMPLETION, event_id=owner, cq=cq)
            )
            # NOT re-armed here: the owning channel re-arms after draining
            # the CQ (request_notify with entries still pending re-notifies
            # immediately, so a CQE landing mid-drain cannot be lost — and
            # re-arming before the drain would spin on the pending entries).

    def unwatch_cq(self, cq: CompletionQueue) -> None:
        """Stop surfacing a CQ's completions."""
        self._cq_owner.pop(cq.number, None)

    def stop(self) -> None:
        """Shut the completion loop down (selector close)."""
        self._running = False
