"""TCP segments (the payload objects carried inside link frames)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tcpstack.config import TCP_HEADER_BYTES

__all__ = ["Segment", "SYN", "ACK", "FIN", "RST"]

#: Flag bits.
SYN = 0x1
ACK = 0x2
FIN = 0x4
RST = 0x8

_FLAG_NAMES = [(SYN, "SYN"), (ACK, "ACK"), (FIN, "FIN"), (RST, "RST")]


@dataclass(slots=True)
class Segment:
    """One TCP segment.

    ``seq`` numbers count bytes; SYN and FIN each consume one sequence
    number, as in real TCP.  ``window`` is the receiver's advertised free
    buffer space, carried on every ACK.
    """

    src_host: str
    src_port: int
    dst_host: str
    dst_port: int
    flags: int = 0
    seq: int = 0
    ack: int = 0
    window: int = 0
    data: bytes = field(default=b"", repr=False)

    @property
    def wire_bytes(self) -> int:
        """Bytes this segment occupies on the wire, headers included."""
        return TCP_HEADER_BYTES + len(self.data)

    @property
    def seq_length(self) -> int:
        """Sequence-number space consumed: data bytes plus SYN/FIN."""
        length = len(self.data)
        if self.flags & SYN:
            length += 1
        if self.flags & FIN:
            length += 1
        return length

    def has(self, flag: int) -> bool:
        """Whether ``flag`` is set."""
        return bool(self.flags & flag)

    def flag_names(self) -> str:
        """Human-readable flag list for tracing."""
        names = [name for bit, name in _FLAG_NAMES if self.flags & bit]
        return "|".join(names) if names else "-"

    def __repr__(self) -> str:
        return (
            f"<Segment {self.src_host}:{self.src_port}->"
            f"{self.dst_host}:{self.dst_port} {self.flag_names()} "
            f"seq={self.seq} ack={self.ack} len={len(self.data)}>"
        )
