"""The hybrid event queue and event manager in isolation."""

import pytest

from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.verbs import Opcode, WcStatus
from repro.rubin.events import (
    EVENT_COMPLETION,
    EventManager,
    HybridEventQueue,
    RubinEvent,
)
from repro.sim import Environment


def wc(wr_id=1):
    return WorkCompletion(wr_id, WcStatus.SUCCESS, Opcode.RECV, 0, 1)


class TestHybridEventQueue:
    def test_push_then_drain(self):
        env = Environment()
        queue = HybridEventQueue(env)
        queue.push(RubinEvent(kind="x", event_id=1))
        queue.push(RubinEvent(kind="y", event_id=2))
        drained = queue.drain()
        assert [e.kind for e in drained] == ["x", "y"]
        assert queue.drain() == []

    def test_len(self):
        env = Environment()
        queue = HybridEventQueue(env)
        assert len(queue) == 0
        queue.push(RubinEvent(kind="x", event_id=1))
        assert len(queue) == 1

    def test_wait_returns_immediately_when_nonempty(self):
        env = Environment()
        queue = HybridEventQueue(env)
        queue.push(RubinEvent(kind="x", event_id=1))

        def waiter(env):
            yield queue.wait()
            return env.now

        p = env.process(waiter(env))
        assert env.run(until=p) == 0.0

    def test_wait_blocks_until_push(self):
        env = Environment()
        queue = HybridEventQueue(env)

        def waiter(env):
            yield queue.wait()
            return env.now

        def pusher(env):
            yield env.timeout(3.0)
            queue.push(RubinEvent(kind="late", event_id=1))

        p = env.process(waiter(env))
        env.process(pusher(env))
        assert env.run(until=p) == 3.0


class TestEventManager:
    def test_cq_completion_surfaces_on_queue(self):
        env = Environment()
        queue = HybridEventQueue(env)
        manager = EventManager(env, queue)
        cq = CompletionQueue(env, name="test")
        manager.watch_cq(cq, owner_id=42)
        cq.push(wc())
        env.run(until=env.now + 1e-6) if env.peek() != float("inf") else env.run()
        events = queue.drain()
        assert len(events) == 1
        assert events[0].kind == EVENT_COMPLETION
        assert events[0].event_id == 42
        assert events[0].cq is cq

    def test_owner_lookup(self):
        env = Environment()
        queue = HybridEventQueue(env)
        manager = EventManager(env, queue)
        cq = CompletionQueue(env, name="test")
        manager.watch_cq(cq, owner_id="channel-7")
        assert manager.owner_of(cq) == "channel-7"
        manager.unwatch_cq(cq)
        assert manager.owner_of(cq) is None

    def test_unwatched_cq_events_are_discarded(self):
        env = Environment()
        queue = HybridEventQueue(env)
        manager = EventManager(env, queue)
        cq = CompletionQueue(env, name="test")
        manager.watch_cq(cq, owner_id=1)
        manager.unwatch_cq(cq)
        cq.push(wc())
        env.run()
        assert queue.drain() == []

    def test_not_rearmed_by_manager(self):
        """The manager must not re-arm after notifying (the channel does,
        after draining) — re-arming with pending entries would spin."""
        env = Environment()
        queue = HybridEventQueue(env)
        manager = EventManager(env, queue)
        cq = CompletionQueue(env, name="test")
        manager.watch_cq(cq, owner_id=1)
        cq.push(wc(1))
        env.run()
        assert len(queue.drain()) == 1
        # A second CQE without re-arm: no new notification.
        cq.push(wc(2))
        env.run()
        assert queue.drain() == []
