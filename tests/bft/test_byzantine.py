"""Byzantine replica behaviours: the group must tolerate f = 1 traitor."""

import pytest

from repro.bft import (
    BftCluster,
    BftConfig,
    CorruptingReplica,
    CounterMachine,
    EquivocatingLeader,
    SilentReplica,
)


def make_cluster(**kwargs):
    defaults = dict(
        transport="nio",
        config=BftConfig(view_change_timeout=30e-3, batch_delay=50e-6),
    )
    defaults.update(kwargs)
    cluster = BftCluster(**defaults)
    cluster.start()
    return cluster


class TestCorruptingBackup:
    def test_corrupt_votes_do_not_block_progress(self):
        cluster = make_cluster(replica_classes={"r2": CorruptingReplica})
        cluster.replica("r2").start_corrupting()
        for i in range(5):
            assert cluster.invoke_and_wait(f"PUT k{i}=v".encode()) == b"OK"

    def test_corrupt_votes_never_count_toward_quorums(self):
        cluster = make_cluster(replica_classes={"r2": CorruptingReplica})
        cluster.replica("r2").start_corrupting()
        cluster.invoke_and_wait(b"PUT a=1")
        cluster.run_for(10e-3)
        # Honest replicas committed with honest votes only: none of their
        # slots may count r2's corrupted digests.
        for rid in ("r0", "r1", "r3"):
            replica = cluster.replica(rid)
            for slot in replica.log.slots.values():
                if slot.pre_prepare is None:
                    continue
                vote = slot.prepares.get("r2")
                if vote is not None:
                    assert vote.digest != slot.pre_prepare.digest

    def test_honest_state_unaffected(self):
        cluster = make_cluster(
            replica_classes={"r1": CorruptingReplica},
            app_factory=CounterMachine,
        )
        cluster.replica("r1").start_corrupting()
        for _ in range(4):
            cluster.invoke_and_wait(CounterMachine.add(5))
        cluster.run_for(10e-3)
        honest = [cluster.apps[r].value for r in ("r0", "r2", "r3")]
        assert honest == [20, 20, 20]


class TestEquivocation:
    def test_equivocating_values_never_commit_on_honest_replicas(self):
        cluster = make_cluster(replica_classes={"r0": EquivocatingLeader})
        cluster.replica("r0").start_equivocating()
        result = cluster.invoke_and_wait(b"PUT target=true")
        assert result == b"OK"
        cluster.run_for(20e-3)
        for rid in ("r1", "r2", "r3"):
            value = cluster.apps[rid].get("target")
            assert value in (None, "true")
            assert not (value or "").startswith("FORGED")

    def test_forged_batches_rejected_by_digest_check(self):
        """Victims of the equivocation see digest-mismatching batches and
        must drop them rather than vote."""
        cluster = make_cluster(replica_classes={"r0": EquivocatingLeader})
        leader = cluster.replica("r0")
        leader.start_equivocating(victims={"r1"})
        cluster.invoke_and_wait(b"PUT check=digest")
        cluster.run_for(20e-3)
        # r1 received a forged batch whose digest matches its contents
        # (the attacker recomputed it), so r1 votes for the forged digest
        # while r2/r3 vote for the real one: quorum only forms on the
        # real digest.
        digests = cluster.state_digests()
        assert digests["r2"] == digests["r3"]


class TestCrashRecoveryMatrix:
    @pytest.mark.parametrize("victim", ["r1", "r2", "r3"])
    def test_any_single_backup_crash_tolerated(self, victim):
        cluster = make_cluster(
            replica_classes={victim: SilentReplica},
        )
        cluster.replica(victim).go_silent()
        assert cluster.invoke_and_wait(b"PUT who=cares") == b"OK"

    def test_two_crashes_exceed_f_and_block(self):
        """f = 1: two silent replicas must stall the service (safety
        over liveness) — no spurious results may be produced."""
        cluster = make_cluster(
            replica_classes={"r2": SilentReplica, "r3": SilentReplica},
        )
        cluster.replica("r2").go_silent()
        cluster.replica("r3").go_silent()
        event = cluster.client().invoke(b"PUT never=committed")
        cluster.run_for(200e-3)
        assert not event.triggered

    def test_view_change_cascade_until_honest_leader(self):
        """With r0 silent from the start, view 1 (led by r1) takes over."""
        cluster = make_cluster(replica_classes={"r0": SilentReplica})
        cluster.replica("r0").go_silent()
        assert cluster.invoke_and_wait(b"PUT first=requests") == b"OK"
        views = {r.view for r in cluster.replicas.values() if r.replica_id != "r0"}
        assert views == {1}
