"""Tie-break policies: the choice points schedule exploration drives.

The kernel's agenda orders events by ``(time, priority, sequence)``; any
permutation of entries tied on ``(time, priority)`` is a legal schedule.
:class:`RecordingPolicy` turns those ties into explicit *choice points*:
each one replays a prescribed choice prefix (deviations from the default
order), falls back to a pluggable strategy past the prefix, and records
every decision it makes — the recorded choice sequence *is* the schedule
identity, and feeding it back as the prescription replays the run
bit-identically.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.core import TieBreakPolicy

__all__ = ["owner_key", "RecordingPolicy", "SeededFuzz"]


def owner_key(event) -> str:
    """The host/component a pending agenda entry belongs to.

    Derived from the event's first callback: process callbacks are bound
    to a named :class:`~repro.sim.process.Process` (names like
    ``"r0.pipe1"`` or ``"cluster.wire"`` lead with the owning host), so
    the leading dot-token groups entries by owner.  Entries owned by
    different hosts are heuristically independent — swapping them cannot
    change either host's local history — which is what the explorer's
    DPOR-style pruning keys on.

    Cross-shard deliveries injected by :mod:`repro.sim.parallel` are
    bound to an ingress port named after the directed link
    (``"client->server"``); their owner is the *destination* host — the
    delivery mutates the receiver's state, the sender already finished
    with the frame at serialization time — so the arrow's right-hand
    side is taken before the dot-token split.  (The explorer itself
    only drives sequential runs; this keeps attribution meaningful when
    a single-shard debug run reuses the sharded builder.)
    """
    callbacks = event.callbacks
    if callbacks:
        callback = callbacks[0]
        bound = getattr(callback, "__self__", None)
        if bound is not None:
            name = getattr(bound, "name", None)
            if isinstance(name, str) and name:
                # "a->b" (directed ingress) but not "a<->b.fwd" (duplex
                # cable halves keep their historical whole-name owner).
                if "->" in name and "<->" not in name:
                    name = name.split("->", 1)[1]
                return name.split(".", 1)[0]
            return type(bound).__name__
        return getattr(callback, "__name__", type(event).__name__)
    return type(event).__name__


class RecordingPolicy(TieBreakPolicy):
    """Replay a choice prefix, then follow a fallback, recording it all.

    Parameters
    ----------
    prescribed:
        Choice indices consumed one per choice point.  Out-of-range
        prescriptions (the ready set turned out smaller than when the
        trace was recorded) clamp to 0 and are counted in ``clamped``.
    fallback:
        ``f(now, entries, position) -> index`` used past the prefix;
        ``None`` means the default order (index 0).
    record_owners:
        Also record each choice point's owner-key tuple (used by the
        explorer's pruning pass on the base run; costs memory, so off by
        default).
    """

    def __init__(
        self,
        prescribed: Sequence[int] = (),
        fallback: Optional[Callable[[float, list, int], int]] = None,
        record_owners: bool = False,
    ):
        self.prescribed = list(prescribed)
        self.fallback = fallback
        self.record_owners = record_owners
        #: Index actually dispatched at each choice point.
        self.choices: List[int] = []
        #: Ready-set size at each choice point.
        self.sizes: List[int] = []
        #: Owner-key tuple per choice point (``record_owners`` only).
        self.owners: List[Tuple[str, ...]] = []
        #: Prescriptions that no longer fit their ready set.
        self.clamped = 0

    def choose(self, now: float, entries: list) -> int:
        position = len(self.choices)
        size = len(entries)
        if position < len(self.prescribed):
            index = self.prescribed[position]
            if not 0 <= index < size:
                self.clamped += 1
                index = 0
        elif self.fallback is not None:
            index = self.fallback(now, entries, position)
            if not 0 <= index < size:
                index = 0
        else:
            index = 0
        self.choices.append(index)
        self.sizes.append(size)
        if self.record_owners:
            self.owners.append(tuple(owner_key(e[3]) for e in entries))
        return index

    def trimmed_choices(self) -> Tuple[int, ...]:
        """The recorded schedule with trailing default choices dropped.

        Replaying the trimmed tuple reproduces the run exactly: past the
        prescription a :class:`RecordingPolicy` with no fallback picks 0,
        which is what the trailing entries were.
        """
        choices = self.choices
        last = len(choices)
        while last and choices[last - 1] == 0:
            last -= 1
        return tuple(choices[:last])


class SeededFuzz:
    """Fallback strategy: deviate from the default order at random.

    Seeded (``random.Random``) so a fuzz run is identified entirely by
    its seed; the deviations it takes are recorded by the enclosing
    :class:`RecordingPolicy` and replay without the RNG.
    """

    def __init__(
        self,
        seed: int,
        deviation_rate: float = 0.02,
        max_deviations: int = 16,
    ):
        self.seed = seed
        self.deviation_rate = deviation_rate
        self.max_deviations = max_deviations
        self.deviations = 0
        self._rng = random.Random(f"repro.explore.fuzz:{seed}")

    def __call__(self, now: float, entries: list, position: int) -> int:
        if self.deviations >= self.max_deviations:
            return 0
        if self._rng.random() >= self.deviation_rate:
            return 0
        self.deviations += 1
        return self._rng.randrange(len(entries))
