"""Client protocol: quorum acceptance, retransmission, view tracking."""

import pytest

from repro.bft import BftCluster, BftConfig, SilentReplica
from repro.errors import BftError


def make_cluster(**kwargs):
    defaults = dict(
        transport="nio",
        config=BftConfig(view_change_timeout=30e-3, batch_delay=50e-6),
    )
    defaults.update(kwargs)
    cluster = BftCluster(**defaults)
    cluster.start()
    return cluster


def test_accepts_on_f_plus_1_matching_replies():
    cluster = make_cluster()
    client = cluster.client()
    event = client.invoke(b"PUT q=uorum")
    cluster.env.run(until=event)
    votes = None  # event resolved; bookkeeping for it is cleaned up
    assert event.value == b"OK"
    assert client.invocations == 1


def test_timestamps_are_monotonic():
    cluster = make_cluster()
    client = cluster.client()
    first = client._next_timestamp
    cluster.invoke_and_wait(b"PUT a=1")
    cluster.invoke_and_wait(b"PUT b=2")
    assert client._next_timestamp == first + 2


def test_retransmission_on_silent_leader():
    cluster = make_cluster(replica_classes={"r0": SilentReplica})
    cluster.replica("r0").go_silent()
    client = cluster.client()
    assert cluster.invoke_and_wait(b"PUT retry=me") == b"OK"
    assert client.retransmissions >= 1


def test_no_retransmission_on_fast_path():
    cluster = make_cluster()
    client = cluster.client()
    cluster.invoke_and_wait(b"PUT fast=path")
    assert client.retransmissions == 0


def test_view_hint_tracks_replies():
    cluster = make_cluster(replica_classes={"r0": SilentReplica})
    cluster.replica("r0").go_silent()
    client = cluster.client()
    cluster.invoke_and_wait(b"PUT learn=views")
    assert client._view_hint >= 1
    # The next request goes straight to the new leader: no retransmission.
    before = client.retransmissions
    cluster.invoke_and_wait(b"PUT second=request")
    assert client.retransmissions == before


def test_concurrent_invocations_from_one_client():
    cluster = make_cluster()
    client = cluster.client()
    events = [client.invoke(f"PUT c{i}=v".encode()) for i in range(8)]
    done = cluster.env.all_of(events)
    cluster.env.run(until=done)
    assert all(e.value == b"OK" for e in events)


def test_negative_f_rejected():
    from repro.bft import BftClient

    cluster = make_cluster()
    with pytest.raises(BftError):
        BftClient("cx", cluster.client().endpoint, ["r0"], f=-1)


def test_mismatched_results_do_not_reach_quorum():
    """Replies with differing results must not be pooled together."""
    cluster = make_cluster()
    client = cluster.client()
    from repro.bft.messages import Reply

    client._reply_votes[99] = {}
    client._accepted[99] = cluster.env.event()
    client._on_reply(Reply("r0", client.client_id, 99, 0, b"A"))
    client._on_reply(Reply("r1", client.client_id, 99, 0, b"B"))
    assert not client._accepted[99].triggered
    client._on_reply(Reply("r2", client.client_id, 99, 0, b"A"))
    assert client._accepted[99].triggered
    assert client._accepted[99].value == b"A"


def test_duplicate_votes_from_same_replica_ignored():
    cluster = make_cluster()
    client = cluster.client()
    from repro.bft.messages import Reply

    client._reply_votes[77] = {}
    client._accepted[77] = cluster.env.event()
    for _ in range(5):
        client._on_reply(Reply("r0", client.client_id, 77, 0, b"X"))
    assert not client._accepted[77].triggered  # one replica, one vote


def test_foreign_client_replies_ignored():
    cluster = make_cluster()
    client = cluster.client()
    from repro.bft.messages import Reply

    client._reply_votes[55] = {}
    client._accepted[55] = cluster.env.event()
    client._on_reply(Reply("r0", "someone-else", 55, 0, b"X"))
    assert client._reply_votes[55] == {}
