"""Auditor hygiene under chaos: crashes must not cause false positives.

A host crash is the harshest input the auditors see — queue pairs die
mid-receive, channels error, supervisors re-dial with backoff, and a
restarted replica re-adopts low view numbers.  All of that is *legal*
behaviour, so a crash/recover workload must end with zero violations
while the flight recorder shows the recovery actually happened.
"""

from repro.bft import BftCluster, BftConfig
from repro.rubin import RubinConfig

FAST_RUBIN = RubinConfig(retry_timeout=1e-3, retry_count=3)


def make_cluster():
    cluster = BftCluster(
        transport="rubin",
        config=BftConfig(
            view_change_timeout=80e-3,
            batch_delay=0.0,
            batch_size=1,
            checkpoint_interval=4,
            log_window=16,
        ),
        rubin_config=FAST_RUBIN,
        faulty_fabric=True,
    )
    cluster.start()
    return cluster


def test_crash_recover_workload_is_violation_free():
    cluster = make_cluster()
    audit = cluster.audit
    for i in range(6):
        assert cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"

    cluster.crash_replica("r2")
    cluster.run_for(30e-3)
    for i in range(6, 16):
        assert cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"
    cluster.restart_replica("r2")
    cluster.run_for(400e-3)
    cluster.invoke_and_wait(b"PUT after=rejoin")
    cluster.run_for(100e-3)

    # The group converged...
    assert len(set(cluster.state_digests().values())) == 1
    # ...and the auditors watched flushed QPs, reconnect storms, view
    # catch-up and state transfer without a single false positive.
    assert audit.violations == []
    assert cluster.watchdog.stalls_detected == 0

    # The recorder holds the whole recovery story: the crash marker, the
    # supervisors' reconnect attempts and their eventual success.
    events = {e.event for e in audit.recorder.events()}
    assert "replica-crash" in events
    assert "replica-restart" in events
    assert "reconnect-attempt" in events
    assert "reconnect-success" in events
    assert any(
        e.event == "state-transfer-completed"
        for e in audit.recorder.events(layer="bft")
    )


def test_view_change_after_leader_crash_is_violation_free():
    cluster = make_cluster()
    audit = cluster.audit
    for i in range(4):
        assert cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"

    cluster.crash_replica("r0")  # the view-0 leader
    cluster.run_for(30e-3)
    # Survivors must elect a new leader and keep committing.
    for i in range(4, 8):
        assert cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"

    assert audit.violations == []
    events = {e.event for e in audit.recorder.events(layer="bft")}
    assert "view-change-started" in events
    assert "view-adopted" in events
