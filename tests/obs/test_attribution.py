"""Suspect ranking: unit math plus an injected-regression end-to-end."""

import pytest

from repro.bft import BftCluster, BftConfig
from repro.obs import critical_path, rank_suspects, render_suspects
from repro.trace import Tracer


def node(mean):
    return {
        "mean_us": mean, "p50_us": mean, "p99_us": mean,
        "share": 0.0, "self_us_total": mean, "wait_us_total": 0.0,
        "hits": 1,
    }


def doc(**means):
    return {
        "schema": "repro.obs/critical_path/v1",
        "traces": 1,
        "end_to_end_us": {
            "p50": sum(means.values()),
            "p99": sum(means.values()),
            "mean": sum(means.values()),
        },
        "nodes": {label: node(mean) for label, mean in means.items()},
        "flame": [],
    }


class TestRankSuspects:
    def test_largest_absolute_delta_first(self):
        baseline = doc(a=10.0, b=5.0, c=1.0)
        fresh = doc(a=12.0, b=11.0, c=1.0)
        suspects = rank_suspects(baseline, fresh)
        assert [s["node"] for s in suspects] == ["b", "a"]
        assert suspects[0]["delta_us"] == pytest.approx(6.0)
        assert suspects[0]["delta_pct"] == pytest.approx(120.0)

    def test_shrunk_node_still_ranks(self):
        suspects = rank_suspects(doc(a=10.0), doc(a=2.0))
        assert suspects[0]["delta_us"] == pytest.approx(-8.0)

    def test_new_node_has_no_pct(self):
        suspects = rank_suspects(doc(a=1.0), doc(a=1.0, fresh_only=4.0))
        assert suspects[0]["node"] == "fresh_only"
        assert suspects[0]["delta_pct"] is None

    def test_noise_floor_filters(self):
        assert rank_suspects(doc(a=1.0), doc(a=1.000001)) == []


class TestRenderSuspects:
    def test_ranked_lines(self):
        baseline, fresh = doc(a=10.0), doc(a=15.0)
        lines = render_suspects(
            rank_suspects(baseline, fresh), baseline=baseline, fresh=fresh
        )
        assert lines[0].startswith("end-to-end mean 10.00us -> 15.00us")
        assert lines[1] == "#1 a  self-time +50.0% (+5.00us mean, 10.00 -> 15.00us)"

    def test_no_movement_message(self):
        lines = render_suspects([])
        assert "no critical-path node moved" in lines[0]

    def test_top_truncation(self):
        suspects = rank_suspects(
            doc(**{f"n{i}": 1.0 for i in range(5)}),
            doc(**{f"n{i}": 2.0 + i * 0.1 for i in range(5)}),
        )
        lines = render_suspects(suspects, top=2)
        assert lines[-1] == "... 3 more nodes moved"


def _profiled_run(execution_cost):
    """A small traced BFT run; only the execution cost varies."""
    tracer = Tracer()
    cluster = BftCluster(
        transport="rubin",
        config=BftConfig(
            execution_cost=execution_cost, batch_size=1, batch_delay=0.0
        ),
        tracer=tracer,
    )
    cluster.start()
    for i in range(8):
        assert cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"
    return critical_path(tracer).to_dict()


def test_injected_execution_slowdown_is_top_suspect():
    """+30% execution cost must rank ``bft.execute`` as the #1 suspect.

    This is the attribution pipeline's acceptance test: two identical
    runs except for one layer's cost, and the profile diff names exactly
    that layer first.
    """
    baseline = _profiled_run(20e-6)
    fresh = _profiled_run(26e-6)
    suspects = rank_suspects(baseline, fresh)
    assert suspects, "injected slowdown produced no suspects"
    assert suspects[0]["node"] == "bft.execute"
    assert suspects[0]["delta_pct"] > 15.0
    line = render_suspects(suspects, top=1, baseline=baseline, fresh=fresh)[1]
    assert line.startswith("#1 bft.execute")
