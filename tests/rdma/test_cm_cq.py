"""Connection manager handshake and completion-queue notification."""

import pytest

from repro.errors import RdmaError
from repro.rdma import ConnectionManager, QpState, WcStatus

from tests.rdma.conftest import RdmaPair, recv_wr, send_wr


@pytest.fixture
def cm_rig():
    """Two hosts with RDMA devices and CMs, but no pre-connected QPs."""
    rig = RdmaPair.__new__(RdmaPair)
    from repro.net import Fabric
    from repro.rdma import RdmaDevice
    from repro.sim import Environment

    rig.env = Environment()
    rig.fabric = Fabric(rig.env)
    rig.fabric.add_host("left")
    rig.fabric.add_host("right")
    rig.fabric.connect("left", "right")
    rig.left = RdmaDevice(rig.fabric.host("left"))
    rig.right = RdmaDevice(rig.fabric.host("right"))
    rig.left_cm = ConnectionManager(rig.left)
    rig.right_cm = ConnectionManager(rig.right)
    return rig


def fresh_qp(device):
    pd = device.alloc_pd()
    send_cq = device.create_cq()
    recv_cq = device.create_cq()
    return device.create_qp(pd, send_cq, recv_cq), pd, send_cq, recv_cq


class TestConnectionManager:
    def test_connect_accept_establishes_qps(self, cm_rig):
        cm_rig.right_cm.listen(7471)
        client_qp, *_ = fresh_qp(cm_rig.left)
        established = cm_rig.left_cm.connect("right", 7471, client_qp)

        def server(env):
            event = yield cm_rig.right_cm.events.get()
            assert event.kind == "CONNECT_REQUEST"
            server_qp, *_ = fresh_qp(cm_rig.right)
            event.request.accept(server_qp)
            return server_qp

        server_proc = cm_rig.env.process(server(cm_rig.env))
        qp = cm_rig.env.run(until=established)
        server_qp = cm_rig.env.run(until=server_proc)
        assert qp is client_qp
        assert client_qp.state is QpState.RTS
        assert server_qp.state is QpState.RTS
        assert client_qp.remote_qp == server_qp.qp_num
        assert server_qp.remote_qp == client_qp.qp_num

    def test_server_gets_established_event(self, cm_rig):
        cm_rig.right_cm.listen(7471)
        client_qp, *_ = fresh_qp(cm_rig.left)
        cm_rig.left_cm.connect("right", 7471, client_qp)
        kinds = []

        def server(env):
            event = yield cm_rig.right_cm.events.get()
            kinds.append(event.kind)
            server_qp, *_ = fresh_qp(cm_rig.right)
            event.request.accept(server_qp)
            event2 = yield cm_rig.right_cm.events.get()
            kinds.append(event2.kind)
            return event2.qp

        p = cm_rig.env.process(server(cm_rig.env))
        cm_rig.env.run(until=p)
        assert kinds == ["CONNECT_REQUEST", "ESTABLISHED"]

    def test_connect_to_unbound_port_rejected(self, cm_rig):
        client_qp, *_ = fresh_qp(cm_rig.left)
        established = cm_rig.left_cm.connect("right", 9999, client_qp)
        with pytest.raises(RdmaError, match="no listener"):
            cm_rig.env.run(until=established)

    def test_explicit_reject(self, cm_rig):
        cm_rig.right_cm.listen(7471)
        client_qp, *_ = fresh_qp(cm_rig.left)
        established = cm_rig.left_cm.connect("right", 7471, client_qp)

        def server(env):
            event = yield cm_rig.right_cm.events.get()
            event.request.reject("not today")

        cm_rig.env.process(server(cm_rig.env))
        with pytest.raises(RdmaError, match="not today"):
            cm_rig.env.run(until=established)

    def test_double_listen_raises(self, cm_rig):
        cm_rig.right_cm.listen(7471)
        with pytest.raises(RdmaError, match="already listening"):
            cm_rig.right_cm.listen(7471)

    def test_closed_listener_stops_accepting(self, cm_rig):
        listener = cm_rig.right_cm.listen(7471)
        listener.close()
        client_qp, *_ = fresh_qp(cm_rig.left)
        established = cm_rig.left_cm.connect("right", 7471, client_qp)
        with pytest.raises(RdmaError, match="no listener"):
            cm_rig.env.run(until=established)

    def test_event_watcher_fires(self, cm_rig):
        seen = []
        cm_rig.right_cm.add_event_watcher(lambda ev: seen.append(ev.kind))
        cm_rig.right_cm.listen(7471)
        client_qp, *_ = fresh_qp(cm_rig.left)
        cm_rig.left_cm.connect("right", 7471, client_qp)

        def server(env):
            event = yield cm_rig.right_cm.events.get()
            server_qp, *_ = fresh_qp(cm_rig.right)
            event.request.accept(server_qp)

        cm_rig.env.process(server(cm_rig.env))
        cm_rig.env.run(until=cm_rig.env.now + 1e-3)
        assert "CONNECT_REQUEST" in seen
        assert "ESTABLISHED" in seen

    def test_accept_twice_raises(self, cm_rig):
        cm_rig.right_cm.listen(7471)
        client_qp, *_ = fresh_qp(cm_rig.left)
        cm_rig.left_cm.connect("right", 7471, client_qp)

        def server(env):
            event = yield cm_rig.right_cm.events.get()
            server_qp, *_ = fresh_qp(cm_rig.right)
            event.request.accept(server_qp)
            with pytest.raises(RdmaError, match="already decided"):
                event.request.accept(server_qp)

        p = cm_rig.env.process(server(cm_rig.env))
        cm_rig.env.run(until=p)


class TestCompletionChannel:
    def test_notification_on_next_cqe(self, rig):
        channel = rig.right.create_comp_channel()
        rig.right_recv_cq.channel = channel
        rig.right_recv_cq.request_notify()
        src = rig.register("left", 64, fill=b"notify me")
        dst = rig.register("right", 64)
        rig.right_qp.post_recv(recv_wr(1, dst))

        def waiter(env):
            cq = yield channel.get_cq_event()
            return cq

        p = rig.env.process(waiter(rig.env))
        rig.left_qp.post_send(send_wr(1, src, length=9))
        cq = rig.env.run(until=p)
        assert cq is rig.right_recv_cq
        assert cq.poll()[0].ok

    def test_request_notify_with_pending_fires_immediately(self, rig):
        channel = rig.right.create_comp_channel()
        rig.right_recv_cq.channel = channel
        src = rig.register("left", 64)
        dst = rig.register("right", 64)
        rig.right_qp.post_recv(recv_wr(1, dst))
        rig.left_qp.post_send(send_wr(1, src, length=4))
        rig.run_for(1e-3)  # CQE lands while un-armed
        rig.right_recv_cq.request_notify()  # must notify despite no new CQE
        assert channel.try_get_cq_event() is rig.right_recv_cq

    def test_unarmed_cq_does_not_notify(self, rig):
        channel = rig.right.create_comp_channel()
        rig.right_recv_cq.channel = channel
        src = rig.register("left", 64)
        dst = rig.register("right", 64)
        rig.right_qp.post_recv(recv_wr(1, dst))
        rig.left_qp.post_send(send_wr(1, src, length=4))
        rig.run_for(1e-3)
        assert channel.try_get_cq_event() is None

    def test_notify_fires_once_per_arm(self, rig):
        channel = rig.right.create_comp_channel()
        rig.right_recv_cq.channel = channel
        rig.right_recv_cq.request_notify()
        src = rig.register("left", 64)
        dst = rig.register("right", 64)
        rig.right_qp.post_recv_batch([recv_wr(1, dst), recv_wr(2, dst)])
        rig.left_qp.post_send(send_wr(1, src, length=4))
        rig.left_qp.post_send(send_wr(2, src, length=4))
        rig.run_for(2e-3)
        assert channel.try_get_cq_event() is rig.right_recv_cq
        assert channel.try_get_cq_event() is None  # not re-armed

    def test_request_notify_without_channel_raises(self, rig):
        with pytest.raises(RdmaError, match="no completion channel"):
            rig.left_send_cq.request_notify()

    def test_cq_overrun_is_loud(self):
        rig = RdmaPair()
        tiny_cq = rig.right.create_cq(capacity=1, name="tiny")
        from repro.rdma import WorkCompletion, Opcode

        tiny_cq.push(
            WorkCompletion(1, WcStatus.SUCCESS, Opcode.RECV, 0, 1)
        )
        with pytest.raises(RdmaError, match="overrun"):
            tiny_cq.push(
                WorkCompletion(2, WcStatus.SUCCESS, Opcode.RECV, 0, 1)
            )


class TestLossRecovery:
    def _rig_with_loss(self, loss_rate, seed=7):
        import random

        rng = random.Random(seed)

        def drop_fn(frame):
            # Only drop RoCE data traffic; CM runs before loss matters here.
            return rng.random() < loss_rate

        from repro.rdma import QpCapabilities

        return RdmaPair(
            caps=QpCapabilities(retry_timeout=200e-6), drop_fn=drop_fn
        )

    def test_send_recovers_from_loss(self):
        rig = self._rig_with_loss(0.05)
        payload = bytes(i % 256 for i in range(30_000))
        src = rig.register("left", len(payload), fill=payload)
        dst = rig.register("right", len(payload))
        rig.right_qp.post_recv(recv_wr(1, dst))
        rig.left_qp.post_send(send_wr(1, src))
        wcs = rig.poll_until(rig.right_recv_cq, deadline=2.0)
        assert wcs and wcs[0].ok
        assert bytes(dst.buffer) == payload

    def test_read_recovers_from_loss(self):
        from repro.rdma import Access

        rig = self._rig_with_loss(0.05, seed=11)
        payload = bytes((5 * i) % 256 for i in range(20_000))
        remote = rig.register(
            "right",
            len(payload),
            access=Access.LOCAL_WRITE | Access.REMOTE_READ,
            fill=payload,
        )
        local = rig.register("left", len(payload))
        from tests.rdma.test_one_sided import read_wr

        rig.left_qp.post_send(read_wr(1, local, remote.remote_address()))
        wcs = rig.poll_until(rig.left_send_cq, deadline=2.0)
        assert wcs and wcs[0].ok
        assert bytes(local.buffer) == payload

    def test_total_blackhole_exhausts_retries(self):
        from repro.rdma import QpCapabilities

        rig = RdmaPair(
            caps=QpCapabilities(retry_timeout=100e-6, retry_count=3),
            drop_fn=lambda frame: frame.payload.__class__.__name__ == "RocePacket",
        )
        src = rig.register("left", 64, fill=b"void")
        rig.left_qp.post_send(send_wr(1, src, length=4))
        rig.run_for(50e-3)
        assert rig.left_qp.state is QpState.ERROR
        wcs = rig.left_send_cq.poll()
        assert wcs[0].status is WcStatus.RETRY_EXC_ERR
