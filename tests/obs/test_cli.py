"""``python -m repro.obs``: artifact auto-detection and rendering."""

import json

import pytest

from repro.obs import MetricsSampler, critical_path
from repro.obs.__main__ import main
from repro.obs.sampler import write_json_atomic
from repro.sim import Counter, Environment
from repro.trace import MetricsRegistry, Tracer, write_chrome_trace


class FakeEnv:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def artifacts(tmp_path):
    """One of each artifact kind, written to disk."""
    env = FakeEnv()
    tracer = Tracer(env)
    root = tracer.start_trace("req", layer="client", track="client")
    env.now = 1e-6
    child = tracer.start_span("qp.send", layer="qp", parent=root, track="qp")
    env.now = 4e-6
    child.end()
    env.now = 5e-6
    root.end()

    profile = tmp_path / "PROFILE_x.json"
    write_json_atomic(critical_path(tracer).to_dict(), str(profile))

    trace = tmp_path / "TRACE_x.json"
    write_chrome_trace(tracer, str(trace))

    sim = Environment()
    registry = MetricsRegistry(name="t")
    counter = Counter("ops")
    registry.register("ops", counter)
    sampler = MetricsSampler().bind(sim, registry)
    counter.increment(3)
    sampler.sample_now()
    timeseries = tmp_path / "TIMESERIES_x.json"
    sampler.write(str(timeseries))

    return {"profile": profile, "trace": trace, "timeseries": timeseries}


class TestReport:
    def test_renders_profile(self, artifacts, capsys):
        assert main(["report", str(artifacts["profile"])]) == 0
        out = capsys.readouterr().out
        assert "critical path over 1 traces" in out
        assert "qp.send" in out

    def test_renders_timeseries(self, artifacts, capsys):
        assert main(["report", str(artifacts["timeseries"])]) == 0
        out = capsys.readouterr().out
        assert "1 samples" in out
        assert "ops" in out

    def test_profiles_chrome_trace_on_the_fly(self, artifacts, capsys):
        assert main(["report", str(artifacts["trace"]), "--flame"]) == 0
        out = capsys.readouterr().out
        assert "critical path over 1 traces" in out
        assert "req;qp.send" in out  # flame view

    def test_multiple_artifacts_one_invocation(self, artifacts, capsys):
        assert (
            main(
                [
                    "report",
                    str(artifacts["timeseries"]),
                    str(artifacts["profile"]),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("==") >= 2

    def test_unrecognised_artifact_fails(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": 1}))
        assert main(["report", str(bogus)]) == 2
        assert "unrecognised artifact" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDiff:
    def test_ranks_suspects(self, artifacts, tmp_path, capsys):
        baseline = json.loads(artifacts["profile"].read_text())
        fresh = json.loads(artifacts["profile"].read_text())
        fresh["nodes"]["qp.send"]["mean_us"] *= 1.4
        fresh_path = tmp_path / "PROFILE_fresh.json"
        write_json_atomic(fresh, str(fresh_path))
        assert main(
            ["diff", str(artifacts["profile"]), str(fresh_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "#1 qp.send" in out
        assert "+40.0%" in out

    def test_rejects_non_profile(self, artifacts, capsys):
        assert (
            main(
                [
                    "diff",
                    str(artifacts["timeseries"]),
                    str(artifacts["profile"]),
                ]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err
