"""Determinism lint: no ambient randomness or wall-clock in the model.

Replayable schedule exploration requires every source of nondeterminism
under ``src/repro`` to be either the simulated clock or an explicitly
seeded RNG.  This AST lint enforces it:

* ``import time`` (and ``from time import ...``) only in the wall-clock
  benchmark modules, which measure the *host*, never the model;
* ``random`` may only be used to construct seeded ``random.Random``
  instances — the module-level functions share hidden global state;
* no ``from random import ...`` anywhere (it hides which RNG is used).
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Modules allowed to read the host clock: they benchmark the host
#: (wall-clock throughput gate, perf-regression stamps), not the model.
TIME_ALLOWED = {
    "bench/wallclock.py",
    "bench/regression.py",
}


def _source_files():
    return sorted(SRC_ROOT.rglob("*.py"))


def _relative(path: Path) -> str:
    return path.relative_to(SRC_ROOT).as_posix()


class TestDeterminismLint:
    def test_wall_clock_only_in_host_benchmarks(self):
        offenders = []
        for path in _source_files():
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                imports_time = (
                    isinstance(node, ast.Import)
                    and any(a.name.split(".")[0] == "time" for a in node.names)
                ) or (
                    isinstance(node, ast.ImportFrom)
                    and (node.module or "").split(".")[0] == "time"
                )
                if imports_time and _relative(path) not in TIME_ALLOWED:
                    offenders.append(f"{_relative(path)}:{node.lineno}")
        assert not offenders, (
            "wall-clock import outside the host benchmarks "
            f"(simulated code must use env.now): {offenders}"
        )

    def test_no_from_random_imports(self):
        offenders = []
        for path in _source_files():
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.ImportFrom)
                    and (node.module or "").split(".")[0] == "random"
                ):
                    offenders.append(f"{_relative(path)}:{node.lineno}")
        assert not offenders, f"use seeded random.Random instances: {offenders}"

    def test_random_used_only_to_construct_seeded_rngs(self):
        """Every ``random.X`` attribute must be ``random.Random`` (the
        seeded generator class); module-level helpers like
        ``random.random()`` draw from hidden global state and would make
        runs irreproducible."""
        offenders = []
        for path in _source_files():
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr != "Random"
                ):
                    offenders.append(
                        f"{_relative(path)}:{node.lineno} random.{node.attr}"
                    )
        assert not offenders, f"unseeded RNG use: {offenders}"

    def test_seeded_rng_constructions_carry_a_seed(self):
        """``random.Random()`` with no argument seeds from the OS — as
        nondeterministic as the module-level functions."""
        offenders = []
        for path in _source_files():
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "random"
                    and node.func.attr == "Random"
                    and not node.args
                    and not node.keywords
                ):
                    offenders.append(f"{_relative(path)}:{node.lineno}")
        assert not offenders, f"unseeded random.Random(): {offenders}"
