"""MetricsRegistry: registration rules and snapshot rendering."""

import json

import pytest

from repro.errors import ReproError
from repro.sim import Counter, Environment, TimeSeries, UtilizationTracker
from repro.trace import MetricsRegistry


class TestRegistration:
    def test_register_and_contains(self):
        registry = MetricsRegistry()
        counter = Counter("x")
        assert registry.register("a.b", counter) is counter
        assert "a.b" in registry
        assert len(registry) == 1
        assert registry.names() == ["a.b"]

    def test_register_many_prefixes(self):
        registry = MetricsRegistry()
        registry.register_many("net.r0", {"tx": Counter("tx"), "rx": Counter("rx")})
        assert sorted(registry.names()) == ["net.r0.rx", "net.r0.tx"]

    def test_duplicate_rejected(self):
        registry = MetricsRegistry()
        registry.register("a", Counter("x"))
        with pytest.raises(ReproError):
            registry.register("a", Counter("y"))

    def test_empty_name_rejected(self):
        with pytest.raises(ReproError):
            MetricsRegistry().register("", Counter("x"))

    def test_unsupported_probe_rejected(self):
        with pytest.raises(ReproError):
            MetricsRegistry().register("a", object())


class TestSnapshot:
    def build(self):
        env = Environment()
        registry = MetricsRegistry("test")
        counter = Counter("ops")
        counter.increment(3)
        series = TimeSeries(env, "lat")
        for t, v in ((0.0, 1.0), (1.0, 2.0)):
            series.record(v, time=t)
        tracker = UtilizationTracker(env, "cpu")
        registry.register("bft.r0.ops", counter)
        registry.register("bft.r0.latency", series)
        registry.register("host.r0.cpu", tracker)
        registry.register("custom.value", lambda: 42)
        return registry

    def test_flat_snapshot(self):
        snap = self.build().snapshot()
        assert snap["bft.r0.ops"] == 3
        assert snap["bft.r0.latency"]["count"] == 2
        assert snap["bft.r0.latency"]["p50"] == 1.0
        assert "rate" in snap["bft.r0.latency"]
        assert snap["host.r0.cpu"] == {"busy_time": 0.0, "utilization": 0.0}
        assert snap["custom.value"] == 42
        assert list(snap) == sorted(snap)

    def test_tree_snapshot(self):
        tree = self.build().snapshot_tree()
        assert tree["bft"]["r0"]["ops"] == 3
        assert tree["custom"]["value"] == 42

    def test_tree_leaf_subtree_collision(self):
        registry = MetricsRegistry()
        registry.register("a", lambda: 1)
        registry.register("a.b", lambda: 2)
        tree = registry.snapshot_tree()
        assert tree["a"][""] == 1
        assert tree["a"]["b"] == 2

    def test_to_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        snap = self.build().to_json(str(path))
        assert json.loads(path.read_text()) == snap

    def test_render(self):
        text = self.build().render()
        assert "bft.r0.ops: 3" in text
        assert "custom.value: 42" in text


class TestClusterAssembly:
    def test_bft_cluster_registry(self):
        # The cluster helper wires every layer's probes in one call.
        from repro.bft.cluster import BftCluster

        cluster = BftCluster()
        cluster.start()
        cluster.invoke_and_wait(b"PUT k=v")
        registry = cluster.metrics_registry()
        snap = registry.snapshot()
        assert snap["replica.r0.committed"] >= 1
        assert snap["client.c0.invocations"] == 1
        assert "endpoint.r0.supervisor.reconnects" in snap
        assert any(name.startswith("host.") for name in snap)
        assert any(name.startswith("link.") for name in snap)
        # Frames actually flowed somewhere.
        assert sum(
            value for name, value in snap.items()
            if name.startswith("link.") and name.endswith(".frames_sent")
        ) > 0


class TestDuplicatePolicies:
    """The ``if_exists`` policies guard restarted components' probes."""

    def test_suffix_policy_generates_generations(self):
        registry = MetricsRegistry()
        first = Counter("a")
        second = Counter("b")
        third = Counter("c")
        registry.register("replica.r2.committed", first)
        registry.register("replica.r2.committed", second, if_exists="suffix")
        registry.register("replica.r2.committed", third, if_exists="suffix")
        assert registry.names() == [
            "replica.r2.committed",
            "replica.r2.committed#2",
            "replica.r2.committed#3",
        ]
        snapshot = registry.snapshot()
        assert snapshot["replica.r2.committed"] == 0

    def test_replace_policy_overwrites(self):
        registry = MetricsRegistry()
        registry.register("a", Counter("x"))
        replacement = Counter("y")
        replacement.increment(7)
        registry.register("a", replacement, if_exists="replace")
        assert registry.snapshot() == {"a": 7}

    def test_unknown_policy_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.register("a", Counter("x"), if_exists="maybe")

    def test_register_many_passes_policy(self):
        registry = MetricsRegistry()
        registry.register_many("p", {"x": Counter("x")})
        registry.register_many("p", {"x": Counter("x")}, if_exists="suffix")
        assert registry.names() == ["p.x", "p.x#2"]

    def test_restarted_replica_probes_do_not_collide(self):
        """A long-lived registry across a crash/restart keeps both
        incarnations' probes addressable instead of raising."""
        from repro.bft import BftCluster, BftConfig
        from repro.rubin import RubinConfig

        cluster = BftCluster(
            transport="rubin",
            config=BftConfig(view_change_timeout=80e-3, batch_delay=0.0,
                             batch_size=1),
            rubin_config=RubinConfig(retry_timeout=1e-3, retry_count=3),
            faulty_fabric=True,
        )
        cluster.start()
        registry = MetricsRegistry(name="long-lived")

        def register_incarnation(replica_id):
            replica = cluster.replicas[replica_id]
            registry.register_many(
                f"replica.{replica_id}",
                {"committed": lambda r=replica: r.committed_count},
                if_exists="suffix",
            )

        register_incarnation("r2")
        cluster.invoke_and_wait(b"PUT a=1")
        cluster.crash_replica("r2")
        cluster.run_for(30e-3)
        cluster.restart_replica("r2")
        cluster.run_for(100e-3)
        register_incarnation("r2")  # would raise under the old contract

        names = registry.names()
        assert names == ["replica.r2.committed", "replica.r2.committed#2"]
        registry.snapshot()  # both incarnations remain probeable


class TestGaugeProbe:
    def test_gauge_snapshot_tracks_extremes(self):
        from repro.sim import Gauge

        registry = MetricsRegistry()
        gauge = Gauge("depth")
        registry.register("cq.depth", gauge)
        gauge.set(5)
        gauge.set(2)
        gauge.adjust(-4)
        assert registry.snapshot()["cq.depth"] == {
            "value": -2,
            "min": -2,
            "max": 5,
        }
