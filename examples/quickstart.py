#!/usr/bin/env python3
"""Quickstart: an RDMA echo over RUBIN channels in ~60 lines.

Builds the paper's two-machine testbed, connects a RUBIN channel through
the RDMA connection manager, and bounces one message off an echo server —
the smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from repro.bench.calibration import build_testbed
from repro.nio import ByteBuffer
from repro.rdma import ConnectionManager
from repro.rubin import RubinChannel, RubinConfig, RubinServerChannel


def main() -> None:
    # Two 4-core hosts joined by a 10 Gbps link, with RDMA NICs installed.
    bed = build_testbed()
    env = bed.env

    config = RubinConfig()  # all Section-IV optimizations at their defaults
    server_cm = ConnectionManager(bed.server.stack("rdma"))
    client_cm = ConnectionManager(bed.client.stack("rdma"))

    server_channel = RubinServerChannel(
        bed.server.stack("rdma"), server_cm, port=4791, config=config
    )
    client_channel = RubinChannel.connect(
        bed.client.stack("rdma"), client_cm, "server", 4791, config
    )

    def server(env):
        # Wait for the connection request, accept, then echo one message.
        while not server_channel.connect_pending:
            yield env.timeout(1e-6)
        channel = server_channel.accept()
        buffer = ByteBuffer.allocate(4096)
        while True:
            n = yield channel.read(buffer)
            if n and n > 0:
                break
            yield env.timeout(1e-6)
        buffer.flip()
        print(f"[server] t={env.now * 1e6:7.2f}us  got {buffer.remaining()}B")
        while buffer.has_remaining():
            yield channel.write(buffer)

    def client(env):
        while not client_channel.established:
            yield env.timeout(1e-6)
        message = b"hello, RDMA world!"
        print(f"[client] t={env.now * 1e6:7.2f}us  sending {message!r}")
        out = ByteBuffer.wrap(message)
        start = env.now
        while out.has_remaining():
            yield client_channel.write(out)
        reply = ByteBuffer.allocate(4096)
        got = 0
        while got < len(message):
            n = yield client_channel.read(reply)
            if n and n > 0:
                got += n
            else:
                yield env.timeout(1e-6)
        rtt_us = (env.now - start) * 1e6
        reply.flip()
        print(f"[client] t={env.now * 1e6:7.2f}us  echo {reply.get()!r}")
        print(f"[client] round trip: {rtt_us:.2f} us over simulated RoCE")

    env.process(server(env))
    done = env.process(client(env))
    env.run(until=done)


if __name__ == "__main__":
    main()
