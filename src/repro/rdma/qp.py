"""Reliable-connection queue pairs.

"When communication is initiated, each side must create a queue pair of
send and receive queues for holding data transfer requests" (paper,
Section II-A).  This module implements the RC queue pair: the send-queue
pipeline (WQE fetch, gather DMA, MTU packetization), the receive path
(receive-WR matching, scatter DMA, completion generation), the
reliability machinery (PSNs, cumulative ACKs, go-back-N, RNR and retry
budgets) and the slot-accounting rules that make *selective signaling*
both a win and a foot-gun:

* an unsignaled send generates no CQE, but its send-queue slot is only
  recycled once a **later signaled** WR completes — post unsignaled
  forever and the queue wedges (the "ill-advised configuration" failure
  mode the paper warns about);
* completions are delivered strictly in post order, even when a READ
  overtakes a later SEND's ACK.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.audit import get_audit
from repro.errors import RdmaError
from repro.net.frame import Frame
from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.mr import (
    MemoryRegion,
    StalePermissionError,
    UnauthorizedAccessError,
)
from repro.rdma.transport import PacketType, RocePacket
from repro.rdma.verbs import Access, Opcode, QpState, WcStatus
from repro.rdma.wr import RecvWorkRequest, SendWorkRequest
from repro.sim import Store, Timeout
from repro.sim.process import Drive
from repro.sim.copystats import COPYSTATS
from repro.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdma.device import RdmaDevice
    from repro.sim import Environment

__all__ = ["QueuePair", "QpCapabilities"]

_qp_numbers = itertools.count(100)
_read_ids = itertools.count(1)


@dataclass(frozen=True)
class QpCapabilities:
    """Sizing and retry parameters of a queue pair."""

    max_send_wr: int = 128
    max_recv_wr: int = 128
    max_inline: int = 256
    max_inflight_packets: int = 256
    #: Transport retry timer.  Generous by default: the simulated fabric
    #: is lossless unless a test injects drops, and deep responder queues
    #: under pipelined bulk traffic must not trigger spurious go-back-N.
    retry_timeout: float = 4e-3
    retry_count: int = 7
    rnr_retry: int = 7
    rnr_timer: float = 100e-6
    #: End-to-end credit flow control: the responder advertises its
    #: cumulative posted-receive count on ACKs/NAKs and the requester
    #: refuses to post two-sided SENDs past that window.  Off by default:
    #: raw-verbs users manage their own receive provisioning and the RNR
    #: machinery is the only safety net (as on a real NIC).
    flow_control: bool = False
    #: Credits the requester may assume before the first advertisement
    #: arrives (the peer's initially posted receive count).
    initial_credit: int = 0

    def __post_init__(self) -> None:
        if self.max_send_wr < 1 or self.max_recv_wr < 1:
            raise RdmaError("queue sizes must be >= 1")
        if self.max_inline < 0:
            raise RdmaError("max_inline must be >= 0")
        if self.retry_timeout <= 0 or self.rnr_timer <= 0:
            raise RdmaError("timers must be positive")
        if self.rnr_retry < 0:
            raise RdmaError("rnr_retry must be >= 0")
        if self.flow_control and self.initial_credit < 1:
            raise RdmaError("flow_control requires initial_credit >= 1")


class _PendingSend:
    """Send-queue bookkeeping for one posted WR."""

    __slots__ = ("wr", "last_psn", "done", "status", "byte_len", "read_id")

    def __init__(self, wr: SendWorkRequest):
        self.wr = wr
        self.last_psn: Optional[int] = None
        self.done = False
        self.status = WcStatus.SUCCESS
        self.byte_len = wr.length
        self.read_id = 0


class _ReadContext:
    """Requester-side reassembly state for one outstanding RDMA READ."""

    __slots__ = ("entry", "chunks_received", "chunk_count", "cursor")

    def __init__(self, entry: _PendingSend):
        self.entry = entry
        self.chunks_received = 0
        self.chunk_count = 0
        self.cursor = 0


class QueuePair:
    """One end of a reliable connection."""

    def __init__(
        self,
        device: "RdmaDevice",
        pd,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        caps: Optional[QpCapabilities] = None,
    ):
        if send_cq.env is not device.env or recv_cq.env is not device.env:
            raise RdmaError("CQs must belong to the same environment")
        if pd.device is not device:
            raise RdmaError("PD belongs to a different device")
        self.device = device
        self.env: "Environment" = device.env
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.caps = caps if caps is not None else QpCapabilities()
        self.qp_num = next(_qp_numbers)
        self.state = QpState.RESET
        self.remote_host: Optional[str] = None
        self.remote_qp: Optional[int] = None

        # --- send side ------------------------------------------------------
        self._pending: Deque[_PendingSend] = deque()
        self._sq_store: Store = Store(self.env)
        self._next_psn = 0
        self._unacked: List[tuple[RocePacket, float]] = []
        self._space_event = None
        self._retry_budget = self.caps.retry_count
        self._rnr_budget = self.caps.rnr_retry
        self._rnr_blocked_until = 0.0
        self._reads: Dict[int, _ReadContext] = {}
        # Requester-side credit state (meaningful when caps.flow_control):
        # cumulative SENDs posted vs. the peer's advertised cumulative
        # posted-receive count.
        self._sent_total = 0
        self._credit_limit = self.caps.initial_credit
        self._credit_watchers: List = []

        # --- receive side -----------------------------------------------------
        self._recv_queue: Deque[RecvWorkRequest] = deque()
        self._expected_psn = 0
        self._cur_recv: Optional[dict] = None
        self._cur_write: Optional[dict] = None
        self._last_nak_sent = -1
        # Responder-side credit state: cumulative receives posted /
        # messages consumed / last advertisement sent.
        self._posted_recv_total = 0
        self._messages_received = 0
        self._last_advertised = self.caps.initial_credit

        self._error_watchers: List = []
        #: WcStatus value of the failure that errored this QP (None while
        #: healthy, or when the error came from the responder side).
        self.error_cause: Optional[str] = None
        device._register_qp(self)

    # ------------------------------------------------------------------
    # state transitions
    # ------------------------------------------------------------------

    def _set_state(self, new: QpState) -> None:
        """Transition the verbs state machine (audited)."""
        old, self.state = self.state, new
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_qp_transition(
                self.device.host.name, self.qp_num, old.value, new.value
            )

    def connect(self, remote_host: str, remote_qp_num: int) -> None:
        """Transition RESET -> RTS toward a peer QP.

        Real applications exchange QP numbers out of band (or via the
        connection manager, which calls this internally).
        """
        if self.state is not QpState.RESET:
            raise RdmaError(f"{self}: connect from state {self.state.value}")
        if remote_host == self.device.host.name:
            raise RdmaError(f"{self}: loopback QPs are not supported")
        self.remote_host = remote_host
        self.remote_qp = remote_qp_num
        # The CM handshake drives INIT/RTR internally; the simulator
        # collapses RESET->INIT->RTR->RTS into one audited transition.
        self._set_state(QpState.RTS)
        # Drive (not Process): one resume per WQE stage on the send path.
        Drive(self.env, self._sq_loop())
        self.env.process(self._retry_loop(), name=f"qp{self.qp_num}.retry")

    def add_error_watcher(self, watcher) -> None:
        """Invoke ``watcher(qp)`` when the QP transitions to ERROR."""
        self._error_watchers.append(watcher)

    def add_credit_watcher(self, watcher) -> None:
        """Invoke ``watcher(qp)`` when a credit update unblocks the send
        path (a sender that was out of credits may post again)."""
        self._credit_watchers.append(watcher)

    def destroy(self) -> None:
        """Tear the QP down: flush outstanding work, unregister from the
        device.

        Error watchers are detached first — destruction is a deliberate
        act by the owner, not a fault to react to.  After this the QP
        number is dead: stray packets for it are dropped by the device's
        rx loop, and a fresh QP (new number) must be provisioned to talk
        to the peer again.
        """
        self._error_watchers.clear()
        if self.state is not QpState.ERROR:
            self._set_state(QpState.ERROR)
            self._flush_queues()
        audit = get_audit(self.env)
        if audit.enabled:
            # Every posted receive WR must have completed (successfully
            # or flushed) by now; survivors were silently dropped.
            audit.on_qp_destroy(self.device.host.name, self.qp_num)
        self.device._unregister_qp(self)

    def _enter_error(self) -> None:
        if self.state is QpState.ERROR:
            return
        self._set_state(QpState.ERROR)
        self._flush_queues()
        for watcher in list(self._error_watchers):
            watcher(self)

    def _flush_queues(self) -> None:
        """Complete everything outstanding with flush errors."""
        if self._cur_recv is not None:
            # A message was mid-reassembly: close its trace span so the
            # failed delivery does not leak an open span.
            span = self._cur_recv.pop("span", None)
            if span is not None:
                span.end(aborted=True)
            # The WR was consumed from the receive queue but its flush
            # produces no CQE (the partial message is simply dropped);
            # settle the audit accounting without touching the CQ so an
            # audited run schedules identically to an unaudited one.
            audit = get_audit(self.env)
            if audit.enabled:
                audit.record(
                    "rdma", "recv-aborted-midstream",
                    self.device.host.name,
                    qp_num=self.qp_num,
                    wr_id=self._cur_recv["wr"].wr_id,
                )
                audit.on_recv_complete(self.qp_num, self._cur_recv["wr"].wr_id)
            self._cur_recv = None
        while self._pending:
            entry = self._pending.popleft()
            status = (
                entry.status
                if entry.status is not WcStatus.SUCCESS
                else WcStatus.WR_FLUSH_ERR
            )
            self.send_cq.push(
                WorkCompletion(
                    wr_id=entry.wr.wr_id,
                    status=status,
                    opcode=entry.wr.opcode,
                    byte_len=0,
                    qp_num=self.qp_num,
                    trace_ctx=entry.wr.trace_ctx,
                )
            )
        while self._recv_queue:
            wr = self._recv_queue.popleft()
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    status=WcStatus.WR_FLUSH_ERR,
                    opcode=Opcode.RECV,
                    byte_len=0,
                    qp_num=self.qp_num,
                )
            )
        self._unacked.clear()
        self._reads.clear()
        self._grant_space()

    # ------------------------------------------------------------------
    # posting
    # ------------------------------------------------------------------

    @property
    def send_queue_free(self) -> int:
        """Free send-queue slots (driver view: freed by CQE generation)."""
        return self.caps.max_send_wr - len(self._pending)

    @property
    def recv_queue_depth(self) -> int:
        """Receive WRs currently posted."""
        return len(self._recv_queue)

    @property
    def send_credits_remaining(self) -> int:
        """Two-sided SENDs the peer's advertised window still allows.

        Without flow control the window is effectively unbounded (the RNR
        machinery is the only brake).
        """
        if not self.caps.flow_control:
            return 1 << 30
        return self._credit_limit - self._sent_total

    def post_send(self, wr: SendWorkRequest) -> None:
        """Post one WR to the send queue (non-blocking)."""
        self.post_send_batch([wr])

    def post_send_batch(self, wrs: List[SendWorkRequest]) -> None:
        """Post several WRs with one doorbell (the paper's batching)."""
        if self.state is not QpState.RTS:
            raise RdmaError(f"{self}: post_send in state {self.state.value}")
        if len(wrs) > self.send_queue_free:
            raise RdmaError(
                f"{self}: send queue full "
                f"({len(self._pending)}/{self.caps.max_send_wr} slots used; "
                "unsignaled slots recycle only when a later signaled WR "
                "completes)"
            )
        for wr in wrs:
            if wr.inline_data is not None and len(wr.inline_data) > self.caps.max_inline:
                raise RdmaError(
                    f"{self}: inline data {len(wr.inline_data)}B exceeds "
                    f"max_inline {self.caps.max_inline}B"
                )
            if wr.sge is not None:
                # Local protection check at post time (lkey validity).
                sge = wr.sge
                mr = sge.mr
                if mr.pd is not self.pd:
                    raise RdmaError(f"{self}: SGE memory region is in a foreign PD")
                if (
                    wr.opcode is not Opcode.RDMA_READ
                    and not mr.stable
                    and wr.snapshot is None
                    and not mr.invalidated
                    and 0 <= sge.offset
                    and sge.offset + sge.length <= mr.length
                ):
                    # The application owns this memory and may mutate it
                    # the moment we return; pin the gather source now (the
                    # send side's single owned copy).  Out-of-bounds SGEs
                    # are left alone so they still surface as a
                    # LOC_PROT_ERR completion at WQE fetch, not here.
                    wr.snapshot = mr.read_bytes(sge.offset, sge.length)
            if self.caps.flow_control and wr.opcode is Opcode.SEND:
                # Credit consumed at post time: every two-sided SEND will
                # occupy exactly one peer receive WR.
                self._sent_total += 1
                audit = get_audit(self.env)
                if audit.enabled:
                    audit.on_send_credit(
                        self.device.host.name,
                        self.qp_num,
                        self._sent_total,
                        self._credit_limit,
                    )
            entry = _PendingSend(wr)
            self._pending.append(entry)
            self._sq_store.put(entry)

    def post_recv(self, wr: RecvWorkRequest) -> None:
        """Post one receive WR (non-blocking)."""
        self.post_recv_batch([wr])

    def post_recv_batch(self, wrs: List[RecvWorkRequest]) -> None:
        """Post several receive WRs with one doorbell."""
        if self.state in (QpState.ERROR,):
            raise RdmaError(f"{self}: post_recv in state {self.state.value}")
        if len(self._recv_queue) + len(wrs) > self.caps.max_recv_wr:
            raise RdmaError(
                f"{self}: receive queue full ({len(self._recv_queue)}"
                f"/{self.caps.max_recv_wr})"
            )
        audit = get_audit(self.env)
        for wr in wrs:
            if wr.sge.mr.pd is not self.pd:
                raise RdmaError(f"{self}: recv SGE memory region is in a foreign PD")
            wr.sge.mr.check_local_write(wr.sge.offset, wr.sge.length)
            self._recv_queue.append(wr)
            self._posted_recv_total += 1
            if audit.enabled:
                audit.on_post_recv(self.qp_num, wr.wr_id)
        if (
            self.caps.flow_control
            and self.state is QpState.RTS
            and self._messages_received >= self._last_advertised
        ):
            # The peer has (nearly) consumed the advertised window and no
            # data-path ACK is due to carry the refresh — send an
            # unsolicited credit update (a duplicate cumulative ACK) so a
            # credit-stalled sender cannot deadlock.  The guard keeps this
            # off any schedule where the window is never approached.
            self._send_control(PacketType.ACK, self._expected_psn - 1)

    # ------------------------------------------------------------------
    # send-queue pipeline
    # ------------------------------------------------------------------

    def _sq_loop(self):
        attrs = self.device.attrs
        nic = self.device.host.nic
        while self.state is QpState.RTS:
            entry = yield self._sq_store.get()
            if self.state is not QpState.RTS:
                return
            wr = entry.wr
            tracer = get_tracer(self.env)
            span = None
            if tracer.enabled and wr.trace_ctx is not None:
                span = tracer.start_span(
                    "qp.send",
                    layer="qp",
                    parent=wr.trace_ctx,
                    track=self.device.host.name,
                    wr_id=wr.wr_id,
                    opcode=wr.opcode.value,
                    nbytes=wr.length,
                )
            yield Timeout(self.env, attrs.wqe_fetch)
            try:
                data = self._gather_payload_check(wr)
            except RdmaError:
                entry.status = WcStatus.LOC_PROT_ERR
                entry.done = True
                if span is not None:
                    span.end(error=WcStatus.LOC_PROT_ERR.value)
                self._enter_error()
                return
            if wr.opcode is Opcode.RDMA_READ:
                yield from self._issue_read(entry)
                if span is not None:
                    span.end()
                continue
            if data is None:
                # Gather DMA from host memory (zero-copy: the RNIC reads
                # the registered application buffer directly).  The setup
                # round trip is what inline sends avoid.
                assert wr.sge is not None
                yield Timeout(self.env, attrs.gather_setup)
                yield nic.dma_transfer(wr.sge.length, trace_ctx=wr.trace_ctx)
                mr = wr.sge.mr
                if wr.snapshot is not None:
                    # Non-stable application memory: the owned copy was
                    # pinned at post time, before the app could touch the
                    # buffer again, so in-flight and retransmitted packets
                    # stay correct.
                    data = wr.snapshot
                elif mr.stable:
                    # The owner keeps these bytes unchanged until the WR's
                    # completion (pool/staging memory recycled on CQE), so
                    # packets may carry views of the registered buffer —
                    # the literal zero-copy send of the paper.
                    data = mr.read_view(wr.sge.offset, wr.sge.length)
                else:
                    # Defensive fallback (post-time snapshot is skipped only
                    # for SGEs that fail the protection check above).
                    data = mr.read_bytes(wr.sge.offset, wr.sge.length)
            yield from self._emit_message(entry, data)
            if span is not None:
                span.end()

    def _gather_payload_check(self, wr: SendWorkRequest) -> Optional[bytes]:
        """Inline payload, or None after validating the SGE for gather."""
        if wr.inline_data is not None:
            return wr.inline_data
        assert wr.sge is not None
        wr.sge.mr.check_local_read(wr.sge.offset, wr.sge.length)
        return None

    def _emit_message(self, entry: _PendingSend, data: bytes):
        """Packetize one SEND/WRITE message and transmit it."""
        attrs = self.device.attrs
        wr = entry.wr
        mtu = attrs.mtu
        size = len(data)
        if size <= mtu:
            chunks = [data] if size else [b""]
        else:
            # Chunk through a memoryview: slicing a view never copies, so
            # packetization is copy-free for both owned snapshots and
            # stable-buffer views.
            view = data if isinstance(data, memoryview) else memoryview(data)
            chunks = [view[i : i + mtu] for i in range(0, size, mtu)]
        is_write = wr.opcode is Opcode.RDMA_WRITE
        # Reserve the whole PSN range up front so a cumulative ACK of a
        # partial prefix can never mark the message complete early.
        first_psn = self._next_psn
        self._next_psn += len(chunks)
        entry.last_psn = first_psn + len(chunks) - 1
        for index, chunk in enumerate(chunks):
            first = index == 0
            last = index == len(chunks) - 1
            if first and last:
                kind = PacketType.WRITE_ONLY if is_write else PacketType.SEND_ONLY
            elif first:
                kind = PacketType.WRITE_FIRST if is_write else PacketType.SEND_FIRST
            elif last:
                kind = PacketType.WRITE_LAST if is_write else PacketType.SEND_LAST
            else:
                kind = (
                    PacketType.WRITE_MIDDLE if is_write else PacketType.SEND_MIDDLE
                )
            packet = RocePacket(
                kind=kind,
                src_host=self.device.host.name,
                src_qp=self.qp_num,
                dst_host=self.remote_host,  # type: ignore[arg-type]
                dst_qp=self.remote_qp,  # type: ignore[arg-type]
                psn=first_psn + index,
                payload=chunk,
                total_length=len(data) if first else 0,
                rkey=wr.remote.rkey if (is_write and first) else None,
                remote_offset=wr.remote.offset if (is_write and first) else 0,
                trace_ctx=wr.trace_ctx,
            )
            yield from self._wait_inflight_space()
            if self.state is not QpState.RTS:
                return
            yield Timeout(self.env, attrs.packet_process)
            self._unacked.append((packet, self.env.now))
            self._transmit(packet)

    def _issue_read(self, entry: _PendingSend):
        """Send a READ request and set up response reassembly."""
        wr = entry.wr
        assert wr.sge is not None and wr.remote is not None
        read_id = next(_read_ids)
        entry.read_id = read_id
        self._reads[read_id] = _ReadContext(entry)
        packet = RocePacket(
            kind=PacketType.READ_REQUEST,
            src_host=self.device.host.name,
            src_qp=self.qp_num,
            dst_host=self.remote_host,  # type: ignore[arg-type]
            dst_qp=self.remote_qp,  # type: ignore[arg-type]
            psn=self._next_psn,
            total_length=wr.sge.length,
            rkey=wr.remote.rkey,
            remote_offset=wr.remote.offset,
            read_id=read_id,
            trace_ctx=wr.trace_ctx,
        )
        self._next_psn += 1
        entry.last_psn = packet.psn
        yield from self._wait_inflight_space()
        if self.state is not QpState.RTS:
            return
        yield Timeout(self.env, self.device.attrs.packet_process)
        self._unacked.append((packet, self.env.now))
        self._transmit(packet)

    def _wait_inflight_space(self):
        while len(self._unacked) >= self.caps.max_inflight_packets:
            self._space_event = self.env.event()
            yield self._space_event
            self._space_event = None

    def _grant_space(self) -> None:
        if self._space_event is not None and not self._space_event.triggered:
            self._space_event.succeed()

    def _transmit(self, packet: RocePacket) -> None:
        self.device.host.nic.transmit(
            Frame(
                src=self.device.host.name,
                dst=packet.dst_host,
                protocol=self.device.PROTOCOL,
                wire_bytes=packet.wire_bytes,
                payload=packet,
                trace_ctx=packet.trace_ctx,
            )
        )

    # ------------------------------------------------------------------
    # reliability: ACK/NAK processing and retries
    # ------------------------------------------------------------------

    def _process_ack(self, psn: int) -> None:
        """Cumulative ACK: everything with PSN <= psn is delivered."""
        before = len(self._unacked)
        self._unacked = [(p, t) for (p, t) in self._unacked if p.psn > psn]
        if len(self._unacked) != before:
            self._retry_budget = self.caps.retry_count
            self._rnr_budget = self.caps.rnr_retry
            self._grant_space()
        for entry in self._pending:
            if (
                entry.wr.opcode is not Opcode.RDMA_READ
                and entry.last_psn is not None
                and entry.last_psn <= psn
            ):
                entry.done = True
        self._advance_completions()

    def _advance_completions(self) -> None:
        """Retire pending WRs in post order, honouring signaling rules."""
        while self._pending:
            # Find the first signaled entry; everything before it can only
            # be freed when that signaled entry completes (the driver
            # learns about slots exclusively through CQEs).
            first_signaled = None
            for i, entry in enumerate(self._pending):
                if entry.wr.signaled:
                    first_signaled = i
                    break
            if first_signaled is None:
                return
            prefix = list(itertools.islice(self._pending, first_signaled + 1))
            if not all(e.done for e in prefix):
                return
            for e in prefix:
                self._pending.popleft()
            signaled_entry = prefix[-1]
            self.send_cq.push(
                WorkCompletion(
                    wr_id=signaled_entry.wr.wr_id,
                    status=signaled_entry.status,
                    opcode=signaled_entry.wr.opcode,
                    byte_len=signaled_entry.byte_len,
                    qp_num=self.qp_num,
                    trace_ctx=signaled_entry.wr.trace_ctx,
                )
            )

    def _retransmit_from(self, psn: int) -> None:
        for packet, _t in self._unacked:
            if packet.psn >= psn:
                self._transmit(packet)
        self._unacked = [
            (p, self.env.now if p.psn >= psn else t) for (p, t) in self._unacked
        ]

    def _retry_loop(self):
        caps = self.caps
        backoff = 0
        last_head_psn = -1
        while self.state is QpState.RTS:
            yield self.env.timeout(caps.retry_timeout / 2)
            if self.state is not QpState.RTS or not self._unacked:
                backoff = 0
                last_head_psn = -1
                continue
            if self.env.now < self._rnr_blocked_until:
                continue
            oldest = self._unacked[0][1]
            timeout = caps.retry_timeout * (2**backoff)
            if self.env.now - oldest >= timeout:
                self._retry_budget -= 1
                if self._retry_budget < 0:
                    self._fail_head(WcStatus.RETRY_EXC_ERR)
                    return
                # Exponential backoff while the same head keeps timing
                # out, so transient responder-side queueing cannot spiral
                # into a self-sustaining retransmission avalanche.
                head = self._unacked[0][0]
                if head.psn == last_head_psn:
                    backoff = min(backoff + 1, 6)
                else:
                    backoff = 0
                    last_head_psn = head.psn
                # Re-issue any incomplete READ from scratch (idempotent).
                if head.kind == PacketType.READ_REQUEST:
                    ctx = self._reads.get(head.read_id)
                    if ctx is not None:
                        ctx.chunks_received = 0
                        ctx.cursor = 0
                self._retransmit_from(head.psn)

    def _fail_head(self, status: WcStatus) -> None:
        """The head-of-line WR failed fatally: error the QP."""
        self.error_cause = status.value
        if self._unacked:
            head_psn = self._unacked[0][0].psn
            for entry in self._pending:
                if entry.last_psn is not None and entry.last_psn >= head_psn:
                    entry.status = status
                    break
        self._enter_error()

    def _deny_remote_access(
        self, packet: RocePacket, error: RdmaError, write: bool
    ) -> None:
        """Refuse a one-sided access: classify, count, audit, NAK, error.

        Classification drives the counters and audit rules: a revoked
        grant epoch or a retired (deregistered) rkey is a *stale* access
        — the deterministic permission fence working as designed — while
        an access from a peer outside the grant table is *unauthorized*
        (a forged one-sided write).  Plain protection faults (bounds,
        access bits, foreign PD) keep their legacy record-only handling.
        """
        if isinstance(error, UnauthorizedAccessError):
            reason = "unauthorized"
        elif isinstance(error, StalePermissionError):
            reason = "stale-epoch"
        elif self.device.is_retired_rkey(packet.rkey):
            reason = "stale-rkey"
        else:
            reason = "protection-fault"
        if reason in ("stale-epoch", "stale-rkey"):
            self.device.host.nic.stale_access_denied.increment()
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_remote_access_denied(
                host=self.device.host.name,
                qp_num=self.qp_num,
                src_host=packet.src_host,
                rkey=packet.rkey,
                write=write,
                reason=reason,
            )
        self._send_control(PacketType.NAK_ACCESS, packet.psn)
        self._enter_error()

    # ------------------------------------------------------------------
    # inbound packet processing (called from the device's rx loop)
    # ------------------------------------------------------------------

    def handle_packet(self, packet: RocePacket):
        """Process one arriving packet; generator (device yields from it)."""
        kind = packet.kind
        if kind == PacketType.ACK:
            if packet.credit >= 0 and self.caps.flow_control:
                self._update_credit(packet.credit)
            self._process_ack(packet.psn)
            return
        if kind == PacketType.NAK_SEQUENCE:
            if packet.credit >= 0 and self.caps.flow_control:
                self._update_credit(packet.credit)
            self._retransmit_from(packet.psn)
            return
        if kind == PacketType.NAK_RNR:
            if packet.credit >= 0 and self.caps.flow_control:
                self._update_credit(packet.credit)
            yield from self._handle_rnr(packet)
            return
        if kind == PacketType.NAK_ACCESS:
            self._fail_head(WcStatus.REM_ACCESS_ERR)
            return
        if kind == PacketType.READ_RESPONSE:
            yield from self._handle_read_response(packet)
            return
        if self.state is QpState.ERROR:
            return
        # Sequenced request packets.
        if packet.psn < self._expected_psn:
            if kind == PacketType.READ_REQUEST:
                # A retransmitted READ (lost or fenced response train):
                # re-validate and replay the stream.  Blind-ACKing the
                # duplicate would clear the requester's unacked queue and
                # orphan its READ WR forever — and a revocation between
                # the original and the retry must get the chance to deny
                # the re-presented rkey outright.
                yield from self._handle_read_request(packet)
                return
            self._send_control(PacketType.ACK, self._expected_psn - 1)
            return
        if packet.psn > self._expected_psn:
            if self._last_nak_sent != self._expected_psn:
                self._last_nak_sent = self._expected_psn
                self._send_control(PacketType.NAK_SEQUENCE, self._expected_psn)
            return
        self._last_nak_sent = -1
        if kind in (
            PacketType.SEND_FIRST,
            PacketType.SEND_MIDDLE,
            PacketType.SEND_LAST,
            PacketType.SEND_ONLY,
        ):
            yield from self._handle_send_packet(packet)
        elif kind in (
            PacketType.WRITE_FIRST,
            PacketType.WRITE_MIDDLE,
            PacketType.WRITE_LAST,
            PacketType.WRITE_ONLY,
        ):
            yield from self._handle_write_packet(packet)
        elif kind == PacketType.READ_REQUEST:
            yield from self._handle_read_request(packet)
        else:  # pragma: no cover - exhaustive
            raise RdmaError(f"unknown packet kind {kind!r}")

    # -- two-sided receive path ---------------------------------------------

    def _handle_send_packet(self, packet: RocePacket):
        nic = self.device.host.nic
        if packet.kind in PacketType.STARTS_MESSAGE:
            if not self._recv_queue:
                # Receiver not ready: NAK without advancing the PSN.
                nic.rnr_naks.increment()
                audit = get_audit(self.env)
                if audit.enabled:
                    audit.on_rnr_nak(
                        self.device.host.name, self.qp_num, packet.psn
                    )
                self._send_control(
                    PacketType.NAK_RNR,
                    packet.psn,
                    rnr_timer=self.caps.rnr_timer,
                )
                return
            wr = self._recv_queue[0]
            if packet.total_length > (wr.sge.length or 0):
                self._recv_queue.popleft()
                self.recv_cq.push(
                    WorkCompletion(
                        wr_id=wr.wr_id,
                        status=WcStatus.LOC_LEN_ERR,
                        opcode=Opcode.RECV,
                        byte_len=packet.total_length,
                        qp_num=self.qp_num,
                    )
                )
                self._send_control(PacketType.NAK_ACCESS, packet.psn)
                self._enter_error()
                return
            self._recv_queue.popleft()
            self._cur_recv = {"wr": wr, "cursor": wr.sge.offset, "received": 0}
            if packet.trace_ctx is not None:
                tracer = get_tracer(self.env)
                if tracer.enabled:
                    self._cur_recv["span"] = tracer.start_span(
                        "qp.recv",
                        layer="qp",
                        parent=packet.trace_ctx,
                        track=self.device.host.name,
                        wr_id=wr.wr_id,
                        nbytes=packet.total_length,
                    )
        ctx = self._cur_recv
        if ctx is None:
            # Middle/last without a first: protocol violation.
            self._send_control(PacketType.NAK_ACCESS, packet.psn)
            self._enter_error()
            return
        if packet.payload:
            # Scatter DMA into the posted receive buffer.
            yield nic.dma_transfer(
                len(packet.payload), trace_ctx=packet.trace_ctx
            )
            wr = ctx["wr"]
            wr.sge.mr.write_bytes(ctx["cursor"], packet.payload)
            ctx["cursor"] += len(packet.payload)
            ctx["received"] += len(packet.payload)
        self._expected_psn = packet.psn + 1
        if packet.kind in PacketType.ENDS_MESSAGE:
            self._messages_received += 1
            wr = ctx["wr"]
            span = ctx.pop("span", None)
            if span is not None:
                span.end()
            self.recv_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    status=WcStatus.SUCCESS,
                    opcode=Opcode.RECV,
                    byte_len=ctx["received"],
                    qp_num=self.qp_num,
                    trace_ctx=packet.trace_ctx,
                )
            )
            self._cur_recv = None
            self._send_control(
                PacketType.ACK, packet.psn, trace_ctx=packet.trace_ctx
            )

    # -- one-sided write path ----------------------------------------------

    def _handle_write_packet(self, packet: RocePacket):
        nic = self.device.host.nic
        if packet.kind in PacketType.STARTS_MESSAGE:
            mr = self.device.find_mr(packet.rkey)
            try:
                if mr is None:
                    raise RdmaError("unknown rkey")
                if mr.pd is not self.pd:
                    raise RdmaError("rkey from a foreign protection domain")
                mr.check_remote(
                    packet.rkey,
                    packet.remote_offset,
                    packet.total_length,
                    write=True,
                    peer=packet.src_host,
                )
            except RdmaError as error:
                self._deny_remote_access(packet, error, write=True)
                return
            self._cur_write = {
                "mr": mr,
                "cursor": packet.remote_offset,
                "start": packet.remote_offset,
                # Captured permission epoch: every later chunk of this
                # message re-verifies it, so a revocation between chunks
                # fences the in-flight WR mid-message.
                "epoch": mr.perm_epoch,
            }
        ctx = self._cur_write
        if ctx is None:
            self._send_control(PacketType.NAK_ACCESS, packet.psn)
            self._enter_error()
            return
        if packet.kind not in PacketType.STARTS_MESSAGE:
            try:
                ctx["mr"].check_epoch(ctx["epoch"])
            except RdmaError as error:
                self._cur_write = None
                self._deny_remote_access(packet, error, write=True)
                return
        if packet.payload:
            yield nic.dma_transfer(
                len(packet.payload), trace_ctx=packet.trace_ctx
            )
            ctx["mr"].write_bytes(ctx["cursor"], packet.payload)
            ctx["cursor"] += len(packet.payload)
        self._expected_psn = packet.psn + 1
        if packet.kind in PacketType.ENDS_MESSAGE:
            self._cur_write = None
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_remote_write_applied(
                    host=self.device.host.name,
                    src_host=packet.src_host,
                    rkey=packet.rkey if packet.rkey is not None else ctx["mr"].rkey,
                    offset=ctx["start"],
                    length=ctx["cursor"] - ctx["start"],
                )
            self._send_control(PacketType.ACK, packet.psn)
            # No CQE, no recv WR: the remote CPU stays unaware (paper
            # Section II-A) — that is both the perf win and the security
            # concern of one-sided operations.

    # -- one-sided read path --------------------------------------------------

    def _handle_read_request(self, packet: RocePacket):
        mr = self.device.find_mr(packet.rkey)
        try:
            if mr is None:
                raise RdmaError("unknown rkey")
            if mr.pd is not self.pd:
                raise RdmaError("rkey from a foreign protection domain")
            mr.check_remote(
                packet.rkey,
                packet.remote_offset,
                packet.total_length,
                write=False,
                peer=packet.src_host,
            )
        except RdmaError as error:
            self._deny_remote_access(packet, error, write=False)
            return
        # max(): a replayed (duplicate) request must not regress the
        # expected sequence past packets already accepted after it.
        self._expected_psn = max(self._expected_psn, packet.psn + 1)
        # Stream the response chunks from a dedicated process so a large
        # read does not stall the device's receive pipeline.
        self.env.process(
            self._stream_read_response(packet, mr),
            name=f"qp{self.qp_num}.read_resp",
        )
        yield from ()

    def _stream_read_response(self, request: RocePacket, mr: MemoryRegion):
        attrs = self.device.attrs
        nic = self.device.host.nic
        mtu = attrs.mtu
        length = request.total_length
        chunk_count = max(1, -(-length // mtu))
        epoch = mr.perm_epoch
        for index in range(chunk_count):
            offset = index * mtu
            size = min(mtu, length - offset)
            yield Timeout(self.env, attrs.packet_process)
            try:
                # A revocation (or deregistration) mid-read fences the
                # remaining chunks: the requester's retry re-presents the
                # rkey and is then denied outright.
                mr.check_epoch(epoch)
            except RdmaError:
                nic.stale_access_denied.increment()
                audit = get_audit(self.env)
                if audit.enabled:
                    audit.on_remote_access_denied(
                        host=self.device.host.name,
                        qp_num=self.qp_num,
                        src_host=request.src_host,
                        rkey=request.rkey,
                        write=False,
                        reason="stale-epoch",
                    )
                return
            yield nic.dma_transfer(size)
            # Snapshot at DMA time: a concurrent writer produces torn data,
            # the read/write race of the paper's Section III-A.
            data = mr.read_bytes(request.remote_offset + offset, size)
            self._transmit(
                RocePacket(
                    kind=PacketType.READ_RESPONSE,
                    src_host=self.device.host.name,
                    src_qp=self.qp_num,
                    dst_host=request.src_host,
                    dst_qp=request.src_qp,
                    payload=data,
                    read_id=request.read_id,
                    chunk_index=index,
                    chunk_count=chunk_count,
                    trace_ctx=request.trace_ctx,
                )
            )

    def _handle_read_response(self, packet: RocePacket):
        ctx = self._reads.get(packet.read_id)
        if ctx is None:
            return
        entry = ctx.entry
        wr = entry.wr
        assert wr.sge is not None
        if packet.chunk_index != ctx.chunks_received:
            # Out-of-order chunk (lost predecessor): drop; the retry timer
            # will re-issue the whole idempotent READ.
            return
        nic = self.device.host.nic
        if packet.payload:
            yield nic.dma_transfer(
                len(packet.payload), trace_ctx=packet.trace_ctx
            )
            wr.sge.mr.write_bytes(wr.sge.offset + ctx.cursor, packet.payload)
            ctx.cursor += len(packet.payload)
        ctx.chunks_received += 1
        ctx.chunk_count = packet.chunk_count
        if ctx.chunks_received == packet.chunk_count:
            del self._reads[packet.read_id]
            entry.done = True
            # The response train implicitly acknowledges the request PSN.
            self._unacked = [
                (p, t) for (p, t) in self._unacked if p.psn != entry.last_psn
            ]
            self._retry_budget = self.caps.retry_count
            self._grant_space()
            self._advance_completions()

    # -- RNR handling ------------------------------------------------------

    def _handle_rnr(self, packet: RocePacket):
        nic = self.device.host.nic
        audit = get_audit(self.env)
        self._rnr_budget -= 1
        if self._rnr_budget < 0:
            nic.rnr_exhausted.increment()
            if audit.enabled:
                audit.on_rnr_exhausted(self.device.host.name, self.qp_num)
            self._fail_head(WcStatus.RNR_RETRY_EXC_ERR)
            return
        nic.rnr_retries.increment()
        if audit.enabled:
            audit.on_rnr_retry(
                self.device.host.name,
                self.qp_num,
                self.caps.rnr_retry - self._rnr_budget,
                self.caps.rnr_retry,
            )
        self._rnr_blocked_until = self.env.now + packet.rnr_timer

        def wait_and_retry():
            # Back off in a separate process so the device's receive
            # pipeline is not stalled for the RNR timer.
            yield self.env.timeout(packet.rnr_timer)
            if self.state is QpState.RTS:
                self._retransmit_from(packet.psn)

        self.env.process(wait_and_retry(), name=f"qp{self.qp_num}.rnr_wait")
        yield from ()

    # -- credit flow control ------------------------------------------------

    def _update_credit(self, limit: int) -> None:
        """Requester-side: absorb an advertised cumulative receive count."""
        audit = get_audit(self.env)
        if audit.enabled:
            # Audited before the monotonic clamp so a regressing peer
            # advertisement is caught, not silently ignored.
            audit.on_credit_update(self.qp_num, limit, self._credit_limit)
        if limit <= self._credit_limit:
            # Cumulative counts only grow; stale/duplicate ACKs carry
            # older values.
            return
        was_blocked = self._sent_total >= self._credit_limit
        self._credit_limit = limit
        if was_blocked and self._sent_total < limit:
            for watcher in list(self._credit_watchers):
                watcher(self)

    # -- control packets ----------------------------------------------------

    def _send_control(
        self,
        kind: str,
        psn: int,
        rnr_timer: float = 0.0,
        trace_ctx=None,
    ) -> None:
        credit = -1
        if self.caps.flow_control and kind in (
            PacketType.ACK,
            PacketType.NAK_RNR,
            PacketType.NAK_SEQUENCE,
        ):
            credit = self._posted_recv_total
            self._last_advertised = credit
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_credit_advertised(self.qp_num, credit)
        self._transmit(
            RocePacket(
                kind=kind,
                src_host=self.device.host.name,
                src_qp=self.qp_num,
                dst_host=self.remote_host,  # type: ignore[arg-type]
                dst_qp=self.remote_qp,  # type: ignore[arg-type]
                psn=psn,
                rnr_timer=rnr_timer,
                credit=credit,
                trace_ctx=trace_ctx,
            )
        )

    def __repr__(self) -> str:
        return (
            f"<QueuePair qp{self.qp_num} on {self.device.host.name} "
            f"{self.state.value}>"
        )
