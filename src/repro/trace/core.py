"""Span-based tracing driven by the simulation clock.

A :class:`Tracer` records :class:`Span` intervals — named, layered slices
of simulated time — and stitches them into causal traces via
:class:`SpanContext` references that the stacks piggyback on simulator
objects (work requests, packets, frames, completions).  Nothing here ever
schedules events or charges simulated time: recording a span is pure
bookkeeping, so a traced run and an untraced run make byte-identical
scheduling decisions.

The default is :data:`NULL_TRACER`, a :class:`NullTracer` whose methods
are no-ops and whose ``enabled`` flag lets hot paths skip even argument
construction::

    tracer = get_tracer(env)
    if tracer.enabled and ctx is not None:
        span = tracer.start_span("qp.send", layer="qp", parent=ctx)

Clock source: every timestamp is ``env.now`` (simulated seconds).  There
is exactly one tracer per :class:`~repro.sim.Environment`; because the
simulation is single-threaded and deterministic, cross-host correlation
needs no clock synchronisation at all.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError

__all__ = [
    "TraceError",
    "SpanContext",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "install_tracer",
]


class TraceError(ReproError):
    """Misuse of the tracing subsystem (bad parents, unknown traces...)."""


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``.

    Contexts are small, immutable and hashable, so they can ride on
    dataclass fields and be used as dictionary keys.  A context is what
    crosses layer boundaries; the :class:`Span` object itself stays with
    the tracer.
    """

    trace_id: int
    span_id: int


class Span:
    """A named interval of simulated time within one trace.

    Spans are created open (``end_time is None``) and closed exactly once
    with :meth:`end`.  Closing twice does not raise — failure paths in the
    stacks may race — but it is counted on the owning tracer so tests can
    assert it never happens.
    """

    __slots__ = (
        "_tracer",
        "name",
        "layer",
        "track",
        "context",
        "parent_id",
        "start",
        "end_time",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        layer: str,
        track: str,
        context: SpanContext,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.layer = layer
        self.track = track
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.end_time: Optional[float] = None
        self.attrs = attrs

    # -- lifecycle -------------------------------------------------------

    def end(self, **attrs: Any) -> None:
        """Close the span at the current simulated time."""
        if self.end_time is not None:
            self._tracer.double_ends += 1
            return
        self.end_time = self._tracer.now()
        if attrs:
            self.attrs.update(attrs)

    @property
    def is_open(self) -> bool:
        return self.end_time is None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start

    def __repr__(self) -> str:
        state = "open" if self.is_open else f"{self.duration * 1e6:.3f}us"
        return (
            f"<Span {self.name!r} layer={self.layer} "
            f"trace={self.context.trace_id} id={self.context.span_id} {state}>"
        )


#: Accepted ``parent`` arguments: a span, its context, or nothing.
ParentLike = Union[Span, SpanContext, None]


class Tracer:
    """Records spans against the simulation clock of ``env``.

    Besides span bookkeeping the tracer offers a *correlation table*
    (:meth:`bind` / :meth:`lookup`): encoded protocol messages lose
    object identity when they cross the framing layer, so protocol code
    re-associates them with their trace by a stable key (e.g. the
    ``(client_id, timestamp)`` of a request).  This is legitimate in
    simulation because a single tracer observes every host.
    """

    #: Hot paths check this before building span arguments.
    enabled = True

    def __init__(
        self, env: Any = None, name: str = "trace", max_bindings: int = 4096
    ):
        #: Clock source; ``None`` until :func:`install_tracer` binds one
        #: (lets callers hand a fresh tracer to e.g. ``BftCluster`` which
        #: builds its own environment).
        self.env = env
        self.name = name
        self.spans: List[Span] = []
        #: Number of times ``Span.end`` was called on an already-closed
        #: span.  Instrumentation bugs show up here; tests pin it to 0.
        self.double_ends = 0
        if max_bindings < 1:
            raise TraceError(f"{name}: max_bindings must be >= 1")
        #: Correlation-table capacity; least-recently-used entries are
        #: evicted beyond it so keys that never see ``unbind`` (dropped
        #: requests, dead clients) cannot grow the table without bound.
        self.max_bindings = max_bindings
        #: Entries evicted by the LRU cap (lost correlations show up
        #: here instead of as unbounded memory).
        self.bindings_evicted = 0
        self._bindings: "OrderedDict[Hashable, SpanContext]" = OrderedDict()
        self._next_trace_id = 1
        self._next_span_id = 1

    # -- clock -----------------------------------------------------------

    def now(self) -> float:
        if self.env is None:
            raise TraceError(f"{self.name}: not installed on an environment")
        return self.env.now

    # -- span creation ---------------------------------------------------

    @staticmethod
    def _parent_context(parent: ParentLike) -> Optional[SpanContext]:
        if parent is None:
            return None
        if isinstance(parent, Span):
            return parent.context
        if isinstance(parent, SpanContext):
            return parent
        raise TraceError(f"not a span or span context: {parent!r}")

    def start_span(
        self,
        name: str,
        layer: str,
        parent: ParentLike = None,
        track: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  With ``parent=None`` it roots a new trace."""
        parent_ctx = self._parent_context(parent)
        if parent_ctx is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        context = SpanContext(trace_id=trace_id, span_id=self._next_span_id)
        self._next_span_id += 1
        span = Span(
            tracer=self,
            name=name,
            layer=layer,
            track=track if track is not None else layer,
            context=context,
            parent_id=parent_id,
            start=self.now(),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def start_trace(
        self,
        name: str,
        layer: str,
        track: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Open a root span (a new trace)."""
        return self.start_span(name, layer, parent=None, track=track, **attrs)

    def instant(
        self,
        name: str,
        layer: str,
        parent: ParentLike = None,
        track: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record a zero-duration marker span."""
        span = self.start_span(name, layer, parent=parent, track=track, **attrs)
        span.end_time = span.start
        return span

    # -- correlation table -----------------------------------------------

    def bind(self, key: Hashable, context: SpanContext) -> None:
        """Associate ``key`` (e.g. a request identity) with a context.

        The table is an LRU bounded by :attr:`max_bindings`: binding or
        looking a key up marks it recently used; the oldest key is
        evicted when the table is full.
        """
        self._bindings[key] = context
        self._bindings.move_to_end(key)
        while len(self._bindings) > self.max_bindings:
            self._bindings.popitem(last=False)
            self.bindings_evicted += 1

    def lookup(self, key: Hashable) -> Optional[SpanContext]:
        """Context previously bound to ``key``, or ``None``."""
        context = self._bindings.get(key)
        if context is not None:
            self._bindings.move_to_end(key)
        return context

    def unbind(self, key: Hashable) -> None:
        self._bindings.pop(key, None)

    # -- inspection ------------------------------------------------------

    def open_spans(self) -> List[Span]:
        """Spans not yet closed (useful for leak assertions)."""
        return [s for s in self.spans if s.is_open]

    def closed_spans(self) -> List[Span]:
        return [s for s in self.spans if not s.is_open]

    def trace_ids(self) -> List[int]:
        """Distinct trace ids in creation order."""
        seen: Dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.context.trace_id, None)
        return list(seen)

    def spans_of(self, trace_id: int) -> Iterator[Span]:
        return (s for s in self.spans if s.context.trace_id == trace_id)

    def __repr__(self) -> str:
        return (
            f"<Tracer {self.name!r} spans={len(self.spans)} "
            f"open={len(self.open_spans())}>"
        )


class NullTracer:
    """The zero-overhead default: every method is a no-op.

    ``enabled`` is ``False`` so instrumented hot paths skip span-argument
    construction entirely; code that calls methods anyway gets inert
    results (``None`` contexts, empty lists).
    """

    enabled = False
    double_ends = 0

    #: Shared empty tuple so ``spans`` reads cheaply.
    spans: Tuple[()] = ()

    def now(self) -> float:  # pragma: no cover - never useful
        return 0.0

    def start_span(self, *args: Any, **kwargs: Any) -> "_NullSpan":
        return NULL_SPAN

    def start_trace(self, *args: Any, **kwargs: Any) -> "_NullSpan":
        return NULL_SPAN

    def instant(self, *args: Any, **kwargs: Any) -> "_NullSpan":
        return NULL_SPAN

    def bind(self, key: Hashable, context: Any) -> None:
        return None

    def lookup(self, key: Hashable) -> None:
        return None

    def unbind(self, key: Hashable) -> None:
        return None

    def open_spans(self) -> List[Span]:
        return []

    def closed_spans(self) -> List[Span]:
        return []

    def trace_ids(self) -> List[int]:
        return []

    def spans_of(self, trace_id: int) -> Iterator[Span]:
        return iter(())

    def __repr__(self) -> str:
        return "<NullTracer>"


class _NullSpan:
    """Inert span returned by :class:`NullTracer` methods."""

    __slots__ = ()

    #: ``None`` so storing ``span.context`` on a message propagates nothing.
    context = None
    parent_id = None
    name = "null"
    layer = "null"
    track = "null"
    start = 0.0
    end_time = 0.0
    attrs: Dict[str, Any] = {}
    is_open = False
    duration = 0.0

    def end(self, **attrs: Any) -> None:
        return None

    def __repr__(self) -> str:
        return "<NullSpan>"


#: Module-level singletons — identity comparisons are safe.
NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()


def get_tracer(env: Any) -> Union[Tracer, NullTracer]:
    """The tracer installed on ``env``, or :data:`NULL_TRACER`."""
    tracer = getattr(env, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER


def install_tracer(env: Any, tracer: Tracer) -> Tracer:
    """Attach ``tracer`` to ``env`` so :func:`get_tracer` finds it."""
    if getattr(tracer, "env", None) is None:
        tracer.env = env
    env.tracer = tracer
    return tracer
