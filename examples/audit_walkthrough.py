#!/usr/bin/env python3
"""Audit walkthrough: catch a Byzantine leader red-handed.

Runs two PBFT clusters under the online protocol auditor:

1. an honest cluster — every invariant holds, the flight recorder fills
   with normal protocol events, and the run ends violation-free;
2. a cluster whose leader *equivocates* (sends different batches to
   different backups for the same sequence number) — the
   ``bft.pre-prepare-equivocation`` auditor fires the moment two correct
   replicas report conflicting digests, and the flight recorder dumps a
   post-mortem showing the protocol history that led up to it.

Run:  python examples/audit_walkthrough.py [--dump-dir DIR]

The post-mortem printed at the end is the same JSON document the audit
subsystem writes when any invariant fires in a test or benchmark run —
see DESIGN.md section 10 for how to read it.
"""

import argparse
import json
import sys

from repro.audit import AuditConfig, validate_postmortem
from repro.bft import BftCluster, BftConfig, EquivocatingLeader


def run_honest():
    print("== 1. honest cluster ==")
    cluster = BftCluster(
        config=BftConfig(view_change_timeout=60e-3, batch_delay=50e-6)
    )
    cluster.start()
    for i in range(5):
        result = cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode())
        assert result == b"OK"
    cluster.run_for(0.05)
    audit = cluster.audit
    counts = audit.recorder.layer_counts()
    print(f"  events recorded: {audit.recorder.total} {counts}")
    print(f"  violations: {len(audit.violations)}")
    assert audit.violations == [], "an honest run must be violation-free"
    print("  all invariants held.\n")


def run_byzantine(dump_dir):
    print("== 2. equivocating leader ==")
    cluster = BftCluster(
        replica_classes={"r0": EquivocatingLeader},
        config=BftConfig(
            view_change_timeout=60e-3, batch_delay=0.0, batch_size=1
        ),
        audit=AuditConfig(dump_dir=dump_dir),
    )
    cluster.start()
    cluster.replica("r0").start_equivocating()
    print("  r0 now sends forged pre-prepares to half the backups...")
    cluster.client(0).invoke(b"PUT a=1")
    cluster.run_for(0.3)

    audit = cluster.audit
    caught = [
        v for v in audit.violations
        if v.rule == "bft.pre-prepare-equivocation"
    ]
    assert caught, "the auditor must catch the equivocation"
    violation = caught[0]
    print(f"  CAUGHT: {violation}")

    # Liveness note: with one traitor out of n=4 the honest replicas
    # still make progress — the auditor observes the attack without
    # interfering with the protocol's own defences.
    document = audit.postmortems[0]
    validate_postmortem(document)
    print("\n  post-mortem (schema-checked):")
    print(f"    reason:       {document['reason']}")
    print(f"    sim time:     {document['time'] * 1e3:.3f} ms")
    print(f"    events held:  {len(document['events'])} "
          f"(dropped: {document['events_dropped']})")
    print(f"    layer counts: {document['layer_counts']}")
    tail = document["events"][-6:]
    print("    last events before the violation:")
    for event in tail:
        subject = event["subject"] or "-"
        print(
            f"      t={event['time'] * 1e3:9.3f}ms "
            f"{event['layer']:>5}.{event['event']:<22} {subject} "
            f"{json.dumps(event['fields'], sort_keys=True)}"
        )
    if audit.postmortem_paths:
        print(f"\n  dumps written: {audit.postmortem_paths}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dump-dir",
        default=None,
        help="also write post-mortem JSON files into this directory",
    )
    args = parser.parse_args(argv)
    run_honest()
    run_byzantine(args.dump_dir)
    print("\ndone: the auditor cleared the honest run and convicted the "
          "equivocator.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
