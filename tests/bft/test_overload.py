"""Overload and graceful degradation at the BFT layer.

The ISSUE-5 end-to-end story: replicas shed requests beyond their
admission budget with ``Busy``, clients converge via seeded exponential
backoff, and the flow-controlled transport keeps the whole stack inside
the receiver's provisioning.  The contrast test shows what the same load
does when flow control is switched off — RNR retry exhaustion and
hard-failed channels, the legacy failure mode this PR exists to remove.
"""

import pytest

from repro.bench.overload import run_overload
from repro.bft import BftCluster, BftConfig, CounterMachine
from repro.reptor import ReptorConfig
from repro.rubin import RubinConfig


def overload_cluster(**kwargs):
    defaults = dict(
        transport="rubin",
        config=BftConfig(admission_budget=4, view_change_timeout=200e-3),
        num_clients=4,
    )
    defaults.update(kwargs)
    cluster = BftCluster(**defaults)
    cluster.start()
    return cluster


def submit_burst(cluster, per_client, payload=b"\x5a" * 64):
    """Open-loop: every client submits ``per_client`` requests at once."""
    env = cluster.env
    pending, results = [], []

    def submit(client, index):
        result = yield client.invoke(b"PUT k%d=" % index + payload)
        results.append(result)

    index = 0
    for c in range(len(cluster.client_ids)):
        client = cluster.client(c)
        for _ in range(per_client):
            pending.append(
                env.process(submit(client, index), name=f"burst.{index}")
            )
            index += 1
    return pending, results


def total_sheds(cluster):
    return sum(r.shed_requests.value for r in cluster.replicas.values())


def total_backoffs(cluster):
    return sum(c.busy_backoffs for c in cluster.clients.values())


def nic_totals(cluster, counter):
    return sum(
        getattr(host.nic, counter).value for host in cluster.fabric.hosts()
    )


class TestAdmissionControl:
    def test_shed_and_backoff_converge(self):
        # 24 concurrent requests against a per-replica budget of 4: the
        # excess is shed with Busy, clients back off, and every request
        # still completes exactly once.
        cluster = overload_cluster()
        pending, results = submit_burst(cluster, per_client=6)
        cluster.env.run(until=cluster.env.all_of(pending))
        assert results == [b"OK"] * 24
        assert total_sheds(cluster) > 0
        assert total_backoffs(cluster) > 0
        cluster.run_for(10e-3)
        assert len(set(cluster.state_digests().values())) == 1

    def test_disabled_budget_never_sheds(self):
        # admission_budget=0 (the default) disables shedding entirely:
        # the legacy behaviour is bit-identical.
        cluster = overload_cluster(
            config=BftConfig(view_change_timeout=200e-3)
        )
        pending, results = submit_burst(cluster, per_client=3)
        cluster.env.run(until=cluster.env.all_of(pending))
        assert results == [b"OK"] * 12
        assert total_sheds(cluster) == 0
        assert total_backoffs(cluster) == 0

    def test_shed_requests_not_double_executed(self):
        # A request that was shed and retried must be applied once: the
        # counter ends at the exact running sum.
        cluster = overload_cluster(
            config=BftConfig(admission_budget=2, view_change_timeout=200e-3),
            app_factory=CounterMachine,
            num_clients=3,
        )
        env = cluster.env
        pending = []

        def submit(client):
            yield client.invoke(CounterMachine.add(1))

        for c in range(3):
            client = cluster.client(c)
            for _ in range(4):
                pending.append(env.process(submit(client)))
        env.run(until=env.all_of(pending))
        assert total_sheds(cluster) > 0
        cluster.run_for(20e-3)
        values = {rid: app.value for rid, app in cluster.apps.items()}
        assert values == {rid: 12 for rid in cluster.replica_ids}, values


class TestGracefulDegradation:
    def test_two_x_saturation_stays_graceful(self):
        # The committed benchmark scenario: ~2x the admission budget,
        # open loop.  Everything completes, sheds and backoffs are
        # nonzero, and no audit invariant fires.
        record = run_overload()
        assert record["shed_total"] > 0
        assert record["busy_backoffs"] > 0
        assert record["goodput_rps"] > 0
        assert record["audit_violations"] == 0
        assert record["latency_us"]["p99"] >= record["latency_us"]["p50"]

    def test_constrained_transport_backpressure_stays_graceful(self):
        # Starve the transport too: a Reptor window larger than the
        # receiver's posted buffers would over-subscribe the QP, but
        # credit flow control stalls the sender instead — zero RNR NAKs,
        # nonzero credit stalls, and the burst still completes.
        rubin = RubinConfig(
            buffer_size=8192, num_recv_buffers=4, num_send_buffers=8,
            post_batch=2,
        )
        cluster = overload_cluster(
            rubin_config=rubin, reptor_config=ReptorConfig(window=8)
        )
        pending, results = submit_burst(cluster, per_client=6)
        cluster.env.run(until=cluster.env.all_of(pending))
        assert results == [b"OK"] * 24
        assert nic_totals(cluster, "rnr_naks") == 0
        stalls = sum(
            conn.channel.credit_stalls.value
            for r in cluster.replicas.values()
            for conn in r.endpoint.connections
        )
        assert stalls > 0

    def test_contrast_without_flow_control_hard_fails(self):
        # The same constrained scenario with flow control off: the QP
        # over-subscribes the receiver, burns its RNR retry budget and
        # hard-fails — the failure mode the tentpole removes.
        rubin = RubinConfig(
            buffer_size=8192, num_recv_buffers=2, num_send_buffers=16,
            post_batch=2, flow_control=False, rnr_retry=2,
            min_rnr_timer=200e-6,
        )
        cluster = overload_cluster(
            rubin_config=rubin, reptor_config=ReptorConfig(window=16)
        )
        pending, results = submit_burst(cluster, per_client=6)
        cluster.run_for(300e-3)
        assert nic_totals(cluster, "rnr_naks") > 0
        assert nic_totals(cluster, "rnr_exhausted") >= 1


class TestOverloadChaos:
    def test_overload_with_crash_recovery_converges(self):
        # Seeded chaos under admission pressure: a backup crashes and
        # restarts mid-burst while clients are being shed and backing
        # off.  Every request commits exactly once and all replicas
        # (including the restarted one) converge.
        cluster = overload_cluster(
            config=BftConfig(admission_budget=4, view_change_timeout=300e-3),
            app_factory=CounterMachine,
        )
        env = cluster.env
        pending = []

        def submit(client):
            yield client.invoke(CounterMachine.add(1))

        for c in range(4):
            client = cluster.client(c)
            for _ in range(5):
                pending.append(env.process(submit(client)))

        def chaos(env):
            yield env.timeout(5e-3)
            cluster.crash_replica("r2")
            yield env.timeout(40e-3)
            cluster.restart_replica("r2")

        env.process(chaos(env))
        env.run(until=env.all_of(pending))
        assert total_sheds(cluster) > 0
        cluster.run_for(500e-3)
        values = {rid: app.value for rid, app in cluster.apps.items()}
        assert values == {rid: 20 for rid in cluster.replica_ids}, values
        assert len(set(cluster.state_digests().values())) == 1
