"""A hierarchical registry over the simulation's measurement probes.

Every subsystem already measures itself — :class:`~repro.sim.Counter`,
:class:`~repro.sim.TimeSeries` and :class:`~repro.sim.UtilizationTracker`
instances hang off links, CPUs, supervisors and replicas — but until now
each had to be harvested by hand.  :class:`MetricsRegistry` gives them
hierarchical dotted names (``bft.r0.reconnects``,
``net.r0->r1.frames_delivered``) and one ``snapshot()`` call that renders
everything to plain JSON-ready data:

* a ``Counter`` snapshots to its integer value;
* a ``TimeSeries`` snapshots to its :class:`SummaryStats` dict plus rate;
* a ``UtilizationTracker`` snapshots to busy time and utilisation;
* a zero-argument callable snapshots to whatever it returns.

Registration is purely observational — the registry never mutates or
wraps the probes, so registering has no effect on simulation behaviour.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Mapping, Union

from repro.errors import ReproError
from repro.sim.monitor import Counter, Gauge, TimeSeries, UtilizationTracker

__all__ = ["MetricsRegistry"]

Probe = Union[
    Counter, Gauge, TimeSeries, UtilizationTracker, Callable[[], Any]
]


class MetricsRegistry:
    """Named registry of heterogeneous measurement probes."""

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._probes: Dict[str, Probe] = {}

    # -- registration ----------------------------------------------------

    def register(
        self, name: str, probe: Probe, if_exists: str = "error"
    ) -> Probe:
        """Register ``probe`` under dotted ``name``; returns the probe.

        ``if_exists`` picks the duplicate-name policy:

        * ``"error"`` (default) — raise :class:`ReproError`;
        * ``"suffix"`` — register under ``name#2``, ``name#3``, ... —
          what a restarted component should use, so its fresh probes
          never silently shadow (or collide with) the dead
          incarnation's;
        * ``"replace"`` — overwrite the existing probe.
        """
        if not name:
            raise ReproError("metric name must be non-empty")
        if if_exists not in ("error", "suffix", "replace"):
            raise ReproError(f"unknown if_exists policy {if_exists!r}")
        if name in self._probes:
            if if_exists == "error":
                raise ReproError(f"metric {name!r} already registered")
            if if_exists == "suffix":
                generation = 2
                while f"{name}#{generation}" in self._probes:
                    generation += 1
                name = f"{name}#{generation}"
        if not isinstance(
            probe, (Counter, Gauge, TimeSeries, UtilizationTracker)
        ) and not callable(probe):
            raise ReproError(
                f"metric {name!r}: unsupported probe {type(probe).__name__}"
            )
        self._probes[name] = probe
        return probe

    def register_many(
        self, prefix: str, probes: Mapping[str, Probe], if_exists: str = "error"
    ) -> None:
        """Register every ``{suffix: probe}`` under ``prefix.suffix``."""
        for suffix, probe in probes.items():
            self.register(
                f"{prefix}.{suffix}" if prefix else suffix,
                probe,
                if_exists=if_exists,
            )

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def __len__(self) -> int:
        return len(self._probes)

    def names(self) -> list[str]:
        return sorted(self._probes)

    def items(self) -> list[tuple[str, Probe]]:
        """Sorted ``(name, probe)`` pairs — the live probe objects.

        Consumers (e.g. the ``repro.obs`` sampler, which needs probe
        *types* to derive rates) must treat the probes as read-only.
        """
        return sorted(self._probes.items())

    # -- snapshot --------------------------------------------------------

    @staticmethod
    def _snapshot_probe(probe: Probe) -> Any:
        if isinstance(probe, Counter):
            return probe.value
        if isinstance(probe, Gauge):
            return {
                "value": probe.value,
                "min": probe.minimum,
                "max": probe.maximum,
            }
        if isinstance(probe, TimeSeries):
            rendered = probe.stats().to_dict()
            rendered["rate"] = probe.rate()
            return rendered
        if isinstance(probe, UtilizationTracker):
            return {
                "busy_time": probe.busy_time(),
                "utilization": probe.utilization(),
            }
        return probe()

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{dotted_name: value}`` view of every probe, sorted."""
        return {
            name: self._snapshot_probe(probe)
            for name, probe in sorted(self._probes.items())
        }

    def snapshot_tree(self) -> Dict[str, Any]:
        """Snapshot nested by the dots of each name."""
        tree: Dict[str, Any] = {}
        for name, value in self.snapshot().items():
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                existing = node.get(part)
                if not isinstance(existing, dict):
                    # A leaf and a subtree share a prefix: keep the leaf
                    # reachable under its own name.
                    existing = {} if existing is None else {"": existing}
                    node[part] = existing
                node = existing
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict):
                node[leaf][""] = value
            else:
                node[leaf] = value
        return tree

    def to_json(self, path: str) -> Dict[str, Any]:
        """Write the flat snapshot to ``path``; returns it."""
        snapshot = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        return snapshot

    def render(self) -> str:
        """Plain-text one-metric-per-line rendering of the snapshot."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                inner = ", ".join(
                    f"{key}={value[key]:.6g}"
                    if isinstance(value[key], float)
                    else f"{key}={value[key]}"
                    for key in sorted(value)
                )
                lines.append(f"{name}: {inner}")
            else:
                lines.append(f"{name}: {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {self.name!r} probes={len(self._probes)}>"
