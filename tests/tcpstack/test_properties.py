"""Property-based tests: TCP must be a reliable, ordered byte stream."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcpstack import TcpConfig

from tests.tcpstack.conftest import TcpPair


@settings(deadline=None, max_examples=25)
@given(
    chunks=st.lists(
        st.binary(min_size=1, max_size=5000), min_size=1, max_size=10
    )
)
def test_chunked_sends_concatenate_in_order(chunks):
    pair = TcpPair()
    client_conn, server_conn = pair.establish()
    expected = b"".join(chunks)
    received = bytearray()

    def sender(env):
        for chunk in chunks:
            yield client_conn.send(chunk)

    def receiver(env):
        while len(received) < len(expected):
            data = yield server_conn.receive()
            received.extend(data)

    pair.env.process(sender(pair.env))
    p = pair.env.process(receiver(pair.env))
    pair.env.run(until=p)
    assert bytes(received) == expected


@settings(deadline=None, max_examples=15)
@given(
    payload=st.binary(min_size=1, max_size=20_000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    loss_rate=st.floats(min_value=0.0, max_value=0.2),
)
def test_stream_integrity_under_random_loss(payload, seed, loss_rate):
    # Seeded random loss: reproducible, but free of the adversarial
    # count-alignment that can livelock go-back-N (a deterministic
    # every-Nth drop can hit the same head segment forever).
    import random

    rng = random.Random(seed)

    def drop_fn(frame):
        return rng.random() < loss_rate

    pair = TcpPair(config=TcpConfig(rto=1e-3), drop_fn=drop_fn)
    client_conn, server_conn = pair.establish()
    received = bytearray()

    def sender(env):
        yield client_conn.send(payload)

    def receiver(env):
        while len(received) < len(payload):
            data = yield server_conn.receive()
            received.extend(data)

    pair.env.process(sender(pair.env))
    p = pair.env.process(receiver(pair.env))
    pair.env.run(until=p)
    assert bytes(received) == payload


@settings(deadline=None, max_examples=15)
@given(
    payload_size=st.integers(min_value=1, max_value=30_000),
    recv_buffer=st.integers(min_value=1460, max_value=8192),
)
def test_stream_integrity_with_small_buffers(payload_size, recv_buffer):
    pair = TcpPair(
        config=TcpConfig(send_buffer=recv_buffer, recv_buffer=recv_buffer)
    )
    client_conn, server_conn = pair.establish()
    payload = bytes(i % 256 for i in range(payload_size))
    received = bytearray()

    def sender(env):
        yield client_conn.send(payload)

    def receiver(env):
        while len(received) < len(payload):
            data = yield server_conn.receive()
            received.extend(data)

    pair.env.process(sender(pair.env))
    p = pair.env.process(receiver(pair.env))
    pair.env.run(until=p)
    assert bytes(received) == payload
