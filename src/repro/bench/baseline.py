"""Machine-readable benchmark baselines (``BENCH_fig*.json``).

Serializes a figure sweep into a stable JSON document so CI can archive
the numbers behind each figure and later runs can diff against them.
One record per (transport, payload) point, carrying the full latency
distribution (p50/p95/p99/p999 from :class:`~repro.sim.SummaryStats`)
and the achieved throughput.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Tuple

from repro.bench.results import EchoResult

__all__ = ["echo_record", "baseline_document", "write_baseline"]


def echo_record(result: EchoResult) -> Dict[str, object]:
    """One sweep point as a JSON-ready dict."""
    return {
        "transport": result.transport,
        "payload_bytes": result.payload_bytes,
        "messages": result.messages,
        "latency_us": result.stats().to_dict(),
        "throughput_rps": result.requests_per_second,
        "duration_s": result.duration_s,
    }


def baseline_document(
    figure: str, results: Mapping[Tuple[str, int], EchoResult]
) -> Dict[str, object]:
    """The full baseline for one figure, points sorted for stable diffs."""
    return {
        "figure": figure,
        "points": [echo_record(results[key]) for key in sorted(results)],
    }


def write_baseline(
    figure: str,
    results: Mapping[Tuple[str, int], EchoResult],
    path: str,
) -> Dict[str, object]:
    """Write ``BENCH_<figure>.json``-style output; returns the document."""
    document = baseline_document(figure, results)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return document
