"""The benchmark harness itself: workloads, tables, calibration."""

import pytest

from repro.bench import (
    EchoResult,
    FigureTable,
    build_testbed,
    percent_higher,
    percent_lower,
    reptor_echo,
    run_echo,
)
from repro.errors import ReproError


class TestTestbed:
    def test_two_hosts_with_both_stacks(self):
        bed = build_testbed()
        for host in (bed.client, bed.server):
            assert host.has_stack("tcp")
            assert host.has_stack("rdma")
        assert bed.client.cpu.cores == 4

    def test_hosts_are_cabled(self):
        bed = build_testbed()
        assert "server" in bed.client.nic.peers()
        assert "client" in bed.server.nic.peers()


class TestEchoWorkloads:
    @pytest.mark.parametrize(
        "transport",
        ["tcp", "rdma_send_recv", "rdma_read_write", "rdma_channel"],
    )
    def test_each_transport_completes(self, transport):
        result = run_echo(transport, 2048, 10)
        assert result.messages == 10
        assert result.mean_latency_us > 0
        assert result.requests_per_second > 0
        assert len(result.latencies_us) == 10

    def test_unknown_transport_rejected(self):
        with pytest.raises(ReproError, match="unknown transport"):
            run_echo("carrier-pigeon", 1024, 5)

    def test_latency_scales_with_payload(self):
        small = run_echo("tcp", 1024, 10)
        large = run_echo("tcp", 65536, 10)
        assert large.mean_latency_us > small.mean_latency_us

    def test_determinism(self):
        a = run_echo("rdma_channel", 4096, 10)
        b = run_echo("rdma_channel", 4096, 10)
        assert a.latencies_us == b.latencies_us
        assert a.duration_s == b.duration_s

    def test_ordering_holds_at_small_scale(self):
        results = {
            t: run_echo(t, 4096, 15).mean_latency_us
            for t in ("tcp", "rdma_send_recv", "rdma_read_write", "rdma_channel")
        }
        assert results["rdma_read_write"] < results["rdma_send_recv"]
        assert results["rdma_channel"] < results["tcp"]


class TestReptorEcho:
    @pytest.mark.parametrize("transport", ["nio", "rubin"])
    def test_completes(self, transport):
        result = reptor_echo(transport, 4096, 20)
        assert result.messages == 20
        assert result.requests_per_second > 0

    def test_invalid_transport(self):
        with pytest.raises(ReproError):
            reptor_echo("tcp", 1024, 5)

    def test_rubin_beats_nio_at_20kb(self):
        nio = reptor_echo("nio", 20 * 1024, 30)
        rubin = reptor_echo("rubin", 20 * 1024, 30)
        assert rubin.mean_latency_us < nio.mean_latency_us
        assert rubin.requests_per_second > nio.requests_per_second

    def test_unauthenticated_mode_works(self):
        # Under a full pipeline window, per-message latency is a queueing
        # artifact, so only assert completion and non-inferior throughput.
        auth = reptor_echo("rubin", 8192, 20, authenticate=True)
        plain = reptor_echo("rubin", 8192, 20, authenticate=False)
        assert plain.messages == auth.messages == 20
        assert plain.requests_per_second >= auth.requests_per_second * 0.9


class TestResultContainers:
    def test_echo_result_stats(self):
        result = EchoResult("t", 1024, 3)
        result.latencies_us = [10.0, 20.0, 30.0]
        result.duration_s = 0.5
        assert result.mean_latency_us == pytest.approx(20.0)
        assert result.requests_per_second == pytest.approx(6.0)
        assert result.stats().maximum == 30.0

    def test_empty_result_is_safe(self):
        result = EchoResult("t", 1024, 0)
        assert result.mean_latency_us == 0.0
        assert result.requests_per_second == 0.0

    def test_percent_helpers(self):
        assert percent_lower(50.0, 100.0) == pytest.approx(50.0)
        assert percent_higher(150.0, 100.0) == pytest.approx(50.0)
        assert percent_lower(1.0, 0.0) == 0.0

    def test_figure_table_roundtrip(self):
        table = FigureTable("Fig X", "latency", "us")
        table.add("tcp", 1024, 10.0)
        table.add("rdma", 1024, 5.0)
        table.add("tcp", 2048, 20.0)
        assert table.value("tcp", 1024) == 10.0
        assert table.payloads == [1024, 2048]
        assert table.transports() == ["tcp", "rdma"]
        rendered = table.render()
        assert "Fig X" in rendered
        assert "1KB" in rendered
        assert "tcp" in rendered

    def test_figure_table_non_kb_label(self):
        table = FigureTable("Fig", "m", "u")
        table.add("t", 200, 1.0)
        assert "200B" in table.render()
