"""Chrome trace-event export.

Serialises a :class:`~repro.trace.Tracer`'s spans into the Chrome
trace-event JSON format (the ``traceEvents`` array flavour) so a capture
can be dropped straight into Perfetto or ``chrome://tracing``.

Mapping:

* each distinct span ``track`` (usually a host or link name) becomes a
  thread, announced with a ``thread_name`` metadata event;
* with ``hosts=...``, tracks are grouped into one synthetic *process*
  per simulated host (announced with ``process_name`` metadata), so the
  Perfetto UI nests a replica's QP/CQ/selector threads under that
  machine instead of showing a flat thread soup; link tracks
  (``a->b``) group under their sending host, NIC tracks (``a.nic``)
  under theirs, and anything unmatched stays in the default
  "repro simulation" process;
* closed spans with a duration become ``"X"`` (complete) events with
  ``ts``/``dur`` in microseconds of simulated time;
* zero-duration marker spans become ``"i"`` (instant) events;
* the trace id rides in ``args`` so a single causal trace can be
  filtered out of a multi-request capture.

Counter tracks (``"C"`` phase events, as produced by the
``repro.obs`` sampler) are part of the accepted schema too:
:func:`validate_chrome_trace` checks them alongside span events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.trace.core import NullTracer, TraceError, Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Synthetic process id for tracks not attributed to any host.
_PID = 1

#: Seconds of simulated time per Chrome-trace microsecond tick.
_US = 1e6


def _track_pid(track: str, pid_of_host: Dict[str, int]) -> int:
    """Process id for a span track: its host's pid, or the default."""
    if track in pid_of_host:
        return pid_of_host[track]
    # Link tracks are "sender->receiver"; NIC/queue tracks "host.suffix".
    head = track.split("->", 1)[0]
    if head in pid_of_host:
        return pid_of_host[head]
    head = track.split(".", 1)[0]
    return pid_of_host.get(head, _PID)


def chrome_trace_events(
    tracer: Union[Tracer, NullTracer],
    include_open: bool = False,
    hosts: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Render ``tracer``'s spans as a list of Chrome trace events.

    Open spans are skipped unless ``include_open`` is set, in which case
    they are emitted as instant events marked ``"open": True``.

    ``hosts`` optionally names the simulated machines; when given, every
    track is assigned to its host's process (see module docstring) and a
    ``process_name`` metadata event announces each host.
    """
    tracks = sorted({span.track for span in tracer.spans})
    tid_of = {track: tid for tid, track in enumerate(tracks, start=1)}
    pid_of_host: Dict[str, int] = {}
    if hosts:
        for pid, host in enumerate(sorted(set(hosts)), start=_PID + 1):
            pid_of_host[host] = pid
    pid_of_track = {
        track: _track_pid(track, pid_of_host) for track in tracks
    }

    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    for host, pid in sorted(pid_of_host.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": host},
            }
        )
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid_of_track[track],
                "tid": tid_of[track],
                "args": {"name": track},
            }
        )

    spans = sorted(tracer.spans, key=lambda s: (s.start, s.context.span_id))
    for span in spans:
        args: Dict[str, Any] = {
            "trace_id": span.context.trace_id,
            "span_id": span.context.span_id,
            "layer": span.layer,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.layer,
            "pid": pid_of_track[span.track],
            "tid": tid_of[span.track],
            "ts": span.start * _US,
            "args": args,
        }
        if span.is_open:
            if not include_open:
                continue
            event["ph"] = "i"
            event["s"] = "t"
            args["open"] = True
        elif span.duration == 0.0:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration * _US
        events.append(event)
    return events


def write_chrome_trace(
    tracer: Union[Tracer, NullTracer],
    path: str,
    include_open: bool = False,
    hosts: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Write ``{"traceEvents": [...]}`` JSON to ``path``; returns events."""
    events = chrome_trace_events(
        tracer, include_open=include_open, hosts=hosts
    )
    document = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
    return events


def validate_chrome_trace(events: Sequence[Dict[str, Any]]) -> None:
    """Raise :class:`TraceError` unless ``events`` is schema-valid.

    Checks: required keys per phase, phases limited to the ones we emit
    (``M``/``X``/``i``/``C`` — complete events, so no unmatched
    ``B``/``E`` pairs can exist), metadata naming (``process_name`` /
    ``thread_name`` must carry ``args.name``), numeric values on counter
    events, non-negative ``ts``/``dur``, and non-metadata events sorted
    by ``ts``.
    """
    last_ts = None
    for index, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise TraceError(f"event {index} missing {key!r}: {event!r}")
        phase = event["ph"]
        if phase in ("B", "E"):
            raise TraceError(
                f"event {index}: unmatched duration event {phase!r}; "
                "exporter only emits complete ('X') events"
            )
        if phase == "M":
            if event["name"] in ("process_name", "thread_name"):
                name = event.get("args", {}).get("name")
                if not isinstance(name, str) or not name:
                    raise TraceError(
                        f"event {index}: {event['name']} metadata "
                        f"without args.name: {event!r}"
                    )
            continue
        if phase not in ("X", "i", "C"):
            raise TraceError(f"event {index}: unknown phase {phase!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TraceError(f"event {index}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceError(f"event {index}: bad dur {dur!r}")
        if phase == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TraceError(
                    f"event {index}: counter without numeric args.value"
                )
        if last_ts is not None and ts < last_ts:
            raise TraceError(
                f"event {index}: timestamps not sorted ({ts} < {last_ts})"
            )
        last_ts = ts
