"""Per-request critical-path profiling over recorded span trees.

``latency_breakdown`` answers "how much time did each layer spend inside
a request's window" by interval union — overlap-tolerant, but blind to
*causality*: a layer can rack up big unions while never gating the
request.  This module extracts, per trace, the **blocking chain**: the
sequence of spans that actually gated completion.

The walk is backwards from the root span's end.  At every point we ask
"which child span was still running when the remaining window closed?"
and descend into it; windows not covered by any (closed, non-superseded)
child are attributed to the parent as *self-time*.  The resulting
segments are contiguous and partition the root window exactly, so per
node::

    self-time  = chain segments where the node itself was the deepest
                 cover (nothing below it explains that slice)
    wait-time  = time the node sat on the chain while a descendant was
                 the actual cover (its on-chain window minus self-time)

Superseded spans (``attrs["superseded"]`` — phase spans restarted by a
view change) and spans still open at capture are never descended into:
their time falls to the parent, exactly like any other unexplained wait.
COP group muxing is handled by group-qualifying node labels
(``bft.group.2.prepare``) via :func:`repro.trace.breakdown.span_row`.

Aggregation across traces yields, per node label, nearest-rank p50/p99
of per-trace chain contribution plus self/wait totals, and a
flamegraph-style collapsed-stack view (``root;reptor.send;qp.send 12.4``)
of where end-to-end time concentrates.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError
from repro.sim.monitor import SummaryStats
from repro.trace.breakdown import span_row
from repro.trace.core import NullTracer, SpanContext, Tracer

__all__ = [
    "PROFILE_SCHEMA",
    "SpanRecord",
    "node_label",
    "critical_path",
    "CriticalPathReport",
    "spans_from_chrome_trace",
    "render_profile",
    "render_flame",
    "load_profile_document",
]

#: Schema tag of the JSON profile documents this module reads/writes.
PROFILE_SCHEMA = "repro.obs/critical_path/v1"

_US = 1e6


class SpanRecord:
    """A minimal span look-alike rebuilt from exported trace events.

    Duck-types the :class:`~repro.trace.Span` surface the profiler and
    the breakdown need (context/parent/start/end/attrs), so a critical
    path can be computed from a ``TRACE_*.json`` artifact long after the
    run's tracer is gone.
    """

    __slots__ = (
        "name", "layer", "track", "context", "parent_id",
        "start", "end_time", "attrs",
    )

    def __init__(
        self,
        name: str,
        layer: str,
        track: str,
        context: SpanContext,
        parent_id: Optional[int],
        start: float,
        end_time: Optional[float],
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.layer = layer
        self.track = track
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.end_time = end_time
        self.attrs = attrs

    @property
    def is_open(self) -> bool:
        return self.end_time is None

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start

    def __repr__(self) -> str:
        return (
            f"<SpanRecord {self.name!r} trace={self.context.trace_id} "
            f"id={self.context.span_id}>"
        )


def node_label(span: Any) -> str:
    """Profile node a span aggregates under: its name, group-qualified.

    Under COP the same phase runs in every group; folding them together
    would hide a single slow group, so group-tagged spans keep their
    group in the label (``bft.group.2.prepare``), exactly like the
    breakdown rows.
    """
    attrs = span.attrs
    if attrs and attrs.get("group") is not None:
        return span_row(span)
    return span.name


def _blocking(span: Any) -> bool:
    """Whether the walk may descend into ``span``."""
    if span.is_open:
        return False
    attrs = span.attrs
    if attrs and attrs.get("superseded"):
        return False
    return True


def _walk_trace(
    root: Any,
    children_of: Mapping[int, List[Any]],
) -> Tuple[
    List[Tuple[Tuple[str, ...], Any, float, float]],
    List[Tuple[Any, float, float]],
]:
    """Blocking-chain segments of one trace.

    Returns ``(stack, span, lo, hi)`` tuples whose windows are disjoint
    and sum exactly to the root's duration.  ``on_path`` windows (for
    wait-time accounting) are derived by the caller from the recursion:
    every ``_walk`` invocation covers one on-chain window of its span.
    """
    segments: List[Tuple[Tuple[str, ...], Any, float, float]] = []
    on_path: List[Tuple[Any, float, float]] = []

    def walk(span: Any, lo: float, hi: float, stack: Tuple[str, ...]) -> None:
        label = node_label(span)
        stack = stack + (label,)
        on_path.append((span, lo, hi))
        kids = [
            child
            for child in children_of.get(span.context.span_id, ())
            if _blocking(child)
        ]
        # Latest-ending child first: the one still running when the
        # remaining window closes is the one that gated it.
        kids.sort(
            key=lambda c: (c.end_time, c.start, c.context.span_id),
            reverse=True,
        )
        ptr = hi
        for child in kids:
            if ptr <= lo:
                break
            child_end = min(child.end_time, ptr)
            child_start = max(child.start, lo)
            if child_end <= child_start:
                continue
            if child_end < ptr:
                # The window (child_end, ptr] was covered by no child:
                # the span itself was the deepest cover there.
                segments.append((stack, span, child_end, ptr))
            walk(child, child_start, child_end, stack)
            ptr = child_start
        if ptr > lo:
            segments.append((stack, span, lo, ptr))

    walk(root, root.start, root.end_time, ())
    return segments, on_path


class CriticalPathReport:
    """Aggregated critical-path profile over one or more traces."""

    def __init__(self, chains: List[Dict[str, Any]]):
        #: One entry per completed trace: {"trace_id", "end_to_end",
        #: "segments", "on_path"}.
        self.chains = chains

    # -- per-node aggregation -------------------------------------------

    @property
    def traces(self) -> int:
        return len(self.chains)

    def end_to_end_stats(self) -> SummaryStats:
        return SummaryStats([c["end_to_end"] for c in self.chains])

    def labels(self) -> List[str]:
        seen: Dict[str, None] = {}
        for chain in self.chains:
            for _stack, span, _lo, _hi in chain["segments"]:
                seen.setdefault(node_label(span), None)
        return sorted(seen)

    def node_contributions(self, label: str) -> List[float]:
        """Per-trace self-time of ``label`` (0.0 where it never gated)."""
        contributions = []
        for chain in self.chains:
            total = sum(
                hi - lo
                for _stack, span, lo, hi in chain["segments"]
                if node_label(span) == label
            )
            contributions.append(total)
        return contributions

    def node_stats(self, label: str) -> SummaryStats:
        return SummaryStats(self.node_contributions(label))

    def _node_totals(self, label: str) -> Tuple[float, float, int]:
        """(self_s, wait_s, hits) summed across all traces."""
        self_s = 0.0
        path_s = 0.0
        hits = 0
        for chain in self.chains:
            for _stack, span, lo, hi in chain["segments"]:
                if node_label(span) == label:
                    self_s += hi - lo
            for span, lo, hi in chain["on_path"]:
                if node_label(span) == label:
                    path_s += hi - lo
                    hits += 1
        return self_s, max(0.0, path_s - self_s), hits

    def flame(self) -> List[Tuple[str, float]]:
        """Collapsed stacks (``a;b;c``, total seconds), largest first."""
        totals: Dict[str, float] = {}
        for chain in self.chains:
            for stack, _span, lo, hi in chain["segments"]:
                key = ";".join(stack)
                totals[key] = totals.get(key, 0.0) + (hi - lo)
        return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        e2e = self.end_to_end_stats()
        total_e2e = sum(c["end_to_end"] for c in self.chains)
        nodes: Dict[str, Any] = {}
        for label in self.labels():
            stats = self.node_stats(label)
            self_s, wait_s, hits = self._node_totals(label)
            nodes[label] = {
                "p50_us": stats.p50 * _US,
                "p99_us": stats.p99 * _US,
                "mean_us": stats.mean * _US,
                "share": (self_s / total_e2e) if total_e2e > 0 else 0.0,
                "self_us_total": self_s * _US,
                "wait_us_total": wait_s * _US,
                "hits": hits,
            }
        return {
            "schema": PROFILE_SCHEMA,
            "traces": self.traces,
            "end_to_end_us": {
                "p50": e2e.p50 * _US,
                "p99": e2e.p99 * _US,
                "mean": e2e.mean * _US,
            },
            "nodes": nodes,
            "flame": [
                {"stack": stack, "us": seconds * _US}
                for stack, seconds in self.flame()
            ],
        }

    def render(self, top: Optional[int] = None) -> str:
        return render_profile(self.to_dict(), top=top)

    def render_flame(self, top: int = 30) -> str:
        return render_flame(self.to_dict(), top=top)


def critical_path(
    source: Union[Tracer, NullTracer, Iterable[Any]],
    trace_id: Optional[int] = None,
) -> CriticalPathReport:
    """Critical-path profile of every completed trace in ``source``.

    ``source`` is a tracer or any iterable of span-like objects
    (:class:`SpanRecord` works).  Traces whose root never closed are
    skipped — an in-flight request has no completion to attribute.
    """
    spans = source.spans if hasattr(source, "spans") else list(source)
    by_trace: Dict[int, List[Any]] = {}
    for span in spans:
        if trace_id is not None and span.context.trace_id != trace_id:
            continue
        by_trace.setdefault(span.context.trace_id, []).append(span)

    chains: List[Dict[str, Any]] = []
    for tid, trace_spans in sorted(by_trace.items()):
        roots = [s for s in trace_spans if s.parent_id is None]
        if not roots:
            continue
        root = min(roots, key=lambda s: (s.start, s.context.span_id))
        if root.is_open or root.duration <= 0:
            continue
        children_of: Dict[int, List[Any]] = {}
        for span in trace_spans:
            if span.parent_id is not None:
                children_of.setdefault(span.parent_id, []).append(span)
        segments, on_path = _walk_trace(root, children_of)
        chains.append(
            {
                "trace_id": tid,
                "end_to_end": root.duration,
                "segments": segments,
                "on_path": on_path,
            }
        )
    return CriticalPathReport(chains)


# ---------------------------------------------------------------------------
# rebuilding spans from exported Chrome traces
# ---------------------------------------------------------------------------


def spans_from_chrome_trace(
    events: Iterable[Mapping[str, Any]],
) -> List[SpanRecord]:
    """Rebuild :class:`SpanRecord` objects from exported trace events.

    Only events our exporter produced with span identity
    (``args.trace_id``/``args.span_id``) are considered; metadata and
    counter events are skipped.  Events marked ``args.open`` come back
    as open spans (and are therefore never on a blocking chain).
    """
    records: List[SpanRecord] = []
    for event in events:
        if event.get("ph") not in ("X", "i"):
            continue
        args = event.get("args") or {}
        if "trace_id" not in args or "span_id" not in args:
            continue
        attrs = {
            key: value
            for key, value in args.items()
            if key not in ("trace_id", "span_id", "parent_id", "layer", "open")
        }
        start = float(event["ts"]) / _US
        if args.get("open"):
            end_time: Optional[float] = None
        else:
            end_time = start + float(event.get("dur", 0.0)) / _US
        records.append(
            SpanRecord(
                name=event.get("name", "?"),
                layer=args.get("layer", event.get("cat", "?")),
                track=str(event.get("tid", "?")),
                context=SpanContext(
                    trace_id=int(args["trace_id"]),
                    span_id=int(args["span_id"]),
                ),
                parent_id=(
                    int(args["parent_id"]) if "parent_id" in args else None
                ),
                start=start,
                end_time=end_time,
                attrs=attrs,
            )
        )
    return records


# ---------------------------------------------------------------------------
# rendering and document I/O
# ---------------------------------------------------------------------------


def render_profile(document: Mapping[str, Any], top: Optional[int] = None) -> str:
    """Human-readable critical-path table from a profile document."""
    nodes = document.get("nodes", {})
    if not nodes:
        return "no completed traces profiled"
    e2e = document["end_to_end_us"]
    width = max(10, max(len(label) for label in nodes))
    lines = [
        f"critical path over {document['traces']} traces   "
        f"end-to-end p50 {e2e['p50']:.2f}us  p99 {e2e['p99']:.2f}us",
        f"{'node':<{width}} {'p50 us':>10} {'p99 us':>10} "
        f"{'share':>7} {'self us':>11} {'wait us':>11}",
        "-" * (width + 54),
    ]
    ranked = sorted(
        nodes.items(), key=lambda kv: (-kv[1]["self_us_total"], kv[0])
    )
    if top is not None:
        ranked = ranked[:top]
    for label, node in ranked:
        lines.append(
            f"{label:<{width}} {node['p50_us']:>10.2f} {node['p99_us']:>10.2f} "
            f"{node['share'] * 100:>6.1f}% {node['self_us_total']:>11.1f} "
            f"{node['wait_us_total']:>11.1f}"
        )
    return "\n".join(lines)


def render_flame(document: Mapping[str, Any], top: int = 30) -> str:
    """Collapsed-stack flame view (one ``stack us`` line per stack)."""
    flame = document.get("flame", [])
    if not flame:
        return "no completed traces profiled"
    lines = [
        f"{entry['stack']} {entry['us']:.2f}"
        for entry in flame[:top]
    ]
    if len(flame) > top:
        lines.append(f"... {len(flame) - top} more stacks")
    return "\n".join(lines)


def load_profile_document(path: str) -> Dict[str, Any]:
    """Read one critical-path profile JSON, validating its schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != PROFILE_SCHEMA:
        raise ReproError(
            f"{path}: not a {PROFILE_SCHEMA} document "
            f"(schema={document.get('schema')!r})"
        )
    if not isinstance(document.get("nodes"), dict):
        raise ReproError(f"{path}: profile document has no nodes mapping")
    return document
