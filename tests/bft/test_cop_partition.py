"""Request partitioners: pure, seed-independent, pluggable by name."""

import pytest

from repro.bft.cop import (
    ClientAffinityPartitioner,
    HashPartitioner,
    make_partitioner,
)


class TestHashPartitioner:
    def test_stable_across_instances(self):
        # Clients and replicas each evaluate the partitioner locally;
        # they must agree with no wire metadata.
        a = HashPartitioner(4)
        b = HashPartitioner(4)
        for ts in range(50):
            assert a.group_of("c0", ts) == b.group_of("c0", ts)

    def test_spreads_one_client_across_groups(self):
        p = HashPartitioner(4)
        groups = {p.group_of("c0", ts) for ts in range(64)}
        assert groups == {0, 1, 2, 3}

    def test_single_group_short_circuits(self):
        p = HashPartitioner(1)
        assert all(p.group_of("c%d" % i, i) == 0 for i in range(16))

    def test_known_assignments_pinned(self):
        # SHA-256 of "client:timestamp" — pin a few values so a silent
        # partitioner change cannot reshuffle recorded schedules.
        p = HashPartitioner(4)
        assert [p.group_of("c0", ts) for ts in range(8)] == [
            2, 0, 0, 1, 1, 1, 2, 1,
        ]


class TestClientAffinityPartitioner:
    def test_client_pinned_to_one_group(self):
        p = ClientAffinityPartitioner(4)
        home = p.group_of("c7", 0)
        assert all(p.group_of("c7", ts) == home for ts in range(40))

    def test_different_clients_spread(self):
        p = ClientAffinityPartitioner(4)
        groups = {p.group_of("c%d" % i, 0) for i in range(32)}
        assert len(groups) > 1


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(make_partitioner("hash", 2), HashPartitioner)
        assert isinstance(
            make_partitioner("client", 2), ClientAffinityPartitioner
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("modulo", 2)

    def test_group_count_validated(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            ClientAffinityPartitioner(0)
