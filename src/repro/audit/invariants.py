"""Online invariant auditors for the BFT protocol and the RDMA stack.

Both auditors are pure observers fed by hook calls from the audited
subsystems (routed through :class:`~repro.audit.core.AuditManager`).
They keep tiny cross-replica tables and report violations back to the
manager, which records them and dumps a flight-recorder post-mortem.

Invariant catalogue
-------------------

PBFT safety (:class:`BftSafetyAuditor`):

* ``bft.pre-prepare-equivocation`` — two replicas accepted different
  request digests for the same ``(view, seq)`` assignment;
* ``bft.execution-divergence`` — two replicas executed different batch
  digests at the same sequence number (the core safety property);
* ``bft.commit-quorum`` — a commit certificate held fewer than
  ``2f + 1`` distinct signers;
* ``bft.view-regression`` — a replica's view number moved backwards
  within one incarnation;
* ``bft.view-change-equivocation`` — two replicas observed different
  encodings of the same voter's ViewChange vote for one new view (a
  Byzantine voter told different peers different stories);
* ``bft.checkpoint-divergence`` — two replicas stabilised the same
  checkpoint sequence with different state digests (stability must
  imply log-prefix agreement);
* ``bft.consensus-stall`` — raised by the watchdog: requests
  outstanding but no execution progress for longer than the configured
  stall timeout.

COP (multi-group) safety, degenerate at ``group_count=1``:

* ``bft.merge-slot-conflict`` — per-group sequence disjointness: two
  different ``(group, seq)`` identities claimed the same global merge
  slot, or a replica reported a merged position that contradicts the
  round-robin slot arithmetic;
* ``bft.merge-premature-execution`` — a replica executed a global merge
  slot before every lower slot was executed (or installed via a stable
  checkpoint): merged execution must advance one slot at a time, which
  together with ``bft.execution-divergence`` keyed by the *global* slot
  is merge-order determinism.

RDMA / RUBIN resources (:class:`ResourceAuditor`):

* ``rdma.qp-state`` — a queue pair left the verbs state machine
  (INIT→RTR→RTS→ERROR, with the simulator's collapsed RESET→RTS
  connect accepted as the CM shortcut);
* ``rdma.recv-wr-dropped`` — a QP was destroyed while posted receive
  WRs had produced no completion (every posted WR must complete,
  successfully or flushed);
* ``rdma.recv-not-posted`` — a receive completion surfaced for a WR
  the auditor never saw posted;
* ``rdma.cq-overrun`` — a completion push would exceed CQ capacity;
* ``rdma.rnr-budget-exceeded`` — a requester performed more RNR retry
  rounds than its configured ``rnr_retry`` budget allows;
* ``rdma.send-without-credit`` — a two-sided SEND was posted past the
  peer's advertised receive window (flow control must gate the post);
* ``rdma.credit-overadvertised`` — a responder advertised more credits
  than receives it ever posted (credits must be conserved);
* ``rdma.credit-regression`` — a responder's advertised cumulative
  credit moved backwards (advertisements are monotonic);
* ``rubin.pool-double-return`` — a pooled buffer was returned while
  already free (checkout/return must balance);
* ``rubin.pool-overflow`` — a pool's free list exceeded its capacity;
* ``rubin.selector-starvation`` — a selection key stayed ready for
  more consecutive select passes than the configured tick budget
  without ever going unready (its events are never being consumed).

One-sided agreement (dynamic permissions + slot arrays):

* ``rdma.stale-permission-access`` — a one-sided access was denied
  because its permission epoch was revoked under the in-flight WR or
  its rkey belongs to a deregistered region: the deterministic
  permission fence observed working (fires on the *offending* peer);
* ``rdma.unauthorized-write`` — a one-sided write from a peer outside
  the region's grant table was denied, or (guarding off) a write from
  someone other than the region's declared writer *landed* — the forged
  write the compromised-rkey fault family injects;
* ``rdma.unauthorized-read`` — the read-side counterpart of the above
  denial;
* ``bft.onesided-slot-overwrite`` — reported by the one-sided protocol
  poller: a proposal/ack slot's bytes were overwritten with something
  that is not a legitimate successor record (corrupted seal/CRC, wrong
  lane identity, or a non-record scribble over a consumed slot).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.core import AuditManager

__all__ = ["BftSafetyAuditor", "ResourceAuditor"]


class BftSafetyAuditor:
    """Cross-replica safety checks over the PBFT hook stream."""

    def __init__(self, manager: "AuditManager"):
        self.manager = manager
        self.f: Optional[int] = None
        #: Consensus groups (COP); 1 keeps the historical single-group
        #: keying where the global merge slot equals the sequence number.
        self.group_count = 1
        #: (group, view, seq) -> (digest, first reporter)
        self._proposals: Dict[Tuple[int, int, int], Tuple[bytes, str]] = {}
        #: global merge slot -> (digest, first executor)
        self._executions: Dict[int, Tuple[bytes, str]] = {}
        #: global merge slot -> ((group, seq), first reporter) —
        #: per-group sequence disjointness over the merged order.
        self._slot_claims: Dict[int, Tuple[Tuple[int, int], str]] = {}
        #: replica -> last executed global merge slot this incarnation.
        self._exec_frontier: Dict[str, int] = {}
        #: replica -> highest stable-checkpoint slot this incarnation.
        #: A checkpoint can stabilise *ahead* of a lagging replica's own
        #: execution (2f+1 faster peers voted), so it is tracked apart
        #: from the execution frontier: it only legitimises resuming at
        #: ``checkpoint + 1`` after a state-transfer install, it does
        #: not mean the replica executed the covered prefix itself.
        self._ckpt_frontier: Dict[str, int] = {}
        #: (group, seq) -> (state digest, first stabiliser)
        self._checkpoints: Dict[Tuple[int, int], Tuple[bytes, str]] = {}
        #: (replica, group) -> highest view adopted this incarnation
        self._views: Dict[Tuple[str, int], int] = {}
        #: (group, voter, new_view) -> (vote encoding digest, first
        #: observer)
        self._vc_votes: Dict[Tuple[int, str, int], Tuple[bytes, str]] = {}

    def configure(self, f: int, group_count: int = 1) -> None:
        """Learn the fault threshold (enables the quorum-size check) and
        the consensus-group count (enables merge-slot arithmetic)."""
        self.f = f
        self.group_count = max(1, group_count)

    def _global_slot(self, group: int, seq: int) -> Optional[int]:
        """Merged global slot of ``(group, seq)``, or None if the group
        is outside the configured shard space (nothing to derive)."""
        if not 0 <= group < self.group_count or seq < 1:
            return None
        return (seq - 1) * self.group_count + group + 1

    # -- hooks ----------------------------------------------------------

    def on_pre_prepare(
        self, replica: str, view: int, seq: int, digest: bytes,
        group: int = 0,
    ) -> None:
        key = (group, view, seq)
        known = self._proposals.get(key)
        if known is None:
            self._proposals[key] = (digest, replica)
            self._prune(self._proposals, by_seq=lambda k: k[2])
            return
        if known[0] != digest:
            detail = dict(
                view=view,
                seq=seq,
                digest=digest.hex()[:16],
                conflicting_digest=known[0].hex()[:16],
                first_reporter=known[1],
            )
            if group:
                detail["group"] = group
            self.manager.violation(
                "bft.pre-prepare-equivocation",
                layer="bft",
                subject=replica,
                **detail,
            )

    def on_commit_quorum(
        self, replica: str, view: int, seq: int, signers: Iterable[str],
        group: int = 0,
    ) -> None:
        distinct = set(signers)
        if self.f is not None and len(distinct) < 2 * self.f + 1:
            detail = dict(
                view=view,
                seq=seq,
                signers=sorted(distinct),
                required=2 * self.f + 1,
            )
            if group:
                detail["group"] = group
            self.manager.violation(
                "bft.commit-quorum",
                layer="bft",
                subject=replica,
                **detail,
            )

    def on_execute(
        self,
        replica: str,
        seq: int,
        digest: bytes,
        group: int = 0,
        global_seq: Optional[int] = None,
    ) -> None:
        derived = self._global_slot(group, seq)
        slot = global_seq if global_seq is not None else derived
        if (
            derived is not None
            and global_seq is not None
            and global_seq != derived
        ):
            # The replica's reported merge position contradicts the
            # round-robin slot arithmetic for (group, seq).
            self.manager.violation(
                "bft.merge-slot-conflict",
                layer="bft",
                subject=replica,
                group=group,
                seq=seq,
                reported_global_seq=global_seq,
                derived_global_seq=derived,
            )
        if slot is None:
            return
        claim = self._slot_claims.get(slot)
        if claim is None:
            self._slot_claims[slot] = ((group, seq), replica)
            self._prune(self._slot_claims, by_seq=lambda k: k)
        elif claim[0] != (group, seq):
            self.manager.violation(
                "bft.merge-slot-conflict",
                layer="bft",
                subject=replica,
                global_seq=slot,
                group=group,
                seq=seq,
                first_claim=f"group={claim[0][0]} seq={claim[0][1]}",
                first_reporter=claim[1],
            )
        frontier = self._exec_frontier.get(replica)
        if frontier is not None:
            allowed = {frontier + 1}
            ckpt = self._ckpt_frontier.get(replica, 0)
            if ckpt > frontier:
                # A state-transfer install may legitimately jump the
                # execution stream to just past the stable checkpoint.
                allowed.add(ckpt + 1)
            if slot not in allowed:
                self.manager.violation(
                    "bft.merge-premature-execution",
                    layer="bft",
                    subject=replica,
                    global_seq=slot,
                    frontier=frontier,
                    group=group,
                    seq=seq,
                )
        if frontier is None or slot > frontier:
            self._exec_frontier[replica] = slot
        known = self._executions.get(slot)
        if known is None:
            self._executions[slot] = (digest, replica)
            self._prune(self._executions, by_seq=lambda k: k)
            return
        if known[0] != digest:
            detail = dict(
                seq=seq,
                digest=digest.hex()[:16],
                conflicting_digest=known[0].hex()[:16],
                first_executor=known[1],
            )
            if group or slot != seq:
                detail["group"] = group
                detail["global_seq"] = slot
            self.manager.violation(
                "bft.execution-divergence",
                layer="bft",
                subject=replica,
                **detail,
            )

    def on_view_adopted(
        self, replica: str, view: int, group: int = 0
    ) -> None:
        key = (replica, group)
        last = self._views.get(key)
        if last is not None and view < last:
            detail = dict(view=view, previous_view=last)
            if group:
                detail["group"] = group
            self.manager.violation(
                "bft.view-regression",
                layer="bft",
                subject=replica,
                **detail,
            )
            return
        self._views[key] = view

    def on_view_change_vote(
        self, replica: str, voter: str, new_view: int, digest: bytes,
        group: int = 0,
    ) -> None:
        key = (group, voter, new_view)
        known = self._vc_votes.get(key)
        if known is None:
            self._vc_votes[key] = (digest, replica)
            self._prune(self._vc_votes, by_seq=lambda k: k[2])
            return
        if known[0] != digest and replica != known[1]:
            detail = dict(
                new_view=new_view,
                observer=replica,
                digest=digest.hex()[:16],
                conflicting_digest=known[0].hex()[:16],
                first_observer=known[1],
            )
            if group:
                detail["group"] = group
            self.manager.violation(
                "bft.view-change-equivocation",
                layer="bft",
                subject=voter,
                **detail,
            )

    def on_stable_checkpoint(
        self, replica: str, seq: int, digest: bytes, group: int = 0
    ) -> None:
        key = (group, seq)
        known = self._checkpoints.get(key)
        if known is None:
            self._checkpoints[key] = (digest, replica)
            self._prune(self._checkpoints, by_seq=lambda k: k[1])
        elif known[0] != digest:
            detail = dict(
                seq=seq,
                digest=digest.hex()[:16],
                conflicting_digest=known[0].hex()[:16],
                first_stabiliser=known[1],
            )
            if group:
                detail["group"] = group
            self.manager.violation(
                "bft.checkpoint-divergence",
                layer="bft",
                subject=replica,
                **detail,
            )
        # A stable checkpoint vouches for the merged prefix up to its
        # slot: remember it so a state-transfer install resuming at
        # ``slot + 1`` is not read as a merge-order jump.
        slot = self._global_slot(group, seq)
        if slot is not None:
            frontier = self._ckpt_frontier.get(replica)
            if frontier is None or slot > frontier:
                self._ckpt_frontier[replica] = slot

    def on_replica_restart(self, replica: str) -> None:
        # A fresh incarnation legitimately restarts at view 0 and works
        # its way back up; monotonicity holds per incarnation only.
        for key in [k for k in self._views if k[0] == replica]:
            del self._views[key]
        # Likewise it may re-vote for a view its previous incarnation
        # already voted for, with a different (post-recovery) log.
        for key in [k for k in self._vc_votes if k[1] == replica]:
            del self._vc_votes[key]
        # And its merged execution restarts from whatever checkpoint it
        # recovers to; the frontiers re-baseline on the next execution.
        self._exec_frontier.pop(replica, None)
        self._ckpt_frontier.pop(replica, None)

    # -- bookkeeping ----------------------------------------------------

    def _prune(self, table: Dict, by_seq) -> None:
        """Keep the tables bounded: drop the oldest sequence numbers."""
        limit = self.manager.config.max_tracked_seqs
        while len(table) > limit:
            oldest = min(table, key=by_seq)
            del table[oldest]


class ResourceAuditor:
    """RDMA/RUBIN accounting checks over the resource hook stream."""

    #: Legal queue-pair transitions.  INIT→RTR→RTS is the verbs ladder;
    #: RESET→RTS is the simulator's collapsed CM connect; anything may
    #: fall to ERROR.
    LEGAL_QP_TRANSITIONS = {
        ("RESET", "INIT"),
        ("RESET", "RTS"),
        ("INIT", "RTR"),
        ("RTR", "RTS"),
    }

    def __init__(self, manager: "AuditManager"):
        self.manager = manager
        #: qp_num -> wr_ids posted but not yet completed
        self._posted_recvs: Dict[int, Set[int]] = {}
        #: qp_num -> cumulative receives ever posted (credit conservation)
        self._posted_total: Dict[int, int] = {}
        #: qp_num -> highest credit a requester has seen advertised
        self._seen_credit: Dict[int, int] = {}
        #: (host, channel_id) -> (consecutive no-progress ready passes,
        #: last observed progress marker)
        self._ready_streaks: Dict[Tuple[str, int], Tuple[int, int]] = {}
        #: (host, rkey) -> the only peer allowed to one-sided-write it
        #: (declared protocol intent; see :meth:`declare_region_writer`).
        self._declared_writers: Dict[Tuple[str, int], str] = {}
        self.max_cq_depth = 0

    # -- queue pairs ----------------------------------------------------

    def on_qp_transition(
        self, host: str, qp_num: int, old: str, new: str
    ) -> None:
        if new != "ERROR" and (old, new) not in self.LEGAL_QP_TRANSITIONS:
            self.manager.violation(
                "rdma.qp-state",
                layer="rdma",
                subject=host,
                qp_num=qp_num,
                transition=f"{old}->{new}",
            )

    def on_post_recv(self, qp_num: int, wr_id: int) -> None:
        self._posted_recvs.setdefault(qp_num, set()).add(wr_id)
        self._posted_total[qp_num] = self._posted_total.get(qp_num, 0) + 1

    def on_recv_complete(self, qp_num: int, wr_id: int) -> None:
        outstanding = self._posted_recvs.get(qp_num)
        if outstanding is None or wr_id not in outstanding:
            self.manager.violation(
                "rdma.recv-not-posted",
                layer="rdma",
                subject=f"qp{qp_num}",
                wr_id=wr_id,
            )
            return
        outstanding.discard(wr_id)
        if not outstanding:
            del self._posted_recvs[qp_num]

    def on_qp_destroy(self, host: str, qp_num: int) -> None:
        self._posted_total.pop(qp_num, None)
        self._seen_credit.pop(qp_num, None)
        dropped = self._posted_recvs.pop(qp_num, None)
        if dropped:
            self.manager.violation(
                "rdma.recv-wr-dropped",
                layer="rdma",
                subject=host,
                qp_num=qp_num,
                dropped_wr_ids=sorted(dropped),
            )

    # -- dynamic permissions / one-sided writes --------------------------

    def declare_region_writer(self, host: str, rkey: int, writer: str) -> None:
        """Record that only ``writer`` may one-sided-write ``rkey`` on
        ``host``.  Declared by the protocol layer regardless of whether
        NIC-level guarding is on — the auditor then detects forged writes
        even when the NIC would have let them land."""
        self._declared_writers[(host, rkey)] = writer

    def on_remote_access_denied(
        self,
        host: str,
        qp_num: int,
        src_host: "Optional[str]",
        rkey: "Optional[int]",
        write: bool,
        reason: str,
    ) -> None:
        if reason in ("stale-epoch", "stale-rkey"):
            self.manager.violation(
                "rdma.stale-permission-access",
                layer="rdma",
                subject=src_host or "?",
                host=host,
                qp_num=qp_num,
                rkey=rkey,
                write=write,
                reason=reason,
            )
        elif reason == "unauthorized":
            self.manager.violation(
                "rdma.unauthorized-write" if write
                else "rdma.unauthorized-read",
                layer="rdma",
                subject=src_host or "?",
                host=host,
                qp_num=qp_num,
                rkey=rkey,
                reason=reason,
            )
        # Plain protection faults (bounds, access bits, foreign PD) stay
        # record-only: they are application errors, not attacks.

    def on_remote_write_applied(
        self,
        host: str,
        src_host: "Optional[str]",
        rkey: "Optional[int]",
        offset: int,
        length: int,
    ) -> None:
        declared = self._declared_writers.get((host, rkey))
        if declared is not None and src_host != declared:
            self.manager.violation(
                "rdma.unauthorized-write",
                layer="rdma",
                subject=src_host or "?",
                host=host,
                rkey=rkey,
                offset=offset,
                length=length,
                declared_writer=declared,
            )

    # -- completion queues ----------------------------------------------

    def on_cq_push(self, cq_name: str, depth: int, capacity: int) -> None:
        if depth > self.max_cq_depth:
            self.max_cq_depth = depth
        if depth > capacity:
            self.manager.violation(
                "rdma.cq-overrun",
                layer="rdma",
                subject=cq_name,
                depth=depth,
                capacity=capacity,
            )

    # -- flow control -----------------------------------------------------

    def on_rnr_retry(
        self, host: str, qp_num: int, used: int, budget: int
    ) -> None:
        if used > budget:
            self.manager.violation(
                "rdma.rnr-budget-exceeded",
                layer="rdma",
                subject=host,
                qp_num=qp_num,
                used=used,
                budget=budget,
            )

    def on_send_credit(
        self, host: str, qp_num: int, sent_total: int, credit_limit: int
    ) -> None:
        if sent_total > credit_limit:
            self.manager.violation(
                "rdma.send-without-credit",
                layer="rdma",
                subject=host,
                qp_num=qp_num,
                sent_total=sent_total,
                credit_limit=credit_limit,
            )

    def on_credit_advertised(self, qp_num: int, credit: int) -> None:
        posted = self._posted_total.get(qp_num, 0)
        if credit > posted:
            self.manager.violation(
                "rdma.credit-overadvertised",
                layer="rdma",
                subject=f"qp{qp_num}",
                credit=credit,
                posted=posted,
            )

    def on_credit_update(
        self, qp_num: int, credit: int, previous: int
    ) -> None:
        # Tracked against the auditor's own high-water mark, not the
        # requester's local limit, so an asymmetric initial_credit does
        # not read as a regression.
        seen = self._seen_credit.get(qp_num)
        if seen is not None and credit < seen:
            self.manager.violation(
                "rdma.credit-regression",
                layer="rdma",
                subject=f"qp{qp_num}",
                credit=credit,
                previous=seen,
            )
            return
        if seen is None or credit > seen:
            self._seen_credit[qp_num] = credit

    # -- buffer pools ----------------------------------------------------

    def on_buffer_acquire(
        self, pool: str, available: int, capacity: int
    ) -> None:
        if available < 0 or available > capacity:
            self.manager.violation(
                "rubin.pool-overflow",
                layer="rubin",
                subject=pool,
                available=available,
                capacity=capacity,
            )

    def on_buffer_release(
        self,
        pool: str,
        index: int,
        was_free: bool,
        available: int,
        capacity: int,
    ) -> None:
        if was_free:
            self.manager.violation(
                "rubin.pool-double-return",
                layer="rubin",
                subject=pool,
                buffer_index=index,
            )
            return
        if available + 1 > capacity:
            self.manager.violation(
                "rubin.pool-overflow",
                layer="rubin",
                subject=pool,
                available=available + 1,
                capacity=capacity,
            )

    # -- selector ---------------------------------------------------------

    def on_select_pass(
        self, host: str, ready: Tuple[Tuple[int, int], ...]
    ) -> None:
        """One completed select pass on ``host``.

        ``ready`` carries ``(channel_id, progress_marker)`` per ready
        key, where the marker is a per-channel counter of application
        I/O calls (read/write/accept/finish_connect).  A key is only
        *starving* if it stays ready across many passes while its
        marker never moves — a busy channel that the application keeps
        draining resets its streak on every serviced pass.
        """
        threshold = self.manager.config.starvation_ticks
        ready_ids = {channel_id for channel_id, _marker in ready}
        stale = [
            key
            for key in self._ready_streaks
            if key[0] == host and key[1] not in ready_ids
        ]
        for key in stale:
            del self._ready_streaks[key]
        for channel_id, marker in ready:
            key = (host, channel_id)
            streak, last_marker = self._ready_streaks.get(key, (0, marker))
            if marker != last_marker:
                streak = 0  # the application serviced this key
            streak += 1
            self._ready_streaks[key] = (streak, marker)
            if streak == threshold:
                self.manager.violation(
                    "rubin.selector-starvation",
                    layer="rubin",
                    subject=host,
                    channel_id=channel_id,
                    consecutive_ready_passes=streak,
                )
