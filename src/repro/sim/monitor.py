"""Lightweight measurement probes for simulations.

The benchmark harness needs three kinds of observations:

* :class:`Counter` — monotonically increasing event counts (messages sent,
  completions polled, retransmissions...).
* :class:`TimeSeries` — (time, value) samples, e.g. per-message latencies.
* :class:`UtilizationTracker` — busy-time integration for CPUs/links.

All probes are cheap and purely observational: attaching them never changes
simulation behaviour.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["Counter", "Gauge", "TimeSeries", "UtilizationTracker", "SummaryStats"]


class SummaryStats:
    """Simple descriptive statistics over a list of samples.

    All percentiles use nearest-rank semantics (see :func:`_percentile`):
    they always return an actual sample, never an interpolated value.
    """

    __slots__ = (
        "count",
        "mean",
        "minimum",
        "maximum",
        "stdev",
        "p50",
        "p95",
        "p99",
        "p999",
        "samples_sorted",
    )

    def __init__(self, samples: list[float]):
        self._init_sorted(sorted(samples))

    def _init_sorted(self, ordered: list[float]) -> None:
        """Compute every statistic from an already sorted sample list."""
        self.samples_sorted = ordered
        self.count = len(ordered)
        if not ordered:
            self.mean = self.minimum = self.maximum = self.stdev = 0.0
            self.p50 = self.p95 = self.p99 = self.p999 = 0.0
            return
        self.mean = sum(ordered) / self.count
        self.minimum = ordered[0]
        self.maximum = ordered[-1]
        variance = sum((s - self.mean) ** 2 for s in ordered) / self.count
        self.stdev = math.sqrt(variance)
        self.p50 = _percentile(ordered, 0.50)
        self.p95 = _percentile(ordered, 0.95)
        self.p99 = _percentile(ordered, 0.99)
        self.p999 = _percentile(ordered, 0.999)

    @classmethod
    def from_samples(cls, samples: list[float]) -> "SummaryStats":
        """Explicit constructor alias (reads better at call sites)."""
        return cls(samples)

    @classmethod
    def merge(cls, parts: Iterable["SummaryStats"]) -> "SummaryStats":
        """Combine per-shard statistics without re-sorting full lists.

        Each part retains its samples in sorted order, so the union is a
        k-way merge (``heapq.merge``) — O(total log k) — and the result
        has exactly the nearest-rank percentiles of the concatenated
        sample set.
        """
        stats = cls.__new__(cls)
        stats._init_sorted(
            list(heapq.merge(*(part.samples_sorted for part in parts)))
        )
        return stats

    def to_dict(self) -> dict[str, float]:
        """JSON-ready mapping of every statistic."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
        }

    def __repr__(self) -> str:
        return (
            f"<SummaryStats n={self.count} mean={self.mean:.6g} "
            f"min={self.minimum:.6g} max={self.maximum:.6g}>"
        )


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile on an already sorted list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named value that moves both ways, remembering its extremes."""

    __slots__ = ("name", "value", "minimum", "maximum")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value
        self.minimum = value
        self.maximum = value

    def set(self, value: float) -> None:
        self.value = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def adjust(self, delta: float) -> None:
        self.set(self.value + delta)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class TimeSeries:
    """Records (time, value) samples against an environment's clock."""

    __slots__ = ("env", "name", "times", "values")

    def __init__(self, env: "Environment", name: str):
        self.env = env
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, value: float, time: Optional[float] = None) -> None:
        """Append a sample (defaults to the current simulated time)."""
        self.times.append(self.env.now if time is None else time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def stats(self) -> SummaryStats:
        """Descriptive statistics of the recorded values."""
        return SummaryStats(self.values)

    def rate(self) -> float:
        """Samples per time unit over the recorded span (0 if degenerate)."""
        if len(self.times) < 2:
            return 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return 0.0
        return (len(self.times) - 1) / span


class UtilizationTracker:
    """Integrates the busy time of an on/off resource."""

    __slots__ = ("env", "name", "_busy_since", "_busy_total", "_depth")

    def __init__(self, env: "Environment", name: str):
        self.env = env
        self.name = name
        self._busy_since: Optional[float] = None
        self._busy_total = 0.0
        self._depth = 0

    def begin(self) -> None:
        """Mark the resource busy (nestable)."""
        if self._depth == 0:
            # env._now instead of the .now property: begin/end run once per
            # charged CPU slot / transmitted frame, and the descriptor call
            # shows up at sweep scale.
            self._busy_since = self.env._now
        self._depth += 1

    def end(self) -> None:
        """Mark one nested busy section finished."""
        if self._depth == 0:
            raise ValueError(f"{self.name}: end() without begin()")
        self._depth -= 1
        if self._depth == 0 and self._busy_since is not None:
            self._busy_total += self.env._now - self._busy_since
            self._busy_since = None

    def busy_time(self) -> float:
        """Total busy time accumulated so far."""
        extra = 0.0
        if self._depth > 0 and self._busy_since is not None:
            extra = self.env.now - self._busy_since
        return self._busy_total + extra

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall-clock (simulated) time spent busy since ``since``."""
        span = self.env.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_time() / span)
