"""Codec tests: every message type roundtrips; hostile input is rejected."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bft.messages import (
    Checkpoint,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    Reply,
    Request,
    ViewChange,
    decode,
    encode,
)
from repro.errors import BftError


def req(i=0):
    return Request(client_id=f"c{i}", timestamp=10 + i, operation=b"PUT k=v")


SAMPLES = [
    req(),
    Reply(
        replica_id="r1", client_id="c0", timestamp=10, view=2, result=b"OK"
    ),
    PrePrepare(view=1, seq=7, digest=b"d" * 32, batch=(req(0), req(1)), replica_id="r0"),
    Prepare(view=1, seq=7, digest=b"d" * 32, replica_id="r2"),
    Commit(view=1, seq=7, digest=b"d" * 32, replica_id="r3"),
    Checkpoint(seq=64, state_digest=b"s" * 32, replica_id="r1"),
    ViewChange(
        new_view=2,
        stable_seq=64,
        prepared=((65, 1, b"d" * 32, (req(),)),),
        replica_id="r2",
    ),
    NewView(
        new_view=2,
        view_change_senders=("r0", "r2", "r3"),
        pre_prepares=(
            PrePrepare(view=2, seq=65, digest=b"d" * 32, batch=(req(),), replica_id="r2"),
        ),
        replica_id="r2",
    ),
]


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_roundtrip(message):
    assert decode(encode(message)) == message


def test_empty_input_rejected():
    with pytest.raises(BftError, match="empty"):
        decode(b"")


def test_unknown_type_rejected():
    with pytest.raises(BftError, match="unknown message type"):
        decode(b"\xff\x00\x00")


def test_truncated_input_rejected():
    wire = encode(req())
    with pytest.raises(BftError):
        decode(wire[:-3])


def test_trailing_garbage_rejected():
    wire = encode(req())
    with pytest.raises(BftError, match="trailing"):
        decode(wire + b"garbage")


def test_absurd_batch_size_rejected():
    import struct

    # Forge a PrePrepare header claiming a gigantic batch.
    wire = bytearray(encode(SAMPLES[2]))
    # view(8) + seq(8) + digest(4+32) after the type byte; batch count next.
    offset = 1 + 8 + 8 + 4 + 32
    wire[offset : offset + 4] = struct.pack(">I", 1 << 31)
    with pytest.raises(BftError):
        decode(bytes(wire))


def test_unencodable_object_rejected():
    with pytest.raises(BftError, match="cannot encode"):
        encode(object())


@given(
    client=st.text(min_size=1, max_size=20),
    timestamp=st.integers(min_value=0, max_value=2**63),
    operation=st.binary(max_size=5000),
)
def test_request_roundtrip_property(client, timestamp, operation):
    message = Request(client_id=client, timestamp=timestamp, operation=operation)
    assert decode(encode(message)) == message


@given(
    view=st.integers(min_value=0, max_value=2**32),
    seq=st.integers(min_value=0, max_value=2**32),
    digest=st.binary(min_size=0, max_size=64),
    replica=st.text(min_size=1, max_size=8),
)
def test_vote_roundtrip_property(view, seq, digest, replica):
    for cls in (Prepare, Commit):
        message = cls(view=view, seq=seq, digest=digest, replica_id=replica)
        assert decode(encode(message)) == message


@given(data=st.binary(max_size=200))
def test_decoder_never_crashes_unsafely(data):
    """Arbitrary bytes either decode or raise BftError — nothing else."""
    try:
        decode(data)
    except BftError:
        pass
