"""The calibrated testbed: every model constant in one place.

The paper's evaluation ran on two 4-core Xeon v2 machines with Mellanox
ConnectX-3 Pro (MT27520) RoCE NICs on a 10 Gbps full-duplex link under
OFED 4.0-2 (Section V).  This module builds the simulated twin of that
testbed and documents where each constant comes from.

Provenance of the constants
---------------------------

* **Link**: 10 Gbps, full duplex (stated).  Propagation 1.5 µs models a
  same-rack cable plus one switch hop.
* **CPU copy 0.45 ns/B** (~2.2 GB/s single-core effective): mid-range for
  Ivy-Bridge-class memcpy on uncached data; this is the paper's central
  villain ("more than 50 % of all CPU cycles are spent on intermediate
  data copying", Section I, citing Frey & Alonso).
* **Syscall 1.8 µs, context switch 2.5 µs, interrupt+softirq 1.2 µs,
  per-segment processing 0.9 µs**: classic Linux TCP figures of the
  2015-2018 era (pre-mitigation syscalls are cheaper, but the paper's
  Ubuntu 16.04 testbed postdates KPTI-less but includes full softirq
  accounting; values match Binkert et al.'s system-overhead analysis the
  paper cites).
* **Verbs costs** (post 0.25 µs, doorbell 0.1 µs, CQE 0.4 µs, WQE fetch
  0.3 µs, per-packet RNIC pipeline 0.05 µs): ConnectX-3 class figures
  from the RDMA tuning literature (Frey & Alonso; DiSNI/jVerbs papers).
* **MR registration 1.5 µs + 0.08 µs/page**: why RUBIN pre-registers
  pools instead of registering per message.
* **MAC**: HMAC-SHA256 at ~1.5 GB/s/core plus 0.4 µs fixed.

None of these claims to reproduce the authors' *absolute* numbers — the
goal (EXPERIMENTS.md) is that the relative shapes of Figures 3 and 4
hold: who wins, by roughly what factor, and where the crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import Cpu, CpuCosts, Fabric, TEN_GIGABIT
from repro.rdma import DeviceAttributes, RdmaDevice
from repro.sim import Environment
from repro.tcpstack import TcpConfig, TcpStack

__all__ = [
    "TESTBED_CPU_COSTS",
    "TESTBED_DEVICE_ATTRS",
    "TESTBED_TCP_CONFIG",
    "LINK_BANDWIDTH_BPS",
    "LINK_PROPAGATION",
    "Testbed",
    "build_testbed",
]

#: The testbed's CPU cost model (see module docstring for provenance).
TESTBED_CPU_COSTS = CpuCosts(
    copy_per_byte=0.8e-9,
    syscall=2.2e-6,
    context_switch=2.5e-6,
    interrupt=1.2e-6,
    per_segment=0.9e-6,
    post_wr=0.25e-6,
    doorbell=0.1e-6,
    cqe_poll=0.4e-6,
)

#: The MT27520's simulated attributes.
TESTBED_DEVICE_ATTRS = DeviceAttributes(
    mtu=4096,
    max_inline=256,
    max_qp_wr=4096,
    max_cq_entries=65536,
    max_post_batch=64,
    wqe_fetch=0.3e-6,
    packet_process=0.05e-6,
    mr_register_base=1.5e-6,
    mr_register_per_page=0.08e-6,
    page_size=4096,
)

#: Kernel TCP settings of the Ubuntu 16.04 testbed.  Buffer sizes model
#: Linux autotuning, which grows tcp_rmem/tcp_wmem to several megabytes
#: under pipelined bulk traffic (the Figure 4 workload keeps a 30-message
#: window of up to 100 KB messages in flight).
TESTBED_TCP_CONFIG = TcpConfig(
    mss=1460,
    send_buffer=4 * 1024 * 1024,
    recv_buffer=4 * 1024 * 1024,
    rto=5e-3,
    # The 10 Gbps / ~100 us testbed path has a bandwidth-delay product of
    # ~128 KB; 256 segments (~374 KB) keeps the pipe full without letting
    # go-back-N recovery degenerate into giant retransmission bursts.
    max_in_flight_segments=256,
)

LINK_BANDWIDTH_BPS = TEN_GIGABIT
LINK_PROPAGATION = 1.5e-6


@dataclass
class Testbed:
    """The two-machine testbed of the paper's Section V."""

    env: Environment
    fabric: Fabric

    @property
    def client(self):
        """The client machine."""
        return self.fabric.host("client")

    @property
    def server(self):
        """The server machine."""
        return self.fabric.host("server")


def build_testbed(cores: int = 4) -> Testbed:
    """Two 4-core machines, one 10 Gbps cable, both stacks installed."""
    env = Environment()
    fabric = Fabric(env)
    for name in ("client", "server"):
        fabric.add_host(name, cores=cores, cpu_costs=TESTBED_CPU_COSTS)
    fabric.connect(
        "client",
        "server",
        bandwidth_bps=LINK_BANDWIDTH_BPS,
        propagation_delay=LINK_PROPAGATION,
    )
    for name in ("client", "server"):
        host = fabric.host(name)
        TcpStack(host, config=TESTBED_TCP_CONFIG)
        RdmaDevice(host, attrs=TESTBED_DEVICE_ATTRS)
    return Testbed(env=env, fabric=fabric)


def testbed_registry(bed: Testbed):
    """A :class:`~repro.trace.MetricsRegistry` over the testbed's probes.

    Mirrors the host/link sections of ``BftCluster.metrics_registry()``
    so the echo figures can feed the same ``repro.obs`` sampler: CPU
    utilisation and NIC RNR counters per machine, utilisation and frame
    counters per link direction.
    """
    from repro.trace import MetricsRegistry

    registry = MetricsRegistry(name="testbed")
    for host in bed.fabric.hosts():
        registry.register(f"host.{host.name}.cpu", host.cpu.tracker)
        nic = getattr(host, "nic", None)
        if nic is not None:
            registry.register_many(
                f"host.{host.name}.nic",
                {
                    "rnr_naks": nic.rnr_naks,
                    "rnr_retries": nic.rnr_retries,
                    "rnr_exhausted": nic.rnr_exhausted,
                },
            )
    for pair in sorted(bed.fabric._cables):
        cable = bed.fabric._cables[pair]
        for link in (cable.forward, cable.backward):
            registry.register_many(
                f"link.{link.name}",
                {
                    "utilization": link.tracker,
                    "frames_sent": link.frames_sent,
                    "frames_dropped": link.frames_dropped,
                    "bytes_sent": link.bytes_sent,
                },
                if_exists="suffix",
            )
    return registry
