"""Shared-resource primitives built on the event kernel.

Two primitives cover everything the network and protocol layers need:

:class:`Store`
    An unbounded-or-bounded FIFO queue of Python objects with blocking
    ``put``/``get`` — the backbone of NIC queues, completion queues and
    mailbox-style inter-process communication.

:class:`Resource`
    A counted semaphore with FIFO fairness — used for CPU cores and DMA
    engines, where "holding" the resource for a simulated duration models
    the cost of an operation.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from repro.errors import SimulationError
from repro.sim.events import PENDING, Event, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = [
    "Store",
    "Resource",
    "StorePut",
    "StoreGet",
    "ResourceRequest",
    "TimedHold",
]


class StorePut(Event):
    """Event for a pending :meth:`Store.put`; triggers when accepted."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any):
        # Open-coded Event.__init__: Store puts/gets are allocated once per
        # queue hop, and the extra super() frame is measurable at sweep
        # scale.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.item = item


class StoreGet(Event):
    """Event for a pending :meth:`Store.get`; value is the item."""

    __slots__ = ("filter",)

    def __init__(
        self, env: "Environment", filter: Optional[Callable[[Any], bool]] = None
    ):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.filter = filter


class Store:
    """A FIFO queue of items with blocking put/get semantics.

    ``capacity`` bounds how many items the store holds; puts beyond the
    bound stay pending until a get frees space.  ``get`` optionally takes a
    filter predicate; the first *matching* item is removed (items before it
    stay queued), which the RDMA completion-queue model uses to poll for
    specific completion kinds in tests.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_getters(self) -> int:
        """Number of get() calls currently blocked."""
        return len(self._getters)

    @property
    def pending_putters(self) -> int:
        """Number of put() calls currently blocked."""
        return len(self._putters)

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the returned event triggers once it is stored."""
        event = StorePut(self.env, item)
        # Fast path: nobody waiting to get and room available — identical
        # succeed order to _dispatch (waiting putters imply no room, so the
        # condition also guarantees FIFO fairness among puts).  succeed()
        # is inlined: the event is fresh, so the already-triggered guard
        # cannot fire.
        if not self._getters and len(self.items) < self.capacity:
            self.items.append(item)
            event._value = None
            env = self.env
            env._eid += 1
            env._dq.append((env._now, 1, env._eid, event))
            return event
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the first (matching) item; event value is the item."""
        event = StoreGet(self.env, filter)
        # Fast path: unfiltered get with items on hand and no getter queued
        # ahead of us.  Succeed order matches _dispatch: the getter fires
        # first, then any putter admitted into the freed slot.  succeed()
        # is inlined (fresh event, guard cannot fire).
        if filter is None and not self._getters and self.items:
            event._value = self.items.popleft()
            env = self.env
            env._eid += 1
            env._dq.append((env._now, 1, env._eid, event))
            if self._putters:
                self._dispatch()
            return event
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Any:
        """Non-blocking get: pop the head item or return None."""
        if not self.items:
            return None
        item = self.items.popleft()
        if self._putters or self._getters:
            self._dispatch()
        return item

    def _dispatch(self) -> None:
        """Match pending puts to capacity and pending gets to items."""
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve getters in FIFO order; a getter whose filter matches
            # nothing stays at the front (strict FIFO, like simpy's
            # FilterStore would *not* do — here blocked filters do not let
            # later getters overtake, keeping completion polling fair).
            while self._getters and self.items:
                get = self._getters[0]
                if get.filter is None:
                    item = self.items.popleft()
                else:
                    for index, candidate in enumerate(self.items):
                        if get.filter(candidate):
                            del self.items[index]
                            item = candidate
                            break
                    else:
                        break
                self._getters.popleft()
                get.succeed(item)
                progress = True


class ResourceRequest(Event):
    """Event for a pending :meth:`Resource.request`."""

    __slots__ = ("resource", "released")

    def __init__(self, env: "Environment", resource: "Resource"):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        self.resource.release(self)

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """A counted, FIFO-fair semaphore over simulated time.

    Typical usage inside a process::

        req = cpu.request()
        yield req
        yield env.timeout(cost_seconds)
        req.release()

    or with the context-manager form ``with cpu.request() as req: yield req``.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._users: list[ResourceRequest] = []
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting for a slot."""
        return len(self._waiters)

    def request(self) -> ResourceRequest:
        """Ask for a slot; the returned event triggers when granted."""
        event = ResourceRequest(self.env, self)
        if len(self._users) < self.capacity:
            self._users.append(event)
            # Inlined succeed() (fresh event, guard cannot fire).
            event._value = None
            env = self.env
            env._eid += 1
            env._dq.append((env._now, 1, env._eid, event))
        else:
            self._waiters.append(event)
        return event

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted slot (idempotent)."""
        if request.released:
            return
        request.released = True
        if request in self._users:
            self._users.remove(request)
        else:
            # Never granted: cancel the waiting request.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError(
                    "release() of a request unknown to this resource"
                ) from None
            return
        while self._waiters and len(self._users) < self.capacity:
            waiter = self._waiters.popleft()
            self._users.append(waiter)
            waiter.succeed()

    def run_task(self, duration: float) -> "Event":
        """Convenience: hold one slot for ``duration`` and finish.

        Returns an event that fires once the slot has been held for the
        duration.  This is the standard way the network stacks charge CPU
        time.
        """
        return TimedHold(self, duration)


class TimedHold(Event):
    """Request a slot, hold it for a duration, release it — as one event.

    A hand-rolled replacement for the ubiquitous request/timeout/release
    generator process.  It pushes exactly the same agenda entries in the
    same order the process version did (URGENT bootstrap, grant, timeout,
    completion), so schedules are bit-identical, but drives them with
    bound-method callbacks instead of a generator — no process object, no
    generator frame, no ``send`` dispatch on the hottest path in the
    simulator (every charged CPU slot and DMA transfer is one of these).

    ``tracker`` (optional) has ``begin()``/``end()`` called around the
    hold; ``span`` (optional) has ``end()`` called after release.
    """

    __slots__ = ("_resource", "_duration", "_request", "_tracker", "_span")

    def __init__(
        self,
        resource: Resource,
        duration: float,
        tracker: Any = None,
        span: Any = None,
    ):
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._resource = resource
        self._duration = duration
        self._request: Optional[ResourceRequest] = None
        self._tracker = tracker
        self._span = span
        # Start on the next kernel step at URGENT priority — exactly the
        # Process bootstrap this replaces.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._acquire)
        bootstrap._ok = True
        bootstrap._value = None
        env._eid += 1
        env._far.push((env._now, 0, env._eid, bootstrap))

    def _acquire(self, _event: Event) -> None:
        # Inlined Resource.request() (same grant push, same FIFO order).
        resource = self._resource
        request = ResourceRequest(resource.env, resource)
        self._request = request
        users = resource._users
        if len(users) < resource.capacity:
            users.append(request)
            request._value = None
            env = self.env
            env._eid += 1
            env._dq.append((env._now, 1, env._eid, request))
        else:
            resource._waiters.append(request)
        request.callbacks.append(self._hold)

    def _hold(self, _event: Event) -> None:
        tracker = self._tracker
        if tracker is not None:
            tracker.begin()
        timeout = Timeout(self.env, self._duration)
        timeout.callbacks.append(self._finish)

    def _finish(self, _event: Event) -> None:
        tracker = self._tracker
        if tracker is not None:
            tracker.end()
        # Inlined request.release() fast path: the grant fired (we held the
        # slot), so the request is in _users and cannot be double-released.
        request = self._request
        request.released = True
        resource = request.resource
        users = resource._users
        users.remove(request)
        waiters = resource._waiters
        if waiters:
            capacity = resource.capacity
            while waiters and len(users) < capacity:
                waiter = waiters.popleft()
                users.append(waiter)
                waiter.succeed()
        span = self._span
        if span is not None:
            span.end()
        # Inlined Event.succeed (the completion was already validated
        # pending by construction).
        self._ok = True
        self._value = None
        env = self.env
        env._eid += 1
        env._dq.append((env._now, 1, env._eid, self))
