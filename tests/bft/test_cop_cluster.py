"""Multi-group COP clusters end-to-end: parallel ordering, one order."""

import pytest

from repro.bft import (
    BftCluster,
    BftConfig,
    CopGroupEquivocator,
    CopReplica,
)
from repro.rubin import RubinConfig


def make_cop_cluster(group_count=4, transport="rubin", **kwargs):
    defaults = dict(
        config=BftConfig(
            group_count=group_count,
            view_change_timeout=80e-3,
            batch_delay=0.0,
            batch_size=1,
            checkpoint_interval=4,
            log_window=16,
        ),
        num_clients=1,
    )
    defaults.update(kwargs)
    cluster = BftCluster(transport=transport, **defaults)
    cluster.start()
    return cluster


class TestMultiGroupOrdering:
    def test_requests_execute_in_one_merged_order(self):
        cluster = make_cop_cluster()
        for i in range(12):
            assert (
                cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"
            )
        cluster.run_for(50e-3)
        digests = cluster.state_digests()
        assert len(set(digests.values())) == 1, "replica states diverged"
        merged = cluster.merged_positions()
        assert len(set(merged.values())) == 1, merged
        assert cluster.audit.violations == []

    def test_work_spreads_across_groups(self):
        cluster = make_cop_cluster()
        for i in range(16):
            cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode())
        cluster.run_for(50e-3)
        r0 = cluster.replica("r0")
        per_group = [p.executed_seq for p in r0.group_pipelines()]
        assert len(per_group) == 4
        # The hash partitioner spreads 16 requests over all 4 groups.
        assert sum(1 for seq in per_group if seq > 0) == 4

    def test_client_affinity_partitioner(self):
        cluster = make_cop_cluster(
            config=BftConfig(
                group_count=4,
                partitioner="client",
                view_change_timeout=80e-3,
                batch_delay=0.0,
                batch_size=1,
                checkpoint_interval=4,
                log_window=16,
            )
        )
        for i in range(8):
            cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode())
        cluster.run_for(50e-3)
        r0 = cluster.replica("r0")
        # One client pins to one group: every reply the client got was
        # served out of a single pipeline's cache (other groups only
        # ordered empty merge fillers).
        served = [
            p.group for p in r0.group_pipelines() if p._reply_cache
        ]
        assert len(served) == 1
        assert len(set(cluster.state_digests().values())) == 1

    def test_group_metrics_registered(self):
        cluster = make_cop_cluster()
        for i in range(8):
            cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode())
        cluster.run_for(50e-3)
        snap = cluster.metrics_registry().snapshot()
        for g in range(4):
            assert f"bft.group.{g}.committed" in snap
            assert f"bft.group.{g}.view_changes" in snap
            assert f"bft.group.{g}.executed_seq" in snap
        assert sum(snap[f"bft.group.{g}.committed"] for g in range(4)) > 0
        assert max(snap[f"bft.group.{g}.executed_seq"] for g in range(4)) > 0


class TestMultiGroupRecovery:
    def test_crashed_replica_rejoins_and_converges(self):
        cluster = make_cop_cluster(
            rubin_config=RubinConfig(retry_timeout=1e-3, retry_count=3),
            faulty_fabric=True,
        )
        for i in range(6):
            assert (
                cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"
            )
        cluster.crash_replica("r2")
        cluster.run_for(30e-3)
        for i in range(6, 12):
            assert (
                cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"
            )
        cluster.restart_replica("r2")
        cluster.run_for(600e-3)
        assert cluster.invoke_and_wait(b"PUT after=rejoin") == b"OK"
        cluster.run_for(300e-3)
        merged = cluster.merged_positions()
        assert len(set(merged.values())) == 1, merged
        assert len(set(cluster.state_digests().values())) == 1
        assert cluster.audit.violations == []
        # The laggard actually went through recovery, not just luck.
        assert cluster.replica("r2").state_transfers_completed >= 1


class TestByzantineGroupMember:
    def test_group_equivocator_cannot_split_merged_state(self):
        cluster = make_cop_cluster(
            replica_classes={"r1": CopGroupEquivocator},
        )
        cluster.invoke_and_wait(b"PUT honest=1")
        cluster.replica("r1").arm_group_equivocation()
        for i in range(12):
            cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode())
        cluster.run_for(80e-3)
        honest = [rid for rid in cluster.replica_ids if rid != "r1"]
        digests = {cluster.state_digests()[rid] for rid in honest}
        assert len(digests) == 1, "honest replicas diverged"
        apps = [cluster.apps[rid] for rid in honest]
        for i in range(12):
            values = {app.get(f"k{i}") for app in apps}
            values.discard(None)
            assert len(values) <= 1
            assert not any(
                (app.get(f"k{i}") or "").startswith("FORGED")
                for app in apps
            )

    def test_group_tagged_equivocation_detected(self):
        cluster = make_cop_cluster(
            replica_classes={"r1": CopGroupEquivocator},
        )
        cluster.replica("r1").arm_group_equivocation(group=1)
        # Keep submitting until some request routes through group 1's
        # pipeline while r1 leads it in view 0 (r1 leads group 1:
        # leader_of(0) = all_ids[(0 + 1) % 4]).
        for i in range(20):
            cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode())
        cluster.run_for(80e-3)
        rules = {v.rule for v in cluster.audit.violations}
        assert "bft.pre-prepare-equivocation" in rules
        tagged = [
            v
            for v in cluster.audit.violations
            if v.rule == "bft.pre-prepare-equivocation"
        ]
        assert any(dict(v.detail).get("group") == 1 for v in tagged)
