"""End-to-end BFT agreement over RUBIN vs NIO.

The paper's future work ("extensively evaluate the fully replicated
system"): a 4-replica PBFT group ordering client requests over each
transport.  The claim under test is directional — RDMA's lower message
latency must shorten the three-phase agreement path.
"""

from repro.bench import percent_lower
from repro.bft import BftCluster, BftConfig

REQUESTS = 30


def run_cluster(transport, payload=256):
    cluster = BftCluster(
        transport=transport,
        config=BftConfig(view_change_timeout=100e-3, batch_delay=0.0,
                         batch_size=1),
    )
    cluster.start()
    latencies = []

    def workload(env):
        client = cluster.client()
        operation = b"PUT k=" + b"v" * payload
        for _ in range(REQUESTS):
            t0 = env.now
            yield client.invoke(operation)
            latencies.append((env.now - t0) * 1e6)

    p = cluster.env.process(workload(cluster.env))
    cluster.env.run(until=p)
    return sum(latencies) / len(latencies)


def test_bft_request_latency(benchmark):
    def sweep():
        return run_cluster("nio"), run_cluster("rubin")

    nio_us, rubin_us = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gain = percent_lower(rubin_us, nio_us)
    print(
        f"\nPBFT request latency (n=4, f=1): NIO {nio_us:.0f}us, "
        f"RUBIN {rubin_us:.0f}us ({gain:.1f}% lower)"
    )
    assert rubin_us < nio_us, "RDMA must shorten the agreement path"
    benchmark.extra_info["nio_us"] = nio_us
    benchmark.extra_info["rubin_us"] = rubin_us
    benchmark.extra_info["gain_percent"] = gain


def test_bft_throughput_with_batching(benchmark):
    """Batched ordering throughput over both transports.

    Uses 8 KB operations so the workload is network-bound (with tiny
    operations the protocol handlers dominate and the transports tie —
    consistent with the paper's focus on message-exchange cost)."""

    def run_throughput(transport):
        cluster = BftCluster(
            transport=transport,
            config=BftConfig(view_change_timeout=100e-3, batch_size=10,
                             batch_delay=50e-6),
        )
        cluster.start()
        total = 60

        def workload(env):
            client = cluster.client()
            start = env.now
            pending = [
                client.invoke(b"PUT x=" + b"y" * 8192) for _ in range(total)
            ]
            yield env.all_of(pending)
            return total / (env.now - start)

        p = cluster.env.process(workload(cluster.env))
        return cluster.env.run(until=p)

    def sweep():
        return run_throughput("nio"), run_throughput("rubin")

    nio_rps, rubin_rps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        f"\nPBFT batched throughput: NIO {nio_rps:.0f} req/s, "
        f"RUBIN {rubin_rps:.0f} req/s"
    )
    assert rubin_rps > nio_rps
    benchmark.extra_info["nio_rps"] = nio_rps
    benchmark.extra_info["rubin_rps"] = rubin_rps
