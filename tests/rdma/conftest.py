"""Shared RDMA test rig: two hosts with RNICs and a connected QP pair."""

import pytest

from repro.net import Fabric
from repro.rdma import (
    Access,
    QpCapabilities,
    RdmaDevice,
    RecvWorkRequest,
    SendWorkRequest,
    Sge,
)
from repro.rdma.verbs import Opcode
from repro.sim import Environment


class RdmaPair:
    """Two cabled hosts with RDMA devices and one connected QP pair."""

    def __init__(self, caps=None, drop_fn=None, attrs=None):
        self.env = Environment()
        self.fabric = Fabric(self.env)
        self.fabric.add_host("left")
        self.fabric.add_host("right")
        self.fabric.connect("left", "right", drop_fn=drop_fn)
        self.left = RdmaDevice(self.fabric.host("left"), attrs=attrs)
        self.right = RdmaDevice(self.fabric.host("right"), attrs=attrs)

        self.left_pd = self.left.alloc_pd()
        self.right_pd = self.right.alloc_pd()
        self.left_send_cq = self.left.create_cq(name="left.send")
        self.left_recv_cq = self.left.create_cq(name="left.recv")
        self.right_send_cq = self.right.create_cq(name="right.send")
        self.right_recv_cq = self.right.create_cq(name="right.recv")
        self.left_qp = self.left.create_qp(
            self.left_pd, self.left_send_cq, self.left_recv_cq, caps=caps
        )
        self.right_qp = self.right.create_qp(
            self.right_pd, self.right_send_cq, self.right_recv_cq, caps=caps
        )
        self.left_qp.connect("right", self.right_qp.qp_num)
        self.right_qp.connect("left", self.left_qp.qp_num)

    def register(self, side, size, access=Access.LOCAL_WRITE, fill=b""):
        """Register a buffer of ``size`` on "left" or "right"."""
        buffer = bytearray(size)
        if fill:
            buffer[: len(fill)] = fill
        device = self.left if side == "left" else self.right
        pd = self.left_pd if side == "left" else self.right_pd
        return device.reg_mr(pd, buffer, access)

    def run_for(self, seconds):
        """Advance the simulation by ``seconds``."""
        self.env.run(until=self.env.now + seconds)

    def poll_until(self, cq, count=1, deadline=0.5):
        """Run until ``cq`` yields ``count`` completions; returns them."""
        out = []
        end = self.env.now + deadline
        while len(out) < count and self.env.now < end:
            out.extend(cq.poll(max_entries=count - len(out)))
            if len(out) < count:
                if self.env.peek() > end:
                    break
                self.env.step()
        return out


def send_wr(wr_id, mr, length=None, offset=0, signaled=True, inline=None):
    """Convenience SEND work-request builder."""
    if inline is not None:
        return SendWorkRequest(
            wr_id=wr_id, opcode=Opcode.SEND, inline_data=inline, signaled=signaled
        )
    return SendWorkRequest(
        wr_id=wr_id,
        opcode=Opcode.SEND,
        sge=Sge(mr, offset, length),
        signaled=signaled,
    )


def recv_wr(wr_id, mr, length=None, offset=0):
    """Convenience RECV work-request builder."""
    return RecvWorkRequest(wr_id=wr_id, sge=Sge(mr, offset, length))


@pytest.fixture
def rig():
    return RdmaPair()


@pytest.fixture
def small_qp_rig():
    return RdmaPair(caps=QpCapabilities(max_send_wr=4, max_recv_wr=4))
