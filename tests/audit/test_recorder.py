"""Flight recorder: bounded ring, post-mortem documents, schema checks."""

import json

import pytest

from repro.audit import (
    AuditError,
    FlightEvent,
    FlightRecorder,
    POSTMORTEM_SCHEMA,
    validate_postmortem,
    write_postmortem,
)
from repro.audit.recorder import postmortem_document


class TestFlightRecorder:
    def test_records_in_order(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(0.1, "bft", "execute", "r0", seq=1)
        recorder.record(0.2, "rdma", "qp-transition", "r1")
        events = recorder.events()
        assert [e.event for e in events] == ["execute", "qp-transition"]
        assert events[0].fields == {"seq": 1}
        assert events[0].index == 0 and events[1].index == 1

    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(float(i), "bft", "execute", "r0", seq=i)
        events = recorder.events()
        assert len(events) == 4
        assert [e.fields["seq"] for e in events] == [6, 7, 8, 9]
        assert recorder.total == 10
        assert recorder.dropped == 6

    def test_layer_filter_and_counts(self):
        recorder = FlightRecorder(capacity=16)
        recorder.record(0.0, "bft", "execute", "r0")
        recorder.record(0.0, "rdma", "qp-transition", "r0")
        recorder.record(0.0, "bft", "view-adopted", "r1")
        assert len(recorder.events(layer="bft")) == 2
        assert recorder.layer_counts() == {"bft": 2, "rdma": 1}

    def test_event_to_dict_jsonable(self):
        event = FlightEvent(0, 0.5, "bft", "execute", "r0", {"digest": b"\x01" * 40})
        rendered = event.to_dict()
        json.dumps(rendered)  # must not raise
        assert rendered["fields"]["digest"] == ("01" * 16)


class TestPostmortem:
    def make_document(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(1.0, "bft", "execute", "r0", seq=3)
        return postmortem_document(
            recorder, reason="test", time=2.0, audit_name="audit"
        )

    def test_document_shape_validates(self):
        document = self.make_document()
        assert document["schema"] == POSTMORTEM_SCHEMA
        validate_postmortem(document)  # must not raise
        json.dumps(document)

    def test_validation_rejects_bad_documents(self):
        document = self.make_document()
        document["events"] = "nope"
        with pytest.raises(AuditError):
            validate_postmortem(document)

    def test_validation_rejects_missing_field(self):
        document = self.make_document()
        del document["reason"]
        with pytest.raises(AuditError):
            validate_postmortem(document)

    def test_write_postmortem_round_trips(self, tmp_path):
        document = self.make_document()
        path = str(tmp_path / "dumps" / "pm.json")
        written = write_postmortem(document, path)
        with open(written, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded == json.loads(json.dumps(document))
        validate_postmortem(loaded)
