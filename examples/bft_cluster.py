#!/usr/bin/env python3
"""A 4-replica PBFT cluster over RUBIN, surviving a Byzantine leader.

Demonstrates the paper's target system: Byzantine agreement where the
replicas exchange their protocol messages over RDMA.  The demo:

1. orders client requests through the happy path;
2. crashes the leader and shows the view change recovering liveness;
3. verifies every replica executed the identical sequence.

Run:  python examples/bft_cluster.py [--transport rubin|nio]
"""

import argparse

from repro.bft import BftCluster, BftConfig, SilentReplica


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transport", choices=("rubin", "nio"), default="rubin")
    args = parser.parse_args()

    cluster = BftCluster(
        transport=args.transport,
        config=BftConfig(view_change_timeout=30e-3, batch_delay=50e-6),
        replica_classes={"r0": SilentReplica},  # r0 will crash later
    )
    cluster.start()
    env = cluster.env
    print(f"cluster up: n=4, f=1, transport={args.transport}")

    # -- happy path ---------------------------------------------------------
    for key, value in (("alice", "100"), ("bob", "250"), ("carol", "75")):
        t0 = env.now
        result = cluster.invoke_and_wait(f"PUT {key}={value}".encode())
        print(
            f"  t={env.now * 1e3:7.2f}ms  PUT {key}={value} -> "
            f"{result.decode()} ({(env.now - t0) * 1e6:.0f}us)"
        )

    balance = cluster.invoke_and_wait(b"GET bob")
    print(f"  GET bob -> {balance.decode()}")

    # -- leader failure -------------------------------------------------------
    print("\ncrashing the leader (r0 goes silent)...")
    cluster.replica("r0").go_silent()
    t0 = env.now
    result = cluster.invoke_and_wait(b"PUT dave=999")
    print(
        f"  PUT dave=999 -> {result.decode()} after "
        f"{(env.now - t0) * 1e3:.1f}ms (includes the view change)"
    )
    survivors = [cluster.replica(r) for r in ("r1", "r2", "r3")]
    views = {r.replica_id: r.view for r in survivors}
    print(f"  survivor views: {views} (leader is now r{max(views.values()) % 4})")

    # -- consistency check -------------------------------------------------------
    cluster.run_for(20e-3)
    digests = {
        rid: cluster.apps[rid].digest().hex()[:12]
        for rid in ("r1", "r2", "r3")
    }
    print(f"\nstate digests (survivors): {digests}")
    assert len(set(digests.values())) == 1, "replicas diverged!"
    print("all honest replicas executed the identical request sequence ✓")


if __name__ == "__main__":
    main()
