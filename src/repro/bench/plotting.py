"""ASCII rendering of figure tables.

The paper's figures are log-scale line charts; this module renders a
:class:`~repro.bench.results.FigureTable` as a terminal chart so the
reproduction's shape can be eyeballed next to the paper without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import List

from repro.bench.results import FigureTable
from repro.errors import ReproError

__all__ = ["ascii_chart"]

#: Glyph per series, in insertion order.
_GLYPHS = "ox*#@+%"


def ascii_chart(
    table: FigureTable,
    width: int = 64,
    height: int = 18,
    log_y: bool = True,
) -> str:
    """Render ``table`` as an ASCII chart (payload on x, metric on y)."""
    if not table.payloads or not table.series:
        raise ReproError("nothing to plot")
    values = [
        v
        for series in table.series.values()
        for v in series.values()
        if v is not None
    ]
    lo, hi = min(values), max(values)
    if log_y and lo <= 0:
        log_y = False
    if log_y:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
    else:
        lo_t, hi_t = lo, hi
    if hi_t == lo_t:
        hi_t = lo_t + 1.0

    def y_of(value: float) -> int:
        t = math.log10(value) if log_y else value
        frac = (t - lo_t) / (hi_t - lo_t)
        return min(height - 1, max(0, round(frac * (height - 1))))

    min_p, max_p = table.payloads[0], table.payloads[-1]
    lp_min, lp_max = math.log10(min_p), math.log10(max(max_p, min_p + 1))

    def x_of(payload: int) -> int:
        frac = (math.log10(payload) - lp_min) / (lp_max - lp_min or 1.0)
        return min(width - 1, max(0, round(frac * (width - 1))))

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, series) in enumerate(table.series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for payload in table.payloads:
            value = series.get(payload)
            if value is None:
                continue
            grid[height - 1 - y_of(value)][x_of(payload)] = glyph

    lines = [f"{table.title} — {table.metric} [{table.unit}]"
             f"{' (log y)' if log_y else ''}"]
    top_label = f"{hi:.3g}"
    bottom_label = f"{lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        label = ""
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    left = f"{min_p // 1024}KB" if min_p >= 1024 else f"{min_p}B"
    right = f"{max_p // 1024}KB" if max_p >= 1024 else f"{max_p}B"
    lines.append(
        " " * pad + "  " + left + " " * (width - len(left) - len(right)) + right
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}"
        for i, name in enumerate(table.series)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
