"""repro.trace — end-to-end tracing and telemetry for the simulation.

Three pieces:

* :mod:`repro.trace.core` — :class:`Tracer`/:class:`Span`/
  :class:`SpanContext` driven by the simulation clock, with a
  zero-overhead :data:`NULL_TRACER` default;
* :mod:`repro.trace.export` / :mod:`repro.trace.breakdown` — Chrome
  trace-event JSON export and the per-layer latency-breakdown report;
* :mod:`repro.trace.metrics` — :class:`MetricsRegistry`, hierarchical
  names and one-call snapshots over the existing monitor probes.

Enable tracing by installing a tracer on the environment before building
the stacks (``BftCluster(tracer=...)`` does this for you)::

    from repro.trace import Tracer, install_tracer, latency_breakdown

    tracer = install_tracer(env, Tracer(env))
    ...run a workload...
    print(latency_breakdown(tracer).render())
"""

from repro.trace.breakdown import (
    BreakdownReport,
    TraceBreakdown,
    latency_breakdown,
    span_row,
)
from repro.trace.core import (
    NULL_TRACER,
    NULL_SPAN,
    NullTracer,
    Span,
    SpanContext,
    TraceError,
    Tracer,
    get_tracer,
    install_tracer,
)
from repro.trace.export import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.trace.metrics import MetricsRegistry

__all__ = [
    "TraceError",
    "SpanContext",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "get_tracer",
    "install_tracer",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "TraceBreakdown",
    "BreakdownReport",
    "latency_breakdown",
    "span_row",
    "MetricsRegistry",
]
