"""Hosts: a CPU, a NIC, and slots for protocol stacks.

A host is deliberately thin — it is the composition point where the fabric
(wiring), the CPU model (costs) and the stacks (TCP, RDMA) meet.  Stacks
register themselves under a name via :meth:`install` so application code can
write ``host.stack("tcp")`` without import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import NetworkError
from repro.net.cpu import Cpu, CpuCosts
from repro.net.nic import Nic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment

__all__ = ["Host"]


class Host:
    """A machine in the simulated testbed."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        cores: int = 4,
        cpu_costs: Optional[CpuCosts] = None,
        dma_engines: int = 2,
        dma_bandwidth_bps: float = 64e9,
    ):
        if not name:
            raise NetworkError("host needs a non-empty name")
        self.env = env
        self.name = name
        #: Shard this host lives on under :mod:`repro.sim.parallel`
        #: (assigned by the shard fabric; ``None`` for sequential runs).
        self.shard: Optional[int] = None
        self.cpu = Cpu(env, cores=cores, costs=cpu_costs, name=f"{name}.cpu")
        self.nic = Nic(
            env,
            self,
            dma_engines=dma_engines,
            dma_bandwidth_bps=dma_bandwidth_bps,
        )
        self._stacks: Dict[str, Any] = {}

    def install(self, kind: str, stack: Any) -> None:
        """Register a protocol stack (e.g. ``"tcp"``, ``"rdma"``)."""
        if kind in self._stacks:
            raise NetworkError(f"{self.name}: stack {kind!r} already installed")
        self._stacks[kind] = stack

    def stack(self, kind: str) -> Any:
        """Look up an installed stack by kind."""
        try:
            return self._stacks[kind]
        except KeyError:
            raise NetworkError(
                f"{self.name}: no {kind!r} stack installed "
                f"(have: {sorted(self._stacks)})"
            ) from None

    def has_stack(self, kind: str) -> bool:
        """Whether a stack of ``kind`` is installed."""
        return kind in self._stacks

    def __repr__(self) -> str:
        return f"<Host {self.name!r} stacks={sorted(self._stacks)}>"
