"""COP degenerate-case fingerprints: ``group_count=1`` moves no event.

The consensus-oriented parallelization subsystem (``repro.bft.cop``)
promises an *exact* degenerate case: with one consensus group the
``CopReplica``/``CopClient`` classes must schedule the very same agenda
entries, in the same order, as the sequential ``Replica``/``BftClient``
they wrap.  These tests replay the pinned schedule fingerprints from
``test_fastpath_determinism`` through the COP classes — a digest
mismatch means some COP override created, delayed or reordered an event
at G=1.

A fifth digest pins the G=4 multi-group chaos schedule itself, so COP
changes that reshuffle the parallel pipelines are caught the same way.
"""

import hashlib

from repro.bench.echo import run_echo
from repro.bench.overload import run_overload
from repro.bench.selector_echo import reptor_echo
from repro.bft import BftCluster, BftConfig, CopClient, CopReplica
from repro.rubin import RubinConfig

from tests.sim.test_fastpath_determinism import (
    CHAOS_DIGEST,
    FIG3_POINT_DIGEST,
    FIG4_POINT_DIGEST,
    OVERLOAD_DIGEST,
    _digest,
    _echo_fingerprint,
)

# The G=4 variant of the chaos run (crash + rejoin of r2 across four
# ordering groups on a faulty fabric), recorded when the COP subsystem
# landed.  Pins the group mux, the round-robin merge, merge-stall
# fillers and the coordinated multi-group state transfer.
COP_CHAOS_G4_DIGEST = (
    "4517060585bc6a014a6686bb3613317c398b984436177de806c8a5c981dd1f5e"
)


def _chaos_run(group_count: int, settle_s: float, tail_s: float) -> str:
    cluster = BftCluster(
        transport="rubin",
        config=BftConfig(
            group_count=group_count,
            view_change_timeout=80e-3,
            batch_delay=0.0,
            batch_size=1,
            checkpoint_interval=4,
            log_window=16,
        ),
        rubin_config=RubinConfig(retry_timeout=1e-3, retry_count=3),
        faulty_fabric=True,
        default_replica_class=CopReplica,
        client_class=CopClient,
    )
    cluster.start()
    times = []
    for i in range(6):
        assert cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"
        times.append(round(cluster.env.now, 12))
    cluster.crash_replica("r2")
    cluster.run_for(30e-3)
    for i in range(6, 12):
        assert cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode()) == b"OK"
        times.append(round(cluster.env.now, 12))
    cluster.restart_replica("r2")
    cluster.run_for(settle_s)
    cluster.invoke_and_wait(b"PUT after=rejoin")
    times.append(round(cluster.env.now, 12))
    cluster.run_for(tail_s)
    if group_count == 1:
        positions = sorted(cluster.executed_sequences().items())
    else:
        positions = sorted(cluster.merged_positions().items())
    return _digest(
        (
            times,
            positions,
            sorted((k, v.hex()) for k, v in cluster.state_digests().items()),
        )
    )


def test_fig3_point_unchanged_with_cop_loaded():
    """The Fig-3 echo schedule is untouched by the COP subsystem."""
    result = run_echo("rdma_channel", 10 * 1024, 20)
    assert _echo_fingerprint(result) == FIG3_POINT_DIGEST


def test_fig4_point_unchanged_with_cop_loaded():
    """The Fig-4 selector-echo schedule is untouched by the COP subsystem."""
    result = reptor_echo("rubin", 20 * 1024, 30)
    assert _echo_fingerprint(result) == FIG4_POINT_DIGEST


def test_chaos_schedule_bit_identical_at_group_count_one():
    """CopReplica/CopClient at G=1 replay the pinned sequential chaos run."""
    assert _chaos_run(1, 400e-3, 100e-3) == CHAOS_DIGEST


def test_overload_schedule_bit_identical_at_group_count_one():
    """The overload scenario is bit-identical under the COP classes."""
    record = run_overload(
        default_replica_class=CopReplica, client_class=CopClient
    )
    fingerprint = _digest(
        (
            sorted(
                (k, round(v, 6)) for k, v in record["latency_us"].items()
            ),
            round(record["duration_s"], 12),
            record["shed_total"],
            record["busy_backoffs"],
            record["retransmissions"],
        )
    )
    assert fingerprint == OVERLOAD_DIGEST


def test_chaos_schedule_pinned_at_group_count_four():
    """The G=4 multi-group chaos run replays its own pinned schedule."""
    assert _chaos_run(4, 600e-3, 300e-3) == COP_CHAOS_G4_DIGEST
