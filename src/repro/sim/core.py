"""The discrete-event kernel: agenda, clock, and run loop.

:class:`Environment` owns simulated time.  Everything else in this library —
links, NICs, TCP stacks, RDMA devices, BFT replicas — is a set of processes
and events scheduled on one environment.

Determinism
-----------

The agenda orders events by ``(time, priority, sequence)``.  The
monotonically increasing sequence number makes event processing order fully
deterministic for identical inputs, which the benchmark harness relies on:
every figure in EXPERIMENTS.md reproduces bit-for-bit.

Agenda structure
----------------

Physically the agenda is split into two lanes that are merged by tuple
comparison at dispatch:

* a **zero-delay lane** (a deque) receiving every ``(now, NORMAL)`` push —
  event triggers, store grants, process completions.  The clock never moves
  backwards and sequence numbers only grow, so entries are appended in
  exactly the order they would leave a heap: FIFO *is* sorted order.
* a **far lane** for everything else (timeouts, urgent bootstraps),
  implemented either as a binary heap or as a
  :class:`~repro.sim.calqueue.CalendarQueue`, selected by
  ``Environment(scheduler=...)``.

Because the merge compares full ``(time, priority, sequence)`` keys, the
dispatch order is identical no matter which lane an entry landed in — the
split is purely a performance device, and both schedulers reproduce the
pinned schedule fingerprints bit-for-bit.
"""

from __future__ import annotations

import gc as _gc
import heapq
import os as _os
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.calqueue import CalendarQueue
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Environment", "Infinity", "TieBreakPolicy", "DEFAULT_SCHEDULER", "SCHEDULERS"]

#: Convenience alias used for "run forever" bounds.
Infinity = float("inf")

#: Recognized values for ``Environment(scheduler=...)``.
SCHEDULERS = ("heap", "calendar")

#: Scheduler used when neither the constructor argument nor the
#: ``REPRO_SCHEDULER`` environment variable says otherwise.  ``calendar``
#: is the default: it reproduces every pinned schedule fingerprint
#: bit-for-bit and wins the wallclock matrix (BENCH_wallclock.json).
DEFAULT_SCHEDULER = "calendar"


class TieBreakPolicy:
    """Chooses which of several same-instant agenda entries runs next.

    The kernel orders its agenda by ``(time, priority, sequence)``; the
    sequence number is a pure tie-break and any permutation of entries
    that share ``(time, priority)`` is a legal schedule.  Installing a
    policy via :meth:`Environment.set_tiebreak` exposes exactly those
    choice points: whenever two or more entries are tied on
    ``(time, priority)``, the kernel collects them in sequence order and
    asks the policy which one to dispatch.

    ``choose`` receives the current time and the tied entries (each a
    ``(time, priority, sequence, event)`` tuple, sequence-ordered) and
    returns the index of the entry to dispatch; the rest are pushed back
    with their original sequence numbers, so index ``0`` everywhere
    reproduces the kernel's native order bit-for-bit.  Out-of-range
    indices fall back to ``0``.

    With no policy installed the kernel never materializes ready sets
    and runs the original fast loop untouched.
    """

    def choose(self, now: float, entries: list) -> int:
        return 0


class _HeapLanes:
    """Lane stand-in that routes every push into one binary heap.

    Used in two situations: as both lane slots of a
    ``scheduler="heap"`` environment (the legacy single-heap agenda the
    calendar scheduler replaces), and while a :class:`TieBreakPolicy` is
    installed — the policy slow path needs every pending entry in one
    structure so it can materialize equal-``(time, priority)`` ready
    sets.  Either way, the inlined push sites (which call ``_dq.append``
    / ``_far.push``) land straight in the heap that the legacy run loop
    and :meth:`Environment._pop_choice` consume.
    """

    __slots__ = ("_queue",)

    #: CalendarQueue interface stub: ``Timeout.__init__`` inlines the
    #: calendar's current-run fast path behind a ``when < _bucket_top``
    #: test; -inf makes that test always false here, so every timeout
    #: falls through to the generic :meth:`push` (the heap).
    _bucket_top = float("-inf")

    def __init__(self, queue: list):
        self._queue = queue

    def append(self, entry) -> None:
        _heappush(self._queue, entry)

    push = append


class Environment:
    """A simulation environment: clock, agenda, and factory methods.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.  The library uses seconds
        as the unit convention throughout (latencies are reported in
        microseconds by dividing at the edges).
    scheduler:
        ``"heap"`` or ``"calendar"`` — the far-lane structure.  ``None``
        (the default) resolves the ``REPRO_SCHEDULER`` environment
        variable, then :data:`DEFAULT_SCHEDULER`.  Both schedulers
        dispatch the exact same ``(time, priority, sequence)`` order.
    """

    #: Priority for ordinary events.
    NORMAL = 1
    #: Priority for urgent events (interrupts), processed before normal
    #: events scheduled for the same time.
    URGENT = 0

    # Slots: the inlined push sites read _now/_eid/_dq/_far on every
    # event, and slot descriptors beat instance-dict lookups at sweep
    # scale.  ``tracer`` and ``audit`` are the two attributes external
    # modules attach (install_tracer / install_audit).
    __slots__ = (
        "_scheduler",
        "_lanes",
        "_now",
        "_dq",
        "_far",
        "_queue",
        "_eid",
        "_active_process",
        "_tiebreak",
        "tracer",
        "audit",
    )

    def __init__(self, initial_time: float = 0.0, scheduler: Optional[str] = None):
        if scheduler is None:
            scheduler = _os.environ.get("REPRO_SCHEDULER") or DEFAULT_SCHEDULER
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r} (choose from {SCHEDULERS})"
            )
        self._scheduler = scheduler
        self._now = float(initial_time)
        # Single-heap agenda: the whole agenda under ``scheduler="heap"``
        # and whenever a TieBreakPolicy is installed; empty otherwise.
        self._queue: list[tuple[float, int, int, Event]] = []
        # The two lanes.  Under "calendar" they are a real deque plus a
        # CalendarQueue; under "heap" both slots are one _HeapLanes shim
        # so every push lands in the legacy heap.
        self._lanes = scheduler == "calendar"
        if self._lanes:
            self._dq: Any = deque()
            self._far: Any = CalendarQueue(self._now)
        else:
            self._dq = self._far = _HeapLanes(self._queue)
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Optional TieBreakPolicy consulted on equal-(time, priority)
        # ready sets; None selects the untouched fast run loop.
        self._tiebreak: Optional[TieBreakPolicy] = None
        # Observational tracing hook: ``repro.trace.install_tracer`` sets
        # this; ``repro.trace.get_tracer`` falls back to a no-op tracer
        # while it is None.  The kernel itself never reads it.
        self.tracer = None
        # Audit hook (``repro.audit.install_audit``), declared for slots.
        self.audit = None

    # -- clock & agenda -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Which far-lane structure this environment runs on."""
        return self._scheduler

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Put ``event`` on the agenda ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        if delay == 0.0 and priority == 1:
            self._dq.append((self._now, 1, self._eid, event))
        else:
            self._far.push((self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``Infinity`` if none."""
        if self._tiebreak is not None or not self._lanes:
            return self._queue[0][0] if self._queue else Infinity
        head = self._far.head
        dq = self._dq
        if dq:
            when = dq[0][0]
            return when if head is None or when < head[0] else head[0]
        return head[0] if head is not None else Infinity

    def _pending(self) -> int:
        """Number of agenda entries across all lanes."""
        if self._tiebreak is not None or not self._lanes:
            return len(self._queue)
        return len(self._dq) + len(self._far)

    def set_tiebreak(self, policy: Optional[TieBreakPolicy]) -> None:
        """Install (or clear) the equal-timestamp tie-break policy.

        Installing a policy migrates both lanes into the legacy single
        heap the policy loop consumes (entries keep their original
        ``(time, priority, sequence)`` keys, so a policy that always
        answers 0 reproduces the native order bit-for-bit); clearing it
        migrates the pending entries back into the lanes.

        Under ``scheduler="heap"`` there is nothing to migrate: the
        agenda already is the single heap the policy loop consumes.
        """
        if self._lanes:
            if policy is not None:
                if self._tiebreak is None:
                    entries = list(self._dq)
                    entries.extend(self._far._entries())
                    heapq.heapify(entries)
                    self._queue = entries
                    self._dq = self._far = _HeapLanes(entries)
            elif self._tiebreak is not None:
                entries = sorted(self._queue)
                self._queue = []
                self._dq = deque()
                far = CalendarQueue(self._now)
                for entry in entries:
                    far.push(entry)
                self._far = far
        self._tiebreak = policy

    def _pop_choice(self) -> tuple[float, int, int, Event]:
        """Pop the next agenda entry, letting the policy break ties.

        Entries tied on ``(time, priority)`` are collected in sequence
        order and the installed policy picks one; the others go back on
        the heap with their original sequence numbers so a policy that
        always answers 0 is indistinguishable from no policy at all.
        """
        queue = self._queue
        entry = heapq.heappop(queue)
        if queue and queue[0][0] == entry[0] and queue[0][1] == entry[1]:
            when, prio = entry[0], entry[1]
            tied = [entry]
            while queue and queue[0][0] == when and queue[0][1] == prio:
                tied.append(heapq.heappop(queue))
            index = self._tiebreak.choose(when, tied)
            if not 0 <= index < len(tied):
                index = 0
            entry = tied.pop(index)
            for other in tied:
                heapq.heappush(queue, other)
        return entry

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if self._tiebreak is not None:
            if not self._queue:
                raise SimulationError("agenda is empty")
            when, _prio, _eid, event = self._pop_choice()
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else SimulationError(
                    repr(exc)
                )
            return
        if not self._lanes:
            if not self._queue:
                raise SimulationError("agenda is empty")
            entry = _heappop(self._queue)
        else:
            dq = self._dq
            far = self._far
            if dq:
                entry = dq[0]
                head = far.head
                if head is not None and head < entry:
                    entry = far.pop()
                else:
                    dq.popleft()
            elif far.head is not None:
                entry = far.pop()
            else:
                raise SimulationError("agenda is empty")

        self._now = entry[0]
        event = entry[3]
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface it loudly.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the agenda empties;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        if until is None:
            stop_at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = Infinity
            stop_event = until
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
        else:
            stop_at = float(until)
            if stop_at <= self._now:
                raise SimulationError(
                    f"until={stop_at} is not in the future (now={self._now})"
                )
            stop_event = None

        # Merged run loop: the step() body is inlined with the lanes held
        # in locals.  The loop retires hundreds of thousands of events per
        # sweep, so attribute lookups and the extra frame per step dominate
        # host time; semantics are identical to
        # ``while pending: ... self.step() ...``.  Two copies of the loop
        # so the common cases pay neither the stop_event nor the stop_at
        # comparison per event.
        #
        # The loop allocates a handful of small objects per event and
        # frees nearly all of them by reference counting — the event
        # graph is deliberately acyclic (holds point at requests and
        # timeouts, never back), so generation-0 passes triggered every
        # ~2000 allocations find almost nothing cyclic to reclaim.  At
        # sweep scale those passes cost more host time than the event
        # callbacks themselves.  Pause cyclic collection while the loop
        # runs; the previous state is restored on every exit path, and
        # anything the loop leaked in a cycle is picked up by the next
        # threshold-triggered collection after re-enable.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            if self._tiebreak is not None:
                return self._run_loop_policy(stop_event, stop_at)
            if not self._lanes:
                return self._run_loop_heap(stop_event, stop_at)
            return self._run_loop(stop_event, stop_at)
        finally:
            if gc_was_enabled:
                _gc.enable()

    def _run_loop_heap(
        self,
        stop_event: Optional[Event],
        stop_at: float,
    ) -> Any:
        """Run loop for the legacy single-heap scheduler."""
        queue = self._queue
        pop = _heappop
        if stop_event is not None:
            while queue:
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface it loudly.
                    exc = event._value
                    raise exc if isinstance(
                        exc, BaseException
                    ) else SimulationError(repr(exc))
                if stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    stop_event._defused = True
                    raise stop_event._value
        else:
            while queue:
                if queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface it loudly.
                    exc = event._value
                    raise exc if isinstance(
                        exc, BaseException
                    ) else SimulationError(repr(exc))

        if stop_event is not None:
            raise SimulationError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered"
            )
        if stop_at is not Infinity:
            self._now = stop_at
        return None

    def _run_loop(
        self,
        stop_event: Optional[Event],
        stop_at: float,
    ) -> Any:
        dq = self._dq
        dq_popleft = dq.popleft
        far = self._far
        far_advance = far._advance
        if stop_event is not None:
            while True:
                # Merge the lanes: full-key tuple comparison, so dispatch
                # order is independent of which lane an entry landed in.
                # Far pops are inlined (``head`` *is* ``_cur[_idx]``, so
                # advancing the serve index and rebinding head replaces a
                # method call on the per-timeout hot path).
                if dq:
                    entry = dq[0]
                    head = far.head
                    if head is not None and head < entry:
                        entry = head
                        cur = far._cur
                        idx = far._idx + 1
                        far._idx = idx
                        try:
                            far.head = cur[idx]
                        except IndexError:
                            far_advance()
                    else:
                        dq_popleft()
                else:
                    entry = far.head
                    if entry is None:
                        break
                    cur = far._cur
                    idx = far._idx + 1
                    far._idx = idx
                    try:
                        far.head = cur[idx]
                    except IndexError:
                        far_advance()
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                # Single-callback events are the overwhelmingly common
                # case; calling directly skips the iterator setup.
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface it loudly.
                    exc = event._value
                    raise exc if isinstance(
                        exc, BaseException
                    ) else SimulationError(repr(exc))
                if stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    stop_event._defused = True
                    raise stop_event._value
        else:
            while True:
                if dq:
                    # Zero-delay entries never outrun the clock, so only a
                    # far head can cross stop_at; the dq branch needs no
                    # bounds check.
                    entry = dq[0]
                    head = far.head
                    if head is not None and head < entry:
                        entry = head
                        cur = far._cur
                        idx = far._idx + 1
                        far._idx = idx
                        try:
                            far.head = cur[idx]
                        except IndexError:
                            far_advance()
                    else:
                        dq_popleft()
                else:
                    entry = far.head
                    if entry is None:
                        break
                    if entry[0] > stop_at:
                        self._now = stop_at
                        return None
                    cur = far._cur
                    idx = far._idx + 1
                    far._idx = idx
                    try:
                        far.head = cur[idx]
                    except IndexError:
                        far_advance()
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface it loudly.
                    exc = event._value
                    raise exc if isinstance(
                        exc, BaseException
                    ) else SimulationError(repr(exc))

        if stop_event is not None:
            raise SimulationError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered"
            )
        if stop_at is not Infinity:
            self._now = stop_at
        return None

    def _run_loop_policy(
        self, stop_event: Optional[Event], stop_at: float
    ) -> Any:
        """Run loop variant used when a tie-break policy is installed.

        Mirrors :meth:`_run_loop` exactly, except every pop goes through
        :meth:`_pop_choice` on the migrated legacy heap.  Kept separate
        so the no-policy fast path stays byte-identical to the pinned
        fingerprints.
        """
        queue = self._queue
        while queue:
            if stop_event is None and queue[0][0] > stop_at:
                self._now = stop_at
                return None
            entry = self._pop_choice()
            self._now = entry[0]
            event = entry[3]
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else SimulationError(
                    repr(exc)
                )
            if stop_event is not None and stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value

        if stop_event is not None:
            raise SimulationError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered"
            )
        if stop_at is not Infinity:
            self._now = stop_at
        return None

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return (
            f"<Environment now={self._now!r} pending={self._pending()} "
            f"at {id(self):#x}>"
        )
