"""Passive TCP sockets (listeners)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import TcpError
from repro.sim import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Event
    from repro.tcpstack.connection import TcpConnection
    from repro.tcpstack.stack import TcpStack

__all__ = ["TcpListener"]


class TcpListener:
    """A listening socket: accepts incoming connections on a port.

    Connections are queued once their handshake *completes*, so an
    accepted connection is always ESTABLISHED — mirroring Berkeley
    sockets' accept queue.
    """

    def __init__(self, stack: "TcpStack", port: int, backlog: int = 128):
        if backlog < 1:
            raise TcpError(f"backlog must be >= 1 ({backlog})")
        self.stack = stack
        self.env = stack.env
        self.port = port
        self.backlog = backlog
        self._accept_queue: Store = Store(stack.env, capacity=backlog)
        self._watchers: List[Callable[[], None]] = []
        self.closed = False

    def accept(self) -> "Event":
        """Wait for (and return) the next established connection."""
        if self.closed:
            raise TcpError(f"{self}: listener is closed")
        return self._accept_queue.get()

    def try_accept(self) -> Optional["TcpConnection"]:
        """Non-blocking accept: a connection or ``None``."""
        if self.closed:
            raise TcpError(f"{self}: listener is closed")
        return self._accept_queue.try_get()

    @property
    def acceptable(self) -> bool:
        """True if :meth:`try_accept` would return a connection now."""
        return len(self._accept_queue) > 0

    @property
    def pending(self) -> int:
        """Number of established connections waiting to be accepted."""
        return len(self._accept_queue)

    def add_watcher(self, watcher: Callable[[], None]) -> None:
        """Invoke ``watcher()`` whenever a connection becomes acceptable."""
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: Callable[[], None]) -> None:
        """Stop invoking ``watcher``."""
        try:
            self._watchers.remove(watcher)
        except ValueError:
            pass

    def enqueue_established(self, connection: "TcpConnection") -> None:
        """Called by the stack once a passive handshake completes."""
        self._accept_queue.put(connection)
        for watcher in list(self._watchers):
            watcher()

    def close(self) -> None:
        """Stop accepting; queued-but-unaccepted connections are aborted."""
        if self.closed:
            return
        self.closed = True
        while True:
            connection = self._accept_queue.try_get()
            if connection is None:
                break
            connection.abort()
        self.stack._listener_closed(self)

    def __repr__(self) -> str:
        return f"<TcpListener {self.stack.host.name}:{self.port}>"
