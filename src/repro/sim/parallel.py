"""Host-sharded conservative parallel simulation.

Partitions the simulated hosts of a topology across *shards*, each
advanced by its own worker process, synchronized conservatively in the
Chandy–Misra–Bryant tradition: every worker advances its local event
kernel in lockstep *windows* of width ``L``, the **lookahead**, defined
as the minimum propagation delay over all cross-shard link directions
(:meth:`repro.net.fabric.Fabric.min_propagation_delay` is the sequential
analogue).  A frame that finishes serialization at local time ``t``
cannot arrive on any other shard before ``t + L``, so events generated
during window ``k`` — covering ``((k-1)·L, k·L]`` — can only affect
other shards in window ``k+1`` or later.  Exchanging *frame descriptors*
at the barrier between windows therefore never delivers an event into a
shard's past: the classic conservative-synchronization argument, with
the link propagation delay playing the role of the CMB channel
lookahead and the window barrier replacing per-channel null messages.

Cross-shard traffic travels as :class:`FrameDescriptor` records: the
sending shard simulates its transmit queue, serialization, and the drop
hook locally (an :class:`~repro.net.link.EgressLink`), computes the
arrival timestamp with exactly the float expression the sequential
kernel would have used (``serialize_end + propagation_delay``), and the
receiving shard re-materializes the frame and schedules delivery at
exactly that timestamp.  Descriptors are injected in ``(arrival_time,
source_shard, sequence)`` order — the *shard-merge ordering rule* — so
a run is a pure function of the builder and the partition.

Determinism contract
--------------------

* ``shards=1`` is the degenerate case: the builder constructs the full
  topology on ordinary local links and the run is the sequential kernel,
  bit-identical to an unsharded run by construction (same code path).
* At ``shards>=2``, modeled timestamps are bit-identical to sequential
  (identical float arithmetic on identical causal chains), but kernel
  event ids diverge (each shard numbers its own agenda), so *schedule
  fingerprints* are per-shard quantities.  What is pinned instead is the
  modeled history — e.g. the Fig-4 request latencies
  (``tests/sim/test_parallel_determinism.py``).
* Workers are started with the ``spawn`` method only: no state leaks
  from the parent beyond the picklable builder and its arguments, which
  is also what the determinism lint enforces for this module.

The builder contract: a module-level callable (picklable by reference)
``builder(shard_id, nshards, **kwargs) -> Shard`` that constructs the
shard-local part of the topology through a :class:`ShardFabric` and
returns a :class:`Shard`.  ``Shard.finish`` must derive its result only
from state written causally before ``Shard.done`` triggers: windows do
not stop mid-flight when the done event fires, so events *concurrent*
with it may or may not have run (exactly the latitude a sequential
``run(until=done)`` leaves for ties at the final timestamp).
"""

from __future__ import annotations

import dataclasses
import multiprocessing as _mp
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, NetworkError, SimulationError
from repro.net.cpu import CpuCosts
from repro.net.fabric import Fabric
from repro.net.host import Host
from repro.net.link import TEN_GIGABIT, DropFn, EgressLink
from repro.net.frame import Frame
from repro.sim.copystats import COPYSTATS
from repro.sim.core import Environment
from repro.sim.events import Event

__all__ = [
    "FrameDescriptor",
    "IngressLink",
    "ShardFabric",
    "Shard",
    "run_sharded",
]

#: Hard ceiling on barrier rounds: a conservative-sync run that has not
#: terminated after this many windows is almost certainly missing its
#: done condition.
MAX_ROUNDS = 5_000_000


@dataclass(slots=True)
class FrameDescriptor:
    """One cross-shard frame in flight, in picklable form.

    ``arrival`` is the exact modeled delivery timestamp computed on the
    sending shard; ``seq`` is the per-source-shard departure sequence
    number that, together with ``src_shard``, makes the injection order
    total (the shard-merge ordering rule).
    """

    arrival: float
    src_shard: int
    seq: int
    target_shard: int
    link: str
    src: str
    dst: str
    protocol: str
    wire_bytes: int
    frame_id: int
    payload: Any

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.arrival, self.src_shard, self.seq)


def _portable_payload(payload: Any) -> Any:
    """Normalize a frame payload for pickling across the shard boundary.

    Materializes memoryviews (rubin buffers lend views into pools that
    must not travel) and strips trace contexts (spans do not cross
    shards); everything else is shipped as-is and must be picklable.
    """
    if isinstance(payload, memoryview):
        return payload.tobytes()
    if isinstance(payload, bytearray):
        return bytes(payload)
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        names = {f.name for f in dataclasses.fields(payload)}
        changes: Dict[str, Any] = {}
        if "trace_ctx" in names and getattr(payload, "trace_ctx") is not None:
            changes["trace_ctx"] = None
        for attr in ("payload", "data"):
            if attr in names:
                value = getattr(payload, attr)
                if isinstance(value, (memoryview, bytearray)):
                    changes[attr] = bytes(value)
        if changes:
            payload = dataclasses.replace(payload, **changes)
    return payload


class IngressLink:
    """The shard-local receiving half of a cross-shard link direction.

    Quacks enough like :class:`~repro.net.link.Link` for
    ``Nic.attach_rx``; delivery replicates ``Link._deliver`` exactly
    (copystats probe, then the receiver callback), so a delivered frame
    is indistinguishable from one that crossed a local link.
    """

    __slots__ = ("name", "_receiver")

    def __init__(self, name: str):
        self.name = name
        self._receiver: Optional[Callable[[Frame], None]] = None

    def attach_receiver(self, deliver: Callable[[Frame], None]) -> None:
        if self._receiver is not None:
            raise NetworkError(f"{self.name}: receiver already attached")
        self._receiver = deliver

    def deliver(self, event: Event) -> None:
        frame = event._value
        if COPYSTATS.enabled:
            COPYSTATS.frame(frame.wire_bytes)
        self._receiver(frame)


class ShardFabric:
    """Builds the shard-local slice of a full topology.

    A builder declares the *whole* topology through this wrapper —
    every host and every cable, on every shard — and the wrapper
    materializes only what is local: hosts mapped to this shard, cables
    between two local hosts, and the egress/ingress halves of cables
    that cross the partition.  Because every shard sees every
    ``connect`` call, all workers derive the same (global) lookahead.

    With ``nshards == 1`` everything is local and the underlying
    :class:`~repro.net.fabric.Fabric` is exactly what a sequential
    builder would have produced — the degenerate case rides the
    ordinary kernel untouched.
    """

    def __init__(
        self,
        env: Environment,
        shard_id: int,
        nshards: int,
        shard_of: Callable[[str], int],
    ):
        if not 0 <= shard_id < nshards:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range for {nshards} shards"
            )
        self.env = env
        self.shard_id = shard_id
        self.nshards = nshards
        self._shard_of = shard_of
        self.fabric = Fabric(env)
        #: link key -> IngressLink for directions terminating here.
        self.ingress: Dict[str, IngressLink] = {}
        #: EgressLink list for directions originating here.
        self.egress: List[EgressLink] = []
        self._shard_by_host: Dict[str, int] = {}
        self._cross_delays: List[float] = []

    def shard_of(self, name: str) -> int:
        shard = self._shard_of(name)
        if not isinstance(shard, int) or not 0 <= shard < self.nshards:
            raise ConfigurationError(
                f"partition maps host {name!r} to invalid shard {shard!r}"
            )
        return shard

    def add_host(
        self,
        name: str,
        cores: int = 4,
        cpu_costs: Optional[CpuCosts] = None,
    ) -> Optional[Host]:
        """Declare a host; returns it if local to this shard, else None."""
        if name in self._shard_by_host:
            raise NetworkError(f"host {name!r} already declared")
        shard = self.shard_of(name)
        self._shard_by_host[name] = shard
        if shard != self.shard_id:
            return None
        host = self.fabric.add_host(name, cores=cores, cpu_costs=cpu_costs)
        host.shard = shard
        return host

    def host(self, name: str) -> Host:
        return self.fabric.host(name)

    def is_local(self, name: str) -> bool:
        try:
            return self._shard_by_host[name] == self.shard_id
        except KeyError:
            raise NetworkError(f"host {name!r} was never declared") from None

    def connect(
        self,
        a: str,
        b: str,
        bandwidth_bps: float = TEN_GIGABIT,
        propagation_delay: float = 1.5e-6,
        drop_fn: Optional[DropFn] = None,
    ) -> None:
        """Declare the cable ``a <-> b``; materialize the local halves."""
        shard_a = self._shard_by_host.get(a)
        shard_b = self._shard_by_host.get(b)
        if shard_a is None or shard_b is None:
            missing = a if shard_a is None else b
            raise NetworkError(f"connect before add_host: {missing!r}")
        local = self.shard_id
        if shard_a == shard_b:
            if shard_a == local:
                self.fabric.connect(
                    a,
                    b,
                    bandwidth_bps=bandwidth_bps,
                    propagation_delay=propagation_delay,
                    drop_fn=drop_fn,
                )
            return
        # Cross-shard cable: every shard accounts it in the lookahead;
        # the two endpoint shards materialize their halves.
        self._cross_delays.append(propagation_delay)
        for src, dst, src_shard, dst_shard in (
            (a, b, shard_a, shard_b),
            (b, a, shard_b, shard_a),
        ):
            key = f"{src}->{dst}"
            if src_shard == local:
                link = EgressLink(
                    self.env,
                    bandwidth_bps=bandwidth_bps,
                    propagation_delay=propagation_delay,
                    drop_fn=drop_fn,
                    name=key,
                )
                link.link_key = key
                link.target_shard = dst_shard
                self.fabric.host(src).nic.attach_tx(dst, link)
                self.egress.append(link)
            elif dst_shard == local:
                ingress = IngressLink(key)
                self.fabric.host(dst).nic.attach_rx(ingress)
                self.ingress[key] = ingress

    def lookahead(self) -> float:
        """The conservative window width: min cross-shard propagation."""
        if self.nshards == 1:
            raise ConfigurationError("single shard runs need no lookahead")
        if not self._cross_delays:
            raise ConfigurationError(
                "no cross-shard cables: the partition leaves shards "
                "disconnected, so there is no lookahead to derive"
            )
        return min(self._cross_delays)


@dataclass
class Shard:
    """What a builder hands back to the runner for one shard."""

    env: Environment
    fabric: ShardFabric
    #: Completion condition (``run(until=done)`` in the sequential
    #: degenerate case).  At least one shard in a run must have one.
    done: Optional[Event] = None
    #: Zero-argument callable returning this shard's picklable result.
    finish: Optional[Callable[[], Any]] = None


def _drain_departures(
    shard: Shard, shard_id: int, seq_start: int
) -> Tuple[List[FrameDescriptor], int]:
    """Collect this window's cross-shard departures, in egress order."""
    out: List[FrameDescriptor] = []
    seq = seq_start
    for link in shard.fabric.egress:
        departures = link.departures
        if not departures:
            continue
        link.departures = []
        for arrival, frame in departures:
            out.append(
                FrameDescriptor(
                    arrival=arrival,
                    src_shard=shard_id,
                    seq=seq,
                    target_shard=link.target_shard,
                    link=link.link_key,
                    src=frame.src,
                    dst=frame.dst,
                    protocol=frame.protocol,
                    wire_bytes=frame.wire_bytes,
                    frame_id=frame.frame_id,
                    payload=_portable_payload(frame.payload),
                )
            )
            seq += 1
    return out, seq


def _inject(shard: Shard, due: List[FrameDescriptor]) -> None:
    """Schedule delivery for descriptors whose arrival is in this window.

    Pushes the delivery event at *exactly* the sender-computed arrival
    timestamp (no ``now + delay`` round trip, which could perturb the
    float), at NORMAL priority with a fresh local event id.
    """
    env = shard.env
    ingress = shard.fabric.ingress
    for desc in due:
        try:
            port = ingress[desc.link]
        except KeyError:
            raise SimulationError(
                f"descriptor for unknown ingress {desc.link!r}"
            ) from None
        frame = Frame(
            src=desc.src,
            dst=desc.dst,
            protocol=desc.protocol,
            wire_bytes=desc.wire_bytes,
            payload=desc.payload,
            frame_id=desc.frame_id,
        )
        event = Event(env)
        event._ok = True
        event._value = frame
        event.callbacks.append(port.deliver)
        env._eid += 1
        env._far.push((desc.arrival, 1, env._eid, event))


def _run_windows(conn, shard: Shard, shard_id: int, lookahead: float) -> None:
    """The per-worker barrier loop (also used inline in tests)."""
    env = shard.env
    pending: List[FrameDescriptor] = []
    seq = 0
    round_no = 0
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "finish":
            result = shard.finish() if shard.finish is not None else None
            conn.send(("result", shard_id, result))
            return
        if kind != "advance":
            raise SimulationError(f"unexpected coordinator message {kind!r}")
        pending.extend(message[1])
        round_no += 1
        horizon = round_no * lookahead
        if pending:
            due = [d for d in pending if d.arrival <= horizon]
            if due:
                pending = [d for d in pending if d.arrival > horizon]
                due.sort(key=FrameDescriptor.sort_key)
                _inject(shard, due)
        done = shard.done
        finished = done is not None and done.callbacks is None
        if not finished and env._now < horizon:
            env.run(until=horizon)
            finished = done is not None and done.callbacks is None
        outgoing, seq = _drain_departures(shard, shard_id, seq)
        done_flag = None if done is None else finished
        conn.send(("round", round_no, outgoing, done_flag))


def _shard_worker(
    conn,
    builder: Callable[..., Shard],
    builder_kwargs: Dict[str, Any],
    shard_id: int,
    nshards: int,
) -> None:
    """Worker entry point (spawn target; must stay module-level)."""
    try:
        shard = builder(shard_id, nshards, **builder_kwargs)
        lookahead = shard.fabric.lookahead()
        conn.send(
            ("ready", shard_id, shard.done is not None, lookahead)
        )
        _run_windows(conn, shard, shard_id, lookahead)
    except BaseException as exc:  # pragma: no cover - forwarded to parent
        try:
            conn.send(("error", shard_id, repr(exc), traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def run_sharded(
    builder: Callable[..., Shard],
    nshards: int,
    builder_kwargs: Optional[Dict[str, Any]] = None,
    max_rounds: int = MAX_ROUNDS,
) -> List[Any]:
    """Run ``builder``'s topology across ``nshards`` worker processes.

    Returns the list of per-shard ``finish()`` results, indexed by
    shard id.  ``nshards == 1`` runs sequentially in-process (the
    bit-identical degenerate case); otherwise workers are spawned (the
    only fork-safety-proof start method) and advanced in conservative
    windows until every shard that declared a ``done`` event reports it
    processed.
    """
    if nshards < 1:
        raise ConfigurationError(f"need at least one shard ({nshards})")
    kwargs = builder_kwargs or {}

    if nshards == 1:
        shard = builder(0, 1, **kwargs)
        if shard.done is not None:
            shard.env.run(until=shard.done)
        else:
            shard.env.run()
        return [shard.finish() if shard.finish is not None else None]

    context = _mp.get_context("spawn")
    parents = []
    workers = []

    def recv(conn, shard_id: int):
        """One protocol message, with worker death made diagnosable.

        A worker that dies before sending (interpreter startup failure,
        OOM kill, a builder that cannot be re-imported under spawn —
        e.g. defined in a ``<stdin>`` script) surfaces as a bare
        ``EOFError`` on the pipe; translate it.
        """
        try:
            message = conn.recv()
        except EOFError:
            raise SimulationError(
                f"shard {shard_id} worker died without reporting an error "
                "(is the builder importable in a fresh interpreter? spawn "
                "re-imports the builder's module, so builders defined in "
                "__main__ need a real script file)"
            ) from None
        if message[0] == "error":
            raise SimulationError(
                f"shard {message[1]} failed: {message[2]}\n{message[3]}"
            )
        return message

    try:
        for shard_id in range(nshards):
            parent_conn, child_conn = context.Pipe()
            worker = context.Process(
                target=_shard_worker,
                args=(child_conn, builder, kwargs, shard_id, nshards),
                name=f"repro-shard-{shard_id}",
            )
            worker.start()
            child_conn.close()
            parents.append(parent_conn)
            workers.append(worker)

        lookaheads = []
        any_done = False
        for shard_id, conn in enumerate(parents):
            _, _shard_id, has_done, lookahead = recv(conn, shard_id)
            any_done = any_done or has_done
            lookaheads.append(lookahead)
        if not any_done:
            raise ConfigurationError(
                "no shard declared a done condition; the run would never "
                "terminate"
            )
        if len(set(lookaheads)) != 1:
            raise ConfigurationError(
                f"shards disagree on the lookahead: {lookaheads} "
                "(the builder must declare the same topology everywhere)"
            )

        inboxes: List[List[FrameDescriptor]] = [[] for _ in range(nshards)]
        for _round in range(max_rounds):
            for shard_id, conn in enumerate(parents):
                conn.send(("advance", inboxes[shard_id]))
                inboxes[shard_id] = []
            all_done = True
            for shard_id, conn in enumerate(parents):
                _, _round_no, outgoing, done_flag = recv(conn, shard_id)
                for desc in outgoing:
                    inboxes[desc.target_shard].append(desc)
                if done_flag is False:
                    all_done = False
            if all_done:
                break
        else:
            raise SimulationError(
                f"sharded run did not terminate within {max_rounds} windows"
            )

        results: List[Any] = [None] * nshards
        for shard_id, conn in enumerate(parents):
            conn.send(("finish",))
            message = recv(conn, shard_id)
            results[message[1]] = message[2]
        return results
    finally:
        for conn in parents:
            try:
                conn.close()
            except Exception:
                pass
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():  # pragma: no cover - hung worker
                worker.terminate()
                worker.join(timeout=5)
