"""TCP connection state machine.

Implements the subset of TCP the paper's comparison depends on:

* three-way handshake (SYN / SYN-ACK / ACK) and FIN teardown;
* MSS segmentation with sequence numbers counting bytes;
* cumulative ACKs, sliding-window flow control with an advertised window,
  zero-window probing;
* go-back-N retransmission with a fixed RTO (the link has constant delay,
  so RTT estimation adds nothing);
* the *cost model*: every send charges a syscall plus a user-to-kernel copy,
  every receive charges an interrupt, per-segment protocol processing, a
  kernel-to-user copy and a wake-up context switch — the overheads
  Section I of the paper attributes >50 % of TCP's CPU cycles to.

Congestion control is deliberately out of scope (dedicated point-to-point
testbed link; documented in DESIGN.md).

All per-connection protocol processing runs in a single receive loop so
segment handling is serialized exactly like a NIC queue pair bound to one
core, keeping the simulation deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import TcpError
from repro.net.frame import Frame
from repro.sim import Event, Store
from repro.sim.copystats import COPYSTATS
from repro.sim.resources import TimedHold
from repro.tcpstack.config import TcpConfig
from repro.tcpstack.segment import ACK, FIN, RST, SYN, Segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment
    from repro.tcpstack.stack import TcpStack

__all__ = ["TcpConnection"]

Watcher = Callable[[], None]

# Connection states (pragmatic subset of RFC 793).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT = "FIN_WAIT"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"

#: States in which the transmit loop may emit data segments (prebuilt:
#: ``in (A, B, C)`` rebuilds the tuple from globals on every call).
_DATA_STATES = (ESTABLISHED, CLOSE_WAIT, FIN_WAIT)


class _InFlight:
    """One unacknowledged segment awaiting ACK (go-back-N bookkeeping)."""

    __slots__ = ("seq", "data", "flags", "sent_at")

    def __init__(self, seq: int, data: bytes, flags: int, sent_at: float):
        self.seq = seq
        self.data = data
        self.flags = flags
        self.sent_at = sent_at

    def seq_length(self) -> int:
        length = len(self.data)
        if self.flags & SYN:
            length += 1
        if self.flags & FIN:
            length += 1
        return length


class TcpConnection:
    """One end of a TCP connection.

    Application API (all methods returning events are yielded from
    simulation processes):

    * :meth:`send` — blocking write: completes once all bytes are admitted
      to the kernel send buffer.
    * :meth:`write_some` — non-blocking write: admits what fits now.
    * :meth:`receive` — blocking read of at least ``min_bytes``.
    * :meth:`read_some` — non-blocking read (``b""`` if nothing, ``None``
      at EOF), matching Java NIO's ``read() == -1`` convention.
    * :meth:`close` — orderly FIN teardown.

    Readiness watchers (:meth:`add_watcher`) fire on every state change
    that could affect readability/writability — the hook the epoll
    emulation and the NIO selector build on.
    """

    def __init__(
        self,
        stack: "TcpStack",
        local_port: int,
        remote_host: str,
        remote_port: int,
        config: TcpConfig,
        passive: bool,
    ):
        self.stack = stack
        self.env: "Environment" = stack.env
        self.host = stack.host
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.config = config
        self.state = CLOSED

        #: Triggers when the handshake completes (or fails).
        self.established: "Event" = self.env.event()

        # --- send side -----------------------------------------------------
        self._snd_una = 0  # oldest unacknowledged sequence number
        self._snd_nxt = 0  # next sequence number to use
        self._send_queue = bytearray()  # admitted, not yet segmented
        self._inflight: List[_InFlight] = []
        self._peer_window = config.recv_buffer  # until first ACK arrives
        self._send_waiters: List[tuple["Event", int]] = []  # (event, bytes)
        self._tx_kick: Optional["Event"] = None
        self._close_requested = False
        self._fin_sent = False
        self._fin_acked = False

        # --- receive side ----------------------------------------------------
        self._rcv_nxt = 0
        self._recv_buffer = bytearray()
        self._recv_waiters: List[tuple["Event", int, Optional[int]]] = []
        self._fin_received = False
        self._was_zero_window = False
        self._segs_since_ack = 0
        # Bytes sitting in the NIC ring (received but not yet processed);
        # they must count against the advertised window or the sender
        # overcommits and the receiver is forced to drop.
        self._rx_queued_bytes = 0

        # --- plumbing -------------------------------------------------------
        #: Listener that spawned this connection (passive opens only).
        self._listener = None
        self._rx_queue: Store = Store(self.env)
        self._watchers: List[Watcher] = []
        self._reset_error: Optional[TcpError] = None
        self._passive = passive
        self._processes_started = False

        # --- loop state -----------------------------------------------------
        # The rx/tx loops are callback state machines (see _rx_step /
        # _tx_step); these fields carry per-iteration state between the
        # callbacks, and the cached cost values avoid re-walking
        # host.cpu.costs on every segment.
        self._rx_blocked = False
        self._rx_segment: Optional[Segment] = None
        self._tx_entry: Optional[_InFlight] = None
        cpu = self.host.cpu
        self._cpu_execute = cpu.execute
        self._cpu_resource = cpu._resource
        self._cpu_tracker = cpu.tracker
        self._cost_per_segment = cpu.costs.per_segment
        self._cost_rx_burst = cpu.costs.per_segment + cpu.costs.interrupt
        self._tx_mss = config.mss
        self._tx_max_inflight = config.max_in_flight_segments
        self._recv_buffer_cap = config.recv_buffer

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _start(self) -> None:
        """Start the per-connection protocol processes."""
        if self._processes_started:
            return
        self._processes_started = True
        name = f"tcp[{self.host.name}:{self.local_port}]"
        # rx and tx are callback state machines; each gets the same URGENT
        # bootstrap event its generator-process predecessor got, so agenda
        # order (and every modeled timestamp) is unchanged.
        self._bootstrap(self._rx_step)
        self._bootstrap(self._tx_step)
        self.env.process(self._retransmit_loop(), name=f"{name}.rto")

    def _bootstrap(self, callback: Callable[[Optional[Event]], None]) -> None:
        """Schedule ``callback`` on the next kernel step at URGENT priority."""
        env = self.env
        bootstrap = Event(env)
        bootstrap.callbacks.append(callback)
        bootstrap._ok = True
        bootstrap._value = None
        env._eid += 1
        env._far.push((env._now, 0, env._eid, bootstrap))

    def _loop_done(self) -> None:
        """Mimic the completion event a finished generator process pushed.

        Keeping the push preserves event-id parity with the process-based
        loops, so schedules stay bit-identical across the refactor.
        """
        env = self.env
        done = Event(env)
        done._ok = True
        done._value = None
        env._eid += 1
        env._dq.append((env._now, 1, env._eid, done))

    def open_active(self) -> None:
        """Client side: send SYN and start the machinery."""
        self.state = SYN_SENT
        self._start()
        self._queue_control(SYN)

    def open_passive(self, syn: Segment) -> None:
        """Server side: react to a received SYN with SYN-ACK."""
        self.state = SYN_RCVD
        self._rcv_nxt = syn.seq + 1
        self._peer_window = syn.window
        self._start()
        self._queue_control(SYN | ACK)

    def _queue_control(self, flags: int) -> None:
        """Put a SYN/FIN control segment into the reliable send path."""
        entry = _InFlight(self._snd_nxt, b"", flags, self.env.now)
        self._snd_nxt += entry.seq_length()
        self._inflight.append(entry)
        self._transmit_entry(entry)

    # ------------------------------------------------------------------
    # readiness & watchers
    # ------------------------------------------------------------------

    def add_watcher(self, watcher: Watcher) -> None:
        """Invoke ``watcher()`` on every readiness-relevant state change."""
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: Watcher) -> None:
        """Stop invoking ``watcher``."""
        try:
            self._watchers.remove(watcher)
        except ValueError:
            pass

    def _notify(self) -> None:
        watchers = self._watchers
        if not watchers:
            return
        if len(watchers) == 1:
            # Common case (one selector key per connection): skip the
            # defensive copy taken for mutation-during-iteration safety.
            watchers[0]()
            return
        for watcher in list(watchers):
            watcher()

    @property
    def is_established(self) -> bool:
        """True while data transfer is possible."""
        return self.state in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT)

    @property
    def bytes_available(self) -> int:
        """Bytes ready for the application to read."""
        return len(self._recv_buffer)

    @property
    def readable(self) -> bool:
        """True if a read would return data (or EOF) immediately."""
        return (
            self.bytes_available > 0
            or self._fin_received
            or self._reset_error is not None
        )

    @property
    def send_space(self) -> int:
        """Free bytes in the kernel send buffer."""
        used = len(self._send_queue) + (self._snd_nxt - self._snd_una)
        return max(0, self.config.send_buffer - used)

    @property
    def writable(self) -> bool:
        """True if a write could admit at least one byte immediately."""
        return self.is_established and self.send_space > 0

    @property
    def eof_received(self) -> bool:
        """True once the peer's FIN has been consumed up to the buffer."""
        return self._fin_received and not self._recv_buffer

    # ------------------------------------------------------------------
    # application API — send side
    # ------------------------------------------------------------------

    def send(self, data: bytes) -> "Event":
        """Write all of ``data``; event value is ``len(data)``.

        Charges one syscall plus the user-to-kernel copy.  Blocks (in
        simulated time) while the send buffer is full.
        """
        if COPYSTATS.enabled and not isinstance(data, bytes):
            COPYSTATS.copy(len(data))
        return self.env.process(self._send_proc(bytes(data)), name="tcp.send")

    def _send_proc(self, data: bytes):
        self._check_sendable()
        yield self.host.cpu.execute(self.host.cpu.costs.syscall)
        remaining = memoryview(data)
        while remaining.nbytes:
            space = self.send_space
            if space == 0:
                waiter = self.env.event()
                self._send_waiters.append((waiter, 1))
                yield waiter
                yield self.host.cpu.execute(self.host.cpu.costs.context_switch)
                self._check_sendable()
                continue
            chunk = remaining[: min(space, remaining.nbytes)]
            yield self.host.cpu.copy(chunk.nbytes)
            if COPYSTATS.enabled:
                COPYSTATS.copy(chunk.nbytes)
            self._send_queue.extend(chunk)
            self._kick_tx()
            remaining = remaining[chunk.nbytes :]
        return len(data)

    def write_some(self, data: "bytes | memoryview") -> "Event":
        """Non-blocking write; event value is the byte count admitted.

        ``data`` may be a view over the caller's buffer: only the
        admitted prefix is copied (into the kernel send queue), and the
        caller must keep the buffer unchanged until the event fires.
        """
        return self.env.process(self._write_some_proc(data), name="tcp.write")

    def _write_some_proc(self, data):
        self._check_sendable()
        yield self.host.cpu.execute(self.host.cpu.costs.syscall)
        admitted = min(self.send_space, len(data))
        if admitted:
            yield self.host.cpu.copy(admitted)
            if COPYSTATS.enabled:
                COPYSTATS.copy(admitted)
            # The one user-to-kernel copy: straight from the caller's
            # memory into the send queue, no intermediate snapshot.
            self._send_queue.extend(memoryview(data)[:admitted])
            self._kick_tx()
        return admitted

    def _check_sendable(self) -> None:
        if self._reset_error is not None:
            raise self._reset_error
        if self.state == CLOSED:
            raise TcpError(f"{self}: connection is closed")
        if self._close_requested:
            raise TcpError(f"{self}: send after close()")

    # ------------------------------------------------------------------
    # application API — receive side
    # ------------------------------------------------------------------

    def receive(
        self, max_bytes: Optional[int] = None, min_bytes: int = 1
    ) -> "Event":
        """Read ``min_bytes``..``max_bytes``; value is the bytes read.

        Returns ``b""`` if the peer closed before ``min_bytes`` arrived.
        Charges the syscall, a wake-up context switch when it had to block,
        and the kernel-to-user copy of whatever is returned.
        """
        if min_bytes < 1:
            raise TcpError(f"min_bytes must be >= 1 ({min_bytes})")
        if max_bytes is not None and max_bytes < min_bytes:
            raise TcpError("max_bytes must be >= min_bytes")
        return self.env.process(
            self._receive_proc(max_bytes, min_bytes), name="tcp.receive"
        )

    def _receive_proc(self, max_bytes: Optional[int], min_bytes: int):
        if self._reset_error is not None:
            raise self._reset_error
        yield self.host.cpu.execute(self.host.cpu.costs.syscall)
        while len(self._recv_buffer) < min_bytes and not self._fin_received:
            waiter = self.env.event()
            self._recv_waiters.append((waiter, min_bytes, max_bytes))
            yield waiter
            if self._reset_error is not None:
                raise self._reset_error
            yield self.host.cpu.execute(self.host.cpu.costs.context_switch)
        return (yield from self._drain_recv_buffer(max_bytes))

    def read_some(self, max_bytes: int) -> "Event":
        """Non-blocking read: value is bytes (``b""`` if none, ``None`` EOF)."""
        if max_bytes < 1:
            raise TcpError(f"max_bytes must be >= 1 ({max_bytes})")
        return self.env.process(self._read_some_proc(max_bytes), name="tcp.read")

    def _read_some_proc(self, max_bytes: int):
        if self._reset_error is not None:
            raise self._reset_error
        yield self.host.cpu.execute(self.host.cpu.costs.syscall)
        if not self._recv_buffer:
            return None if self._fin_received else b""
        return (yield from self._drain_recv_buffer(max_bytes))

    def _drain_recv_buffer(self, max_bytes: Optional[int]):
        """Copy out of the kernel buffer, charging the copy cost."""
        take = len(self._recv_buffer)
        if max_bytes is not None:
            take = min(take, max_bytes)
        if take == 0:
            return b""
        yield self.host.cpu.copy(take)
        if COPYSTATS.enabled:
            COPYSTATS.copy(take)
        view = memoryview(self._recv_buffer)
        out = bytes(view[:take])
        view.release()  # before the resize below, or bytearray raises
        del self._recv_buffer[:take]
        if self._was_zero_window and self._recv_free_space() > 0:
            # Window reopened: tell the (possibly stalled) sender.
            self._was_zero_window = False
            self._send_ack()
        return out

    def _recv_free_space(self) -> int:
        free = self._recv_buffer_cap - len(self._recv_buffer) - self._rx_queued_bytes
        return free if free > 0 else 0

    # ------------------------------------------------------------------
    # application API — close
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Initiate an orderly close; pending sends drain first."""
        if self.state == CLOSED or self._close_requested:
            return
        self._close_requested = True
        self._kick_tx()

    def abort(self) -> None:
        """Hard reset: send RST and drop all state immediately."""
        if self.state == CLOSED:
            return
        self._transmit_segment(
            Segment(
                src_host=self.host.name,
                src_port=self.local_port,
                dst_host=self.remote_host,
                dst_port=self.remote_port,
                flags=RST,
                seq=self._snd_nxt,
            )
        )
        self._enter_closed(TcpError(f"{self}: connection aborted locally"))

    # ------------------------------------------------------------------
    # segment transmission helpers
    # ------------------------------------------------------------------

    def _segment(self, flags: int, seq: int, data: bytes = b"") -> Segment:
        # Positional construction: dataclass kwargs cost a measurable
        # amount per segment at sweep scale.
        return Segment(
            self.host.name,
            self.local_port,
            self.remote_host,
            self.remote_port,
            flags,
            seq,
            self._rcv_nxt,
            self._recv_free_space(),
            data,
        )

    def _transmit_segment(self, segment: Segment) -> None:
        self.host.nic.transmit(
            Frame(
                self.host.name,
                self.remote_host,
                self.stack.PROTOCOL,
                segment.wire_bytes,
                segment,
            )
        )

    def _transmit_entry(self, entry: _InFlight) -> None:
        flags = entry.flags | (ACK if self.state != SYN_SENT else 0)
        self._transmit_segment(self._segment(flags, entry.seq, entry.data))

    def _send_ack(self) -> None:
        """Emit a pure ACK carrying the current window."""
        self._transmit_segment(self._segment(ACK, self._snd_nxt))

    def _kick_tx(self) -> None:
        if self._tx_kick is not None and not self._tx_kick.triggered:
            self._tx_kick.succeed()

    # ------------------------------------------------------------------
    # transmit loop
    # ------------------------------------------------------------------

    def _should_send_fin(self) -> bool:
        return (
            self._close_requested
            and not self._fin_sent
            and not self._send_queue
            and self.state in (ESTABLISHED, CLOSE_WAIT, SYN_RCVD, SYN_SENT)
        )

    # The transmit loop is a callback state machine: every branch of the
    # old generator ended in a yield, so each branch becomes "schedule the
    # next event, append the continuation".  Events are created in exactly
    # the order the generator created them (segment mutations before the
    # CPU charge, TimedHold before the callback append, kick event only
    # when idle), keeping schedules bit-identical while removing the
    # generator ``send`` dispatch per segment.

    def _tx_step(self, _event: Optional[Event]) -> None:
        if self.state == CLOSED:
            # Drain: wake anyone still blocked on a closed connection.
            self._wake_send_waiters()
            self._loop_done()
            return
        send_queue = self._send_queue
        if (
            send_queue
            and len(self._inflight) < self._tx_max_inflight
            and self._snd_nxt - self._snd_una < self._peer_window
            and self.state in _DATA_STATES
        ):
            window_left = self._peer_window - (self._snd_nxt - self._snd_una)
            size = min(len(send_queue), self._tx_mss, window_left)
            if COPYSTATS.enabled:
                COPYSTATS.copy(size)
            view = memoryview(send_queue)
            data = bytes(view[:size])
            view.release()  # before the resize below, or bytearray raises
            del send_queue[:size]
            entry = _InFlight(self._snd_nxt, data, 0, self.env._now)
            self._snd_nxt += size
            self._inflight.append(entry)
            self._tx_entry = entry
            # Protocol processing for this segment (header build,
            # checksum handoff); the NIC DMA overlaps with the next
            # segment's CPU work.  TimedHold directly when the cost is
            # non-zero; cpu.execute keeps its distinct zero-cost schedule.
            cost = self._cost_per_segment
            if cost > 0.0:
                charged = TimedHold(self._cpu_resource, cost, self._cpu_tracker)
            else:
                charged = self._cpu_execute(cost)
            charged.callbacks.append(self._tx_segment_charged)
            return
        if self._should_send_fin():
            self._fin_sent = True
            if self.state == ESTABLISHED:
                self.state = FIN_WAIT
            elif self.state == CLOSE_WAIT:
                self.state = LAST_ACK
            self._cpu_execute(self._cost_per_segment).callbacks.append(
                self._tx_fin_charged
            )
            return
        kick = Event(self.env)
        self._tx_kick = kick
        kick.callbacks.append(self._tx_step)

    def _tx_segment_charged(self, _event: Event) -> None:
        entry = self._tx_entry
        self._tx_entry = None
        entry.sent_at = self.env._now
        self._transmit_entry(entry)
        self._wake_send_waiters()
        self._tx_step(None)

    def _tx_fin_charged(self, _event: Event) -> None:
        self._queue_control(FIN)
        self._tx_step(None)

    def _wake_send_waiters(self) -> None:
        while self._send_waiters and (self.send_space > 0 or self.state == CLOSED):
            waiter, _needed = self._send_waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed()
        self._notify()

    # ------------------------------------------------------------------
    # receive loop (all inbound protocol processing)
    # ------------------------------------------------------------------

    def enqueue_segment(self, segment: Segment) -> None:
        """Called by the stack's demux for every arriving segment."""
        self._rx_queued_bytes += len(segment.data)
        self._rx_queue.put(segment)

    # The receive loop mirrors _tx_step: wait-for-segment -> charge CPU ->
    # handle, as callbacks with the same event order the generator had.

    def _rx_step(self, _event: Optional[Event]) -> None:
        """Wait for the next inbound segment."""
        rx_queue = self._rx_queue
        # NAPI-style interrupt coalescing: the first segment of a burst
        # raises a hardware interrupt; segments already queued when we
        # come back around are polled and pay only protocol processing.
        # (Computed before get(): an uncontended get pops the item.)
        self._rx_blocked = not rx_queue.items
        rx_queue.get().callbacks.append(self._rx_dequeued)

    def _rx_dequeued(self, event: Event) -> None:
        if self.state == CLOSED:
            self._loop_done()
            return
        self._rx_segment = event._value
        cost = self._cost_rx_burst if self._rx_blocked else self._cost_per_segment
        if cost > 0.0:
            charged = TimedHold(self._cpu_resource, cost, self._cpu_tracker)
        else:
            charged = self._cpu_execute(cost)
        charged.callbacks.append(self._rx_charged)

    def _rx_charged(self, _event: Event) -> None:
        segment = self._rx_segment
        self._rx_segment = None
        self._rx_queued_bytes -= len(segment.data)
        self._handle_segment(segment)
        if self.state == CLOSED:
            self._loop_done()
            return
        self._rx_step(None)

    def _handle_segment(self, segment: Segment) -> None:
        flags = segment.flags
        if flags & RST:
            self._enter_closed(TcpError(f"{self}: connection reset by peer"))
            return

        if flags & ACK:
            self._process_ack(segment)

        if self.state == SYN_SENT and flags & SYN and flags & ACK:
            self._rcv_nxt = segment.seq + 1
            self.state = ESTABLISHED
            self._send_ack()
            if not self.established.triggered:
                self.established.succeed(self)
            self._notify()
            self._kick_tx()
            return

        if flags & SYN and self.state not in (SYN_SENT, SYN_RCVD):
            # Duplicate SYN / SYN-ACK: our handshake ACK was lost.  Re-ACK
            # so the peer can leave SYN_RCVD.
            self._send_ack()
            return

        if self.state == SYN_RCVD and flags & ACK and self._snd_una >= 1:
            self.state = ESTABLISHED
            if not self.established.triggered:
                self.established.succeed(self)
            self.stack._connection_established(self)
            self._notify()
            self._kick_tx()
            # fall through: the establishing ACK may carry data.

        if segment.data or flags & FIN:
            self._process_data(segment)

    def _process_ack(self, segment: Segment) -> None:
        window_reopened = self._peer_window == 0 and segment.window > 0
        self._peer_window = segment.window
        advanced = False
        inflight = self._inflight
        ack = segment.ack
        while inflight:
            head = inflight[0]
            head_end = head.seq + head.seq_length()
            if head_end <= ack:
                inflight.pop(0)
                self._snd_una = head_end
                if head.flags & FIN:
                    self._fin_acked = True
                advanced = True
            else:
                break
        if advanced:
            self._wake_send_waiters()
            self._maybe_finish_close()
        if window_reopened and self._inflight:
            # The window just reopened and something is still unacked —
            # typically the zero-window probe the receiver had to drop.
            # Retransmit immediately instead of waiting out a backed-off
            # RTO, or every zero-window episode costs tens of ms.
            for entry in self._inflight:
                entry.sent_at = self.env.now
                self._transmit_entry(entry)
        # A window update may unblock the tx loop even without new ACKs.
        self._kick_tx()

    def _process_data(self, segment: Segment) -> None:
        if segment.seq != self._rcv_nxt:
            # Out-of-order (go-back-N): drop, re-ACK what we have.
            self._send_ack()
            return
        data = segment.data
        if data:
            size = len(data)
            if size > self._recv_free_space():
                # No buffer space: drop; sender's RTO/probe will retry.
                self._was_zero_window = True
                self._send_ack()
                return
            if COPYSTATS.enabled:
                COPYSTATS.copy(size)
            self._recv_buffer.extend(data)
            self._rcv_nxt += size
        if segment.flags & FIN:
            self._rcv_nxt += 1
            self._fin_received = True
            if self.state == ESTABLISHED:
                self.state = CLOSE_WAIT
            elif self.state == FIN_WAIT:
                self._maybe_finish_close(force_check=True)
        if self._recv_free_space() == 0:
            self._was_zero_window = True
        # Delayed ACKs (RFC 1122): acknowledge every second in-order data
        # segment, but never delay when the burst is over (no further
        # segments queued) or on FIN.
        self._segs_since_ack += 1
        if (
            self._segs_since_ack >= 2
            or len(self._rx_queue) == 0
            or segment.flags & FIN
        ):
            self._segs_since_ack = 0
            self._send_ack()
        self._wake_recv_waiters()
        self._notify()

    def _wake_recv_waiters(self) -> None:
        still_waiting: List[tuple["Event", int, Optional[int]]] = []
        for waiter, min_bytes, max_bytes in self._recv_waiters:
            ready = len(self._recv_buffer) >= min_bytes or self._fin_received
            if ready and not waiter.triggered:
                waiter.succeed()
            elif not waiter.triggered:
                still_waiting.append((waiter, min_bytes, max_bytes))
        self._recv_waiters = still_waiting

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def _maybe_finish_close(self, force_check: bool = False) -> None:
        if self._fin_sent and self._fin_acked and self._fin_received:
            self._enter_closed(None)
        elif force_check and self._fin_sent and self._fin_received:
            # Our FIN crossed theirs; wait for our FIN's ACK via _process_ack.
            pass

    def _enter_closed(self, error: Optional[TcpError]) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        self._reset_error = error
        if not self.established.triggered:
            self.established.fail(
                error or TcpError(f"{self}: closed during handshake")
            ).defused()
        for waiter, _min, _max in self._recv_waiters:
            if not waiter.triggered:
                waiter.succeed()
        self._recv_waiters = []
        self._wake_send_waiters()
        self._kick_tx()
        self.stack._connection_closed(self)
        self._notify()

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------

    def _retransmit_loop(self):
        cpu = self.host.cpu
        base_rto = self.config.rto
        backoff = 0
        last_head_seq = -1
        while self.state != CLOSED:
            rto = base_rto * (2**backoff)
            yield self.env.timeout(base_rto / 2)
            if self.state == CLOSED:
                return
            now = self.env.now
            if self._inflight and now - self._inflight[0].sent_at >= rto:
                # Exponential backoff while the same head keeps timing out
                # (RFC 6298 style, capped), so repeated loss of the same
                # segment does not cause synchronized retransmission storms.
                head_seq = self._inflight[0].seq
                if head_seq == last_head_seq:
                    backoff = min(backoff + 1, 6)
                else:
                    backoff = 0
                    last_head_seq = head_seq
                # Go-back-N: resend everything outstanding.
                for entry in self._inflight:
                    yield cpu.execute(cpu.costs.per_segment)
                    entry.sent_at = self.env.now
                    self._transmit_entry(entry)
            elif (
                not self._inflight
                and self._send_queue
                and self._peer_window == 0
                and self.is_established
            ):
                backoff = 0
                last_head_seq = -1
                # Zero-window probe: send one byte past the window through
                # the normal reliable path.  It elicits an ACK carrying the
                # (possibly reopened) window; if the receiver had space it
                # is consumed like ordinary data.
                data = bytes(self._send_queue[:1])
                del self._send_queue[:1]
                entry = _InFlight(self._snd_nxt, data, 0, self.env.now)
                self._snd_nxt += 1
                self._inflight.append(entry)
                self._transmit_entry(entry)

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.host.name}:{self.local_port}->"
            f"{self.remote_host}:{self.remote_port} {self.state}>"
        )
