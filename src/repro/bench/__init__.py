"""Benchmark harness: calibration, workloads, and figure regeneration.

* :mod:`repro.bench.calibration` — the simulated twin of the paper's
  testbed, with every model constant documented;
* :mod:`repro.bench.echo` — the four Figure-3 micro-benchmark workloads;
* :mod:`repro.bench.selector_echo` — the Figure-4 Reptor-stack workload;
* :mod:`repro.bench.figures` — per-figure sweeps and the shape checks
  that encode the paper's Section-V claims;
* :mod:`repro.bench.results` — result containers and table rendering.
"""

from repro.bench.calibration import (
    LINK_BANDWIDTH_BPS,
    LINK_PROPAGATION,
    TESTBED_CPU_COSTS,
    TESTBED_DEVICE_ATTRS,
    TESTBED_TCP_CONFIG,
    Testbed,
    build_testbed,
)
from repro.bench.echo import (
    rdma_read_write_echo,
    rdma_send_recv_echo,
    rubin_channel_echo,
    run_echo,
    tcp_echo,
)
from repro.bench.baseline import baseline_document, echo_record, write_baseline
from repro.bench.figures import (
    FIG3_PAYLOADS,
    FIG3_TRANSPORTS,
    FIG4_PAYLOADS,
    check_fig3_shape,
    check_fig4_shape,
    fig3_sweep,
    fig3a_latency,
    fig3b_throughput,
    fig4_sweep,
    fig4a_latency,
    fig4b_throughput,
)
from repro.bench.regression import (
    DEFAULT_TOLERANCES,
    CheckReport,
    MetricCheck,
    PointReport,
    check_figure,
    load_baseline,
    rerun_point,
    run_check,
)
from repro.bench.results import EchoResult, FigureTable, percent_higher, percent_lower
from repro.bench.selector_echo import FIG4_BATCH, FIG4_WINDOW, reptor_echo

__all__ = [
    "build_testbed",
    "Testbed",
    "TESTBED_CPU_COSTS",
    "TESTBED_DEVICE_ATTRS",
    "TESTBED_TCP_CONFIG",
    "LINK_BANDWIDTH_BPS",
    "LINK_PROPAGATION",
    "run_echo",
    "tcp_echo",
    "rdma_send_recv_echo",
    "rdma_read_write_echo",
    "rubin_channel_echo",
    "reptor_echo",
    "FIG4_WINDOW",
    "FIG4_BATCH",
    "fig3_sweep",
    "fig4_sweep",
    "fig3a_latency",
    "fig3b_throughput",
    "fig4a_latency",
    "fig4b_throughput",
    "echo_record",
    "baseline_document",
    "write_baseline",
    "check_fig3_shape",
    "check_fig4_shape",
    "DEFAULT_TOLERANCES",
    "MetricCheck",
    "PointReport",
    "CheckReport",
    "load_baseline",
    "rerun_point",
    "check_figure",
    "run_check",
    "FIG3_PAYLOADS",
    "FIG4_PAYLOADS",
    "FIG3_TRANSPORTS",
    "EchoResult",
    "FigureTable",
    "percent_lower",
    "percent_higher",
]
