"""Byzantine and crash fault behaviours for tests and demos.

A group of ``3f + 1`` replicas "can tolerate up to f faulty nodes" (paper,
Section I).  These subclasses implement the standard misbehaviours via the
honest replica's outbound hook, so everything else (quorums, timers,
view changes) runs unmodified — exactly how a real faulty node looks to
the rest of the group.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bft.messages import NewView, PrePrepare, ViewChange, encode
from repro.bft.replica import Replica, batch_digest

__all__ = [
    "SilentReplica",
    "EquivocatingLeader",
    "CorruptingReplica",
    "StallingViewChangeLeader",
    "EquivocatingViewChangeReplica",
    "EquivocatingNewViewLeader",
]


class SilentReplica(Replica):
    """Crash-faulty: participates in nothing after ``go_silent()``.

    Before that it behaves honestly, which lets tests crash the leader
    mid-run and watch the view change recover the service.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.silent = False

    def go_silent(self) -> None:
        """Stop sending anything from now on (fail-silent crash)."""
        self.silent = True

    def _outbound_filter(self, message, raw: bytes, peer_id: str):
        if self.silent:
            return None
        return super()._outbound_filter(message, raw, peer_id)

    def _reply_to_client(self, reply, trace_ctx=None) -> None:
        if not self.silent:
            super()._reply_to_client(reply, trace_ctx=trace_ctx)


class EquivocatingLeader(Replica):
    """Byzantine leader that proposes *different* batches to different
    backups for the same sequence number — the classic safety attack that
    the prepare quorum intersection defeats."""

    BYZANTINE = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.equivocate = False
        self._victims: set[str] = set()

    def start_equivocating(self, victims: Optional[set[str]] = None) -> None:
        """Send forged pre-prepares to ``victims`` (default: half the
        backups) from now on."""
        self.equivocate = True
        if victims is None:
            others = [p for p in self.all_ids if p != self.replica_id]
            victims = set(others[: len(others) // 2])
        self._victims = victims

    def _outbound_filter(self, message, raw: bytes, peer_id: str):
        if (
            self.equivocate
            and isinstance(message, PrePrepare)
            and peer_id in self._victims
        ):
            forged_batch = tuple(
                type(request)(
                    client_id=request.client_id,
                    timestamp=request.timestamp,
                    operation=b"FORGED:" + request.operation,
                )
                for request in message.batch
            )
            forged = PrePrepare(
                view=message.view,
                seq=message.seq,
                digest=batch_digest(forged_batch),
                batch=forged_batch,
                replica_id=self.replica_id,
            )
            return encode(forged)
        return super()._outbound_filter(message, raw, peer_id)


class CorruptingReplica(Replica):
    """Byzantine backup that lies in its votes: its prepare/commit digests
    are corrupted, so honest replicas must never count them toward
    quorums."""

    BYZANTINE = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.corrupt = False

    def start_corrupting(self) -> None:
        """Corrupt every outbound vote from now on."""
        self.corrupt = True

    def _outbound_filter(self, message, raw: bytes, peer_id: str):
        if self.corrupt and hasattr(message, "digest"):
            corrupted = type(message)(
                **{
                    **message.__dict__,
                    "digest": bytes(32),
                }
            )
            return encode(corrupted)
        return super()._outbound_filter(message, raw, peer_id)


class StallingViewChangeLeader(Replica):
    """Faulty next-leader that collects a ViewChange quorum and then goes
    quiet instead of broadcasting NewView — the mid-view-change omission
    that forces honest replicas to escalate to the view after it.

    With ``crash_on_new_view`` the replica additionally kills itself at
    that exact point, modeling a leader that crashes between gathering
    the quorum and announcing the new view.
    """

    BYZANTINE = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.stall_view_change = False
        self.crash_on_new_view = False
        #: Views whose NewView this replica swallowed.
        self.stalled_views: list[int] = []

    def arm_stall(self, crash_on_new_view: bool = False) -> None:
        """Swallow every NewView this replica would install from now on."""
        self.stall_view_change = True
        self.crash_on_new_view = crash_on_new_view

    def _install_new_view(self, new_view: int, votes: Dict[str, ViewChange]) -> None:
        if self.stall_view_change:
            self.stalled_views.append(new_view)
            if self.crash_on_new_view:
                self.stop()
            return
        super()._install_new_view(new_view, votes)


def _padded_view_change(message: ViewChange) -> ViewChange:
    """A semantically inert but byte-different copy of a ViewChange vote.

    The extra prepared entry sits at ``seq == stable_seq``, which every
    honest new leader discards (re-proposals only cover sequences above
    the highest stable checkpoint in the quorum), so the forgery can
    never change what gets re-proposed — it only makes the vote's
    encoding digest differ between recipients.
    """
    filler = (message.stable_seq, 0, batch_digest(()), ())
    return ViewChange(
        new_view=message.new_view,
        stable_seq=message.stable_seq,
        prepared=message.prepared + (filler,),
        replica_id=message.replica_id,
    )


class EquivocatingViewChangeReplica(Replica):
    """Byzantine replica whose ViewChange votes tell different peers
    different stories: victims receive a vote with tampered prepared
    evidence while everyone else gets the honest one.  The cross-replica
    vote-digest check (``bft.view-change-equivocation``) must flag it."""

    BYZANTINE = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.equivocate_votes = False
        self._vote_victims: set[str] = set()

    def arm_vote_equivocation(self, victims: Optional[set[str]] = None) -> None:
        """Send forged ViewChange votes to ``victims`` (default: half the
        other replicas) from now on."""
        self.equivocate_votes = True
        if victims is None:
            others = [p for p in self.all_ids if p != self.replica_id]
            victims = set(others[: len(others) // 2])
        self._vote_victims = victims

    def _outbound_filter(self, message, raw: bytes, peer_id: str):
        if (
            self.equivocate_votes
            and isinstance(message, ViewChange)
            and peer_id in self._vote_victims
        ):
            return encode(_padded_view_change(message))
        return super()._outbound_filter(message, raw, peer_id)


class EquivocatingNewViewLeader(Replica):
    """Byzantine new leader that announces *different* NewView messages
    to different replicas: victims get re-proposals with forged batches.
    Honest replicas adopting conflicting assignments for the same
    ``(view, seq)`` trips ``bft.pre-prepare-equivocation``."""

    BYZANTINE = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.equivocate_new_view = False
        self._nv_victims: set[str] = set()

    def arm_new_view_equivocation(
        self, victims: Optional[set[str]] = None
    ) -> None:
        """Forge NewView re-proposals to ``victims`` (default: half the
        other replicas) from now on."""
        self.equivocate_new_view = True
        if victims is None:
            others = [p for p in self.all_ids if p != self.replica_id]
            victims = set(others[: len(others) // 2])
        self._nv_victims = victims

    def _forged_pre_prepare(self, pre_prepare: PrePrepare) -> PrePrepare:
        forged_batch = tuple(
            type(request)(
                client_id=request.client_id,
                timestamp=request.timestamp,
                operation=b"FORGED:" + request.operation,
            )
            for request in pre_prepare.batch
        )
        return PrePrepare(
            view=pre_prepare.view,
            seq=pre_prepare.seq,
            digest=batch_digest(forged_batch),
            batch=forged_batch,
            replica_id=pre_prepare.replica_id,
        )

    def _outbound_filter(self, message, raw: bytes, peer_id: str):
        if (
            self.equivocate_new_view
            and isinstance(message, NewView)
            and peer_id in self._nv_victims
            and any(pp.batch for pp in message.pre_prepares)
        ):
            forged = NewView(
                new_view=message.new_view,
                view_change_senders=message.view_change_senders,
                pre_prepares=tuple(
                    self._forged_pre_prepare(pp) if pp.batch else pp
                    for pp in message.pre_prepares
                ),
                replica_id=message.replica_id,
            )
            return encode(forged)
        return super()._outbound_filter(message, raw, peer_id)
