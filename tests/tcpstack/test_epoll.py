"""Readiness semantics of the epoll emulation."""

import pytest

from repro.errors import TcpError
from repro.tcpstack import EPOLLIN, EPOLLOUT, Epoll


def test_wait_returns_readable_connection(pair):
    client_conn, server_conn = pair.establish()
    epoll = Epoll(pair.server_host)
    epoll.register(server_conn, EPOLLIN)

    def waiter(env):
        ready = yield epoll.wait()
        return ready

    def sender(env):
        yield env.timeout(1e-3)
        yield client_conn.send(b"wake up")

    p = pair.env.process(waiter(pair.env))
    pair.env.process(sender(pair.env))
    ready = pair.env.run(until=p)
    assert len(ready) == 1
    assert ready[0][0] is server_conn
    assert ready[0][1] & EPOLLIN


def test_established_connection_is_immediately_writable(pair):
    client_conn, _ = pair.establish()
    epoll = Epoll(pair.client_host)
    epoll.register(client_conn, EPOLLOUT)

    def waiter(env):
        ready = yield epoll.wait()
        return ready

    p = pair.env.process(waiter(pair.env))
    ready = pair.env.run(until=p)
    assert ready[0][1] & EPOLLOUT


def test_listener_becomes_readable_on_pending_accept(pair):
    listener = pair.server.listen(6000)
    epoll = Epoll(pair.server_host)
    epoll.register(listener, EPOLLIN)

    def waiter(env):
        ready = yield epoll.wait()
        return ready

    p = pair.env.process(waiter(pair.env))
    pair.client.connect("server", 6000)
    ready = pair.env.run(until=p)
    assert ready[0][0] is listener


def test_wait_timeout_returns_empty(pair):
    client_conn, server_conn = pair.establish()
    epoll = Epoll(pair.server_host)
    epoll.register(server_conn, EPOLLIN)

    def waiter(env):
        started = env.now
        ready = yield epoll.wait(timeout=2e-3)
        return ready, env.now - started

    p = pair.env.process(waiter(pair.env))
    ready, elapsed = pair.env.run(until=p)
    assert ready == []
    assert elapsed == pytest.approx(2e-3, rel=0.1)


def test_poll_is_nonblocking_snapshot(pair):
    client_conn, server_conn = pair.establish()
    epoll = Epoll(pair.server_host)
    epoll.register(server_conn, EPOLLIN | EPOLLOUT)
    ready = epoll.poll()
    # Writable immediately, not yet readable.
    assert ready == [(server_conn, EPOLLOUT)]


def test_modify_changes_interest(pair):
    client_conn, server_conn = pair.establish()
    epoll = Epoll(pair.server_host)
    epoll.register(server_conn, EPOLLIN)
    assert epoll.poll() == []
    epoll.modify(server_conn, EPOLLOUT)
    assert epoll.poll() == [(server_conn, EPOLLOUT)]


def test_unregister_removes_interest(pair):
    client_conn, server_conn = pair.establish()
    epoll = Epoll(pair.server_host)
    epoll.register(server_conn, EPOLLOUT)
    epoll.unregister(server_conn)
    assert epoll.poll() == []


def test_double_register_raises(pair):
    client_conn, _ = pair.establish()
    epoll = Epoll(pair.client_host)
    epoll.register(client_conn, EPOLLIN)
    with pytest.raises(TcpError, match="already registered"):
        epoll.register(client_conn, EPOLLOUT)


def test_modify_unregistered_raises(pair):
    client_conn, _ = pair.establish()
    epoll = Epoll(pair.client_host)
    with pytest.raises(TcpError, match="not registered"):
        epoll.modify(client_conn, EPOLLIN)


def test_empty_interest_mask_raises(pair):
    client_conn, _ = pair.establish()
    epoll = Epoll(pair.client_host)
    with pytest.raises(TcpError, match="empty interest"):
        epoll.register(client_conn, 0)


def test_closed_epoll_rejects_operations(pair):
    client_conn, _ = pair.establish()
    epoll = Epoll(pair.client_host)
    epoll.register(client_conn, EPOLLIN)
    epoll.close()
    with pytest.raises(TcpError, match="closed"):
        epoll.poll()
    # Watchers were detached: no dangling notification errors on traffic.
    client_conn.close()
    pair.env.run(until=pair.env.now + 20e-3)


def test_eof_makes_connection_readable(pair):
    client_conn, server_conn = pair.establish()
    epoll = Epoll(pair.server_host)
    epoll.register(server_conn, EPOLLIN)

    def waiter(env):
        ready = yield epoll.wait()
        return ready

    p = pair.env.process(waiter(pair.env))
    client_conn.close()
    ready = pair.env.run(until=p)
    assert ready[0][0] is server_conn
    assert server_conn.eof_received


def test_one_epoll_multiplexes_many_connections(pair):
    listener = pair.server.listen(7000)
    conns = [pair.client.connect("server", 7000) for _ in range(5)]
    server_conns = []

    def acceptor(env):
        for _ in range(5):
            conn = yield listener.accept()
            server_conns.append(conn)

    pair.env.process(acceptor(pair.env))
    for conn in conns:
        pair.env.run(until=conn.established)
    pair.env.run(until=pair.env.now + 1e-3)
    assert len(server_conns) == 5

    epoll = Epoll(pair.server_host)
    for conn in server_conns:
        epoll.register(conn, EPOLLIN)

    def sender(env):
        yield conns[2].send(b"only this one")

    def waiter(env):
        ready = yield epoll.wait()
        return ready

    pair.env.process(sender(pair.env))
    p = pair.env.process(waiter(pair.env))
    ready = pair.env.run(until=p)
    assert len(ready) == 1
    assert ready[0][0] is server_conns[2]
