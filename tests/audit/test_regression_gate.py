"""The bench regression gate: reproduce, tolerate, and fail loudly.

The simulation is deterministic, so a freshly generated baseline always
reproduces exactly; a *synthetic* regression is injected by shrinking
the stored numbers (making the fresh run look slower), which must fail
the gate and exit non-zero through the CLI.
"""

import json
import os

import pytest

from repro.bench import run_echo, write_baseline
from repro.bench.__main__ import main as bench_main
from repro.bench.regression import (
    append_history,
    check_figure,
    load_baseline,
    run_check,
)
from repro.errors import ReproError

PAYLOAD = 1024
MESSAGES = 5


@pytest.fixture(scope="module")
def baseline_dir(tmp_path_factory):
    """A tiny committed-style fig3 baseline (one transport, one point)."""
    directory = tmp_path_factory.mktemp("baselines")
    results = {("tcp", 1): run_echo("tcp", PAYLOAD, MESSAGES)}
    write_baseline("fig3", results, str(directory / "BENCH_fig3.json"))
    return directory


def test_identical_rerun_passes(baseline_dir):
    document = load_baseline(str(baseline_dir / "BENCH_fig3.json"))
    report = check_figure(document)
    assert report.ok
    # Determinism: every fresh number equals its baseline exactly.
    for point in report.points:
        for check in point.checks:
            assert check.fresh == check.baseline


def test_synthetic_regression_fails_the_gate(baseline_dir, tmp_path):
    # Shrink the stored latencies so the (unchanged) fresh run looks 2x
    # slower; raise the stored throughput so the fresh run looks slower
    # there too.
    document = load_baseline(str(baseline_dir / "BENCH_fig3.json"))
    for point in document["points"]:
        for percentile in ("p50", "p95", "p99"):
            point["latency_us"][percentile] /= 2.0
        point["throughput_rps"] *= 2.0
    tampered = tmp_path / "BENCH_fig3.json"
    tampered.write_text(json.dumps(document))

    report = check_figure(load_baseline(str(tampered)))
    assert not report.ok
    regressed = {c.metric for c in report.regressions}
    assert "latency_us.p50" in regressed
    assert "throughput_rps" in regressed


def test_cli_check_exits_nonzero_on_regression(baseline_dir, tmp_path):
    document = load_baseline(str(baseline_dir / "BENCH_fig3.json"))
    for point in document["points"]:
        point["latency_us"]["p50"] /= 2.0
    gate_dir = tmp_path / "gate"
    gate_dir.mkdir()
    (gate_dir / "BENCH_fig3.json").write_text(json.dumps(document))
    history = gate_dir / "BENCH_history.jsonl"

    code = bench_main(
        [
            "--check",
            "--fig",
            "3",
            "--baseline-dir",
            str(gate_dir),
            "--history",
            str(history),
        ]
    )
    assert code == 1
    # The failed run still lands in the history trajectory.
    entries = [json.loads(line) for line in history.read_text().splitlines()]
    assert len(entries) == 1
    assert entries[0]["ok"] is False
    assert entries[0]["figures"]["fig3"]["regressions"]


def test_cli_check_passes_and_appends_history(baseline_dir, tmp_path):
    history = tmp_path / "BENCH_history.jsonl"
    code = bench_main(
        [
            "--check",
            "--fig",
            "3",
            "--baseline-dir",
            str(baseline_dir),
            "--history",
            str(history),
        ]
    )
    assert code == 0
    entries = [json.loads(line) for line in history.read_text().splitlines()]
    assert len(entries) == 1
    assert entries[0]["ok"] is True


def test_missing_baseline_is_an_error(tmp_path):
    with pytest.raises(ReproError):
        run_check(str(tmp_path), figures=("fig3",))


def test_wider_tolerance_scale_forgives(baseline_dir, tmp_path):
    document = load_baseline(str(baseline_dir / "BENCH_fig3.json"))
    for point in document["points"]:
        # 30% off p50: outside the 25% band, inside a 2x-scaled one.
        point["latency_us"]["p50"] /= 1.3
    report = check_figure(document)
    assert not report.ok
    report = check_figure(document, tolerance_scale=2.0)
    assert report.ok


def test_history_entry_shape(baseline_dir, tmp_path):
    document = load_baseline(str(baseline_dir / "BENCH_fig3.json"))
    report = check_figure(document)
    history = tmp_path / "h.jsonl"
    entry = append_history(str(history), [report])
    assert os.path.exists(history)
    assert set(entry) == {"checked_at", "ok", "figures"}
    assert entry["figures"]["fig3"]["points"] == len(report.points)
