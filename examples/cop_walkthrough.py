#!/usr/bin/env python3
"""COP walkthrough: consensus-oriented parallelization.

Three acts:

1. **One sequence space, four pipelines** — a ``group_count=4`` cluster
   orders requests through four independent PBFT instances (per-group
   leaders, views, checkpoints) and deterministically merges the group
   commits — round-robin by global slot — into one total execution
   order.  Every replica ends at the same merged position with the same
   state digest, and the online auditor's merge invariants stay quiet.
2. **Deterministic routing** — clients and replicas evaluate the same
   pure partitioner locally, with no routing metadata on the wire.  The
   hash partitioner spreads one client's requests over all groups; the
   client-affinity partitioner pins each client to a home group.
3. **The payoff** — in a signature-cost regime where protocol-message
   processing is the bottleneck, one pipeline serializes every handler;
   four pipelines spread the load over four cores.  Same batch ceiling,
   same adaptive batcher, ~4x the committed-request rate.

Run:  python examples/cop_walkthrough.py
"""

from repro.bft import BftCluster, BftConfig
from repro.bft.cop import ClientAffinityPartitioner, HashPartitioner


def act1_merged_order():
    print("== 1. four ordering pipelines, one execution order ==")
    cluster = BftCluster(
        config=BftConfig(
            group_count=4,
            batch_delay=0.0,
            batch_size=1,
            checkpoint_interval=4,
            log_window=16,
        )
    )
    cluster.start()
    for i in range(16):
        assert cluster.invoke_and_wait(b"PUT k%d=v%d" % (i, i)) == b"OK"
    cluster.run_for(50e-3)

    r0 = cluster.replica("r0")
    per_group = {p.group: p.executed_seq for p in r0.group_pipelines()}
    print(f"  per-group sequences ordered on r0:   {per_group}")
    merged = cluster.merged_positions()
    print(f"  merged global position per replica:  {merged}")
    assert len(set(merged.values())) == 1
    digests = set(cluster.state_digests().values())
    print(f"  replica states converged:            {len(digests) == 1}")
    violations = len(cluster.audit.violations)
    print(f"  audit violations (incl. merge rules): {violations}\n")
    assert violations == 0


def act2_deterministic_routing():
    print("== 2. deterministic request routing, nothing on the wire ==")
    spread = HashPartitioner(4)
    groups = [spread.group_of("c0", ts) for ts in range(12)]
    print(f"  hash partitioner, client c0, 12 requests: groups {groups}")
    pinned = ClientAffinityPartitioner(4)
    homes = {f"c{i}": pinned.group_of(f"c{i}", 0) for i in range(4)}
    print(f"  client-affinity partitioner home groups:  {homes}")

    cluster = BftCluster(
        config=BftConfig(
            group_count=4,
            partitioner="client",
            batch_delay=0.0,
            batch_size=1,
            checkpoint_interval=4,
            log_window=16,
        )
    )
    cluster.start()
    for i in range(8):
        cluster.invoke_and_wait(b"PUT k%d=v%d" % (i, i))
    cluster.run_for(50e-3)
    snap = cluster.metrics_registry().snapshot()
    committed = {g: snap[f"bft.group.{g}.committed"] for g in range(4)}
    # Committed counts include the empty merge-filler batches idle
    # groups order to keep the global sequence contiguous — the reply
    # cache is what shows where the client's requests actually went.
    print(f"  bft.group.<g>.committed (incl. merge fillers): {committed}")
    served = [
        p.group
        for p in cluster.replica("r0").group_pipelines()
        if p._reply_cache
    ]
    print(f"  groups that served client replies:        {served}\n")
    assert len(served) == 1


def act3_throughput_payoff():
    print("== 3. the payoff: G=4 vs G=1 at signature handler costs ==")
    from repro.bench.cop import run_cop_point

    points = {g: run_cop_point(g) for g in (1, 4)}
    for g, point in points.items():
        print(
            f"  G={g}: {point['committed_rps']:>8.0f} req/s  "
            f"p50 {point['latency_us']['p50']:>7.0f} us  "
            f"per_group {point['per_group_committed']}"
        )
    speedup = points[4]["committed_rps"] / points[1]["committed_rps"]
    print(f"  speedup at equal batch ceiling: {speedup:.2f}x")
    assert speedup >= 2.0
    assert all(p["audit_violations"] == 0 for p in points.values())


def main():
    act1_merged_order()
    act2_deterministic_routing()
    act3_throughput_payoff()
    print("\ndone.")


if __name__ == "__main__":
    main()
