"""Device factories, limits, and memory-region lifecycle."""

import pytest

from repro.errors import RdmaError
from repro.net import Fabric
from repro.rdma import (
    Access,
    DeviceAttributes,
    QpCapabilities,
    RdmaDevice,
)
from repro.sim import Environment


@pytest.fixture
def device():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_host("solo")
    return RdmaDevice(fabric.host("solo"))


class TestAttributes:
    def test_defaults_sane(self):
        attrs = DeviceAttributes()
        assert attrs.mtu == 4096
        assert attrs.max_inline == 256
        assert attrs.gather_setup > 0

    def test_tiny_mtu_rejected(self):
        with pytest.raises(RdmaError, match="mtu"):
            DeviceAttributes(mtu=16)

    def test_zero_post_batch_rejected(self):
        with pytest.raises(RdmaError, match="max_post_batch"):
            DeviceAttributes(max_post_batch=0)


class TestFactories:
    def test_cq_capacity_bounded_by_device(self, device):
        with pytest.raises(RdmaError, match="exceeds device limit"):
            device.create_cq(capacity=device.attrs.max_cq_entries + 1)

    def test_qp_send_queue_bounded_by_device(self, device):
        pd = device.alloc_pd()
        cq = device.create_cq()
        with pytest.raises(RdmaError, match="max_send_wr"):
            device.create_qp(
                pd, cq, cq, QpCapabilities(max_send_wr=device.attrs.max_qp_wr + 1)
            )

    def test_qp_inline_bounded_by_device(self, device):
        pd = device.alloc_pd()
        cq = device.create_cq()
        with pytest.raises(RdmaError, match="max_inline"):
            device.create_qp(pd, cq, cq, QpCapabilities(max_inline=100_000))

    def test_qp_lookup(self, device):
        pd = device.alloc_pd()
        cq = device.create_cq()
        qp = device.create_qp(pd, cq, cq)
        assert device.qp(qp.qp_num) is qp
        with pytest.raises(RdmaError, match="no QP"):
            device.qp(999999)

    def test_foreign_pd_rejected_for_mr(self, device):
        env2 = Environment()
        fabric2 = Fabric(env2)
        fabric2.add_host("other")
        other = RdmaDevice(fabric2.host("other"))
        foreign_pd = other.alloc_pd()
        with pytest.raises(RdmaError, match="another device"):
            device.reg_mr(foreign_pd, bytearray(64))

    def test_invalid_qp_caps_rejected(self):
        with pytest.raises(RdmaError):
            QpCapabilities(max_send_wr=0)
        with pytest.raises(RdmaError):
            QpCapabilities(rnr_timer=0.0)


class TestMemoryRegions:
    def test_register_and_lookup_by_rkey(self, device):
        pd = device.alloc_pd()
        mr = device.reg_mr(pd, bytearray(128))
        assert device.find_mr(mr.rkey) is mr
        assert device.find_mr(None) is None
        assert device.find_mr(0xBAD) is None

    def test_deregister_invalidates(self, device):
        pd = device.alloc_pd()
        mr = device.reg_mr(pd, bytearray(128))
        device.dereg_mr(mr)
        assert mr.invalidated
        assert device.find_mr(mr.rkey) is None
        with pytest.raises(RdmaError, match="invalidated"):
            mr.check_local_read(0, 1)

    def test_keys_are_unique(self, device):
        pd = device.alloc_pd()
        a = device.reg_mr(pd, bytearray(8))
        b = device.reg_mr(pd, bytearray(8))
        assert a.lkey != b.lkey
        assert a.rkey != b.rkey
        assert a.lkey != a.rkey

    def test_mr_requires_mutable_buffer(self, device):
        pd = device.alloc_pd()
        with pytest.raises(RdmaError, match="mutable"):
            device.reg_mr(pd, b"immutable")  # type: ignore[arg-type]

    def test_timed_registration_charges_cpu(self, device):
        pd = device.alloc_pd()
        env = device.env
        start = env.now
        done = device.reg_mr_timed(pd, bytearray(1 << 20))  # 256 pages
        mr = env.run(until=done)
        assert mr.length == 1 << 20
        elapsed = env.now - start
        small_start = env.now
        done = device.reg_mr_timed(pd, bytearray(4096))  # 1 page
        env.run(until=done)
        assert elapsed > (env.now - small_start)  # cost scales with pages

    def test_remote_access_checks(self, device):
        pd = device.alloc_pd()
        mr = device.reg_mr(pd, bytearray(64), Access.LOCAL_WRITE | Access.REMOTE_READ)
        mr.check_remote(mr.rkey, 0, 64, write=False)
        with pytest.raises(RdmaError, match="REMOTE_WRITE"):
            mr.check_remote(mr.rkey, 0, 64, write=True)
        with pytest.raises(RdmaError, match="rkey mismatch"):
            mr.check_remote(mr.rkey + 1, 0, 64, write=False)
        with pytest.raises(RdmaError, match="outside"):
            mr.check_remote(mr.rkey, 60, 8, write=False)
