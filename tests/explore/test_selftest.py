"""The seeded-mutant self-test must find, shrink, and replay the bug."""

from repro.explore.engine import ExploreBudget
from repro.explore.selftest import run_selftest, selftest_spec


class TestSelfTest:
    def test_pipeline_finds_shrinks_and_replays_the_mutant(self):
        report = run_selftest(
            budget=ExploreBudget(max_events=1_500_000, max_runs=48)
        )
        assert report["found"], report
        assert "bft.commit-quorum" in report["found_rules"]
        assert report["shrink"]["reduction"] >= 0.5, report["shrink"]
        assert report["replay_ok"], report
        assert report["ok"], report

    def test_selftest_spec_is_faultless_and_mutant_free(self):
        spec = selftest_spec()
        assert spec.faults == ()
        assert spec.byzantine == ()
        # Without the mutant the same spec must be clean: the self-test
        # scenario cannot fail on its own.
        from repro.explore.scenario import run_scenario

        outcome = run_scenario(spec)
        assert outcome.ok, outcome.summary()
