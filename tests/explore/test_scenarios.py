"""The scenario catalog: every composed scenario runs clean by default
and its Byzantine members' fingerprints actually fire (no vacuity)."""

import pytest

from repro.explore.scenario import (
    SCENARIOS,
    FaultAction,
    ScenarioError,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    with_overrides,
)


class TestCatalogValidation:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                name="bad", faults=(FaultAction(at=0.0, kind="meteor"),)
            )

    def test_unknown_byzantine_class_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="bad", byzantine=(("r0", "gremlin"),))

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(ScenarioError):
            get_scenario("no-such-scenario")

    def test_overrides_produce_a_new_spec(self):
        spec = with_overrides(get_scenario("crash-overload"), requests=2)
        assert spec.requests == 2
        assert get_scenario("crash-overload").requests != 2


class TestCatalogRuns:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_default_schedule_is_clean(self, name):
        outcome = run_scenario(SCENARIOS[name])
        assert outcome.ok, outcome.summary()
        assert outcome.crashed is None
        assert outcome.completed > 0

    @pytest.mark.parametrize(
        "name",
        [n for n, s in SCENARIOS.items() if s.expected_rules],
    )
    def test_expected_byzantine_fingerprints_fire(self, name):
        """A scenario whose expected rule never fires is not exercising
        its fault — the catalog must not go vacuous."""
        spec = SCENARIOS[name]
        outcome = run_scenario(spec)
        for rule in spec.expected_rules:
            assert rule in outcome.fired_rules, (
                name,
                outcome.fired_rules,
            )

    def test_base_run_fingerprint_is_stable(self):
        first = run_scenario(SCENARIOS["crash-overload"])
        second = run_scenario(SCENARIOS["crash-overload"])
        assert first.fingerprint == second.fingerprint
