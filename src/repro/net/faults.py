"""Runtime fault injection for the network fabric.

:class:`FaultyFabric` installs a mutable :class:`LinkFaultController` on
every cable it creates, so tests can partition hosts, inject seeded random
loss, or black-hole directions *mid-simulation* — the machinery behind
the BFT partition/recovery tests.

All injected randomness is seeded, keeping every failure scenario
bit-for-bit reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.net.fabric import Fabric
from repro.net.frame import Frame
from repro.net.link import TEN_GIGABIT, DuplexLink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.host import Host

__all__ = [
    "LinkFaultController",
    "HostFaultController",
    "FaultyFabric",
    "link_seed",
]


def link_seed(base: int, key: Tuple[str, str]) -> int:
    """Derive a per-cable seed from the fabric seed and the host pair.

    Uses CRC-32 rather than :func:`hash` so the value is independent of
    ``PYTHONHASHSEED`` — the module promises bit-for-bit reproducible
    failure scenarios.
    """
    return base ^ zlib.crc32("|".join(key).encode())


class LinkFaultController:
    """A mutable drop policy attached to one cable (both directions)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self.blocked = False
        self.loss_rate = 0.0
        self.dropped = 0
        self.passed = 0

    def __call__(self, frame: Frame) -> bool:
        """The drop_fn hook: True drops the frame."""
        if self.blocked:
            self.dropped += 1
            return True
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped += 1
            return True
        self.passed += 1
        return False

    def block(self) -> None:
        """Drop everything (cable cut / partition)."""
        self.blocked = True

    def unblock(self) -> None:
        """Undo :meth:`block` only; any configured random loss persists.

        Use this to end a clean partition while keeping a lossy link
        lossy.  :meth:`heal` is the full reset.
        """
        self.blocked = False

    def heal(self) -> None:
        """Fully repair the cable: un-block *and* clear random loss."""
        self.blocked = False
        self.loss_rate = 0.0

    def set_loss(self, rate: float, seed: Optional[int] = None) -> None:
        """Inject seeded random loss at ``rate`` (0..1)."""
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"loss rate must be in [0, 1], got {rate}")
        if seed is not None:
            self._rng = random.Random(seed)
        self.loss_rate = rate

    def __repr__(self) -> str:
        state = "blocked" if self.blocked else f"loss={self.loss_rate:g}"
        return f"<LinkFaultController {state} dropped={self.dropped}>"


class HostFaultController:
    """Process-level crash/restart fault for one host.

    Complements the link-level :class:`LinkFaultController`: instead of
    cutting a cable, it powers the host's NIC off so *all* of the host's
    traffic (both directions, every peer) black-holes, exactly as if the
    process died.  :meth:`restart` powers the NIC back on; upper layers
    (channel supervisors, BFT state transfer) are responsible for
    re-establishing connections and state.
    """

    def __init__(self, host: "Host"):
        self.host = host
        self.crashes = 0
        self.restarts = 0

    @property
    def crashed(self) -> bool:
        return not self.host.nic.powered

    def crash(self) -> None:
        """Kill the host: NIC off, traffic silently dropped."""
        if self.crashed:
            raise NetworkError(f"{self.host.name!r} is already crashed")
        self.host.nic.power_off()
        self.crashes += 1

    def restart(self) -> None:
        """Bring the host back: NIC on; state recovery is the caller's job."""
        if not self.crashed:
            raise NetworkError(f"{self.host.name!r} is not crashed")
        self.host.nic.power_on()
        self.restarts += 1

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"<HostFaultController {self.host.name!r} {state}>"


class FaultyFabric(Fabric):
    """A fabric whose every cable carries a fault controller."""

    def __init__(self, env):
        super().__init__(env)
        self._controllers: Dict[Tuple[str, str], LinkFaultController] = {}
        self._host_controllers: Dict[str, HostFaultController] = {}

    def connect(
        self,
        a: str,
        b: str,
        bandwidth_bps: float = TEN_GIGABIT,
        propagation_delay: float = 1.5e-6,
        drop_fn=None,
        seed: int = 0,
    ) -> DuplexLink:
        """Cable two hosts with an injectable controller.

        An explicit ``drop_fn`` composes with the controller (either may
        drop the frame).
        """
        key = (min(a, b), max(a, b))
        controller = LinkFaultController(seed=link_seed(seed, key))
        self._controllers[key] = controller

        if drop_fn is None:
            combined = controller
        else:
            def combined(frame, _user=drop_fn, _ctrl=controller):
                return _ctrl(frame) or _user(frame)

        return super().connect(
            a,
            b,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=propagation_delay,
            drop_fn=combined,
        )

    def controller(self, a: str, b: str) -> LinkFaultController:
        """The fault controller of the a<->b cable."""
        key = (min(a, b), max(a, b))
        try:
            return self._controllers[key]
        except KeyError:
            raise NetworkError(f"no controlled cable between {a!r} and {b!r}") from None

    def host_controller(self, name: str) -> HostFaultController:
        """The (lazily created) crash/restart controller for host ``name``."""
        controller = self._host_controllers.get(name)
        if controller is None:
            controller = HostFaultController(self.host(name))
            self._host_controllers[name] = controller
        return controller

    # -- scenario helpers ---------------------------------------------------

    def isolate(self, host: str) -> None:
        """Cut every cable touching ``host``."""
        touched = False
        for (a, b), controller in self._controllers.items():
            if host in (a, b):
                controller.block()
                touched = True
        if not touched:
            raise NetworkError(f"{host!r} has no controlled cables")

    def partition(self, group_a: Set[str], group_b: Set[str]) -> None:
        """Cut every cable crossing between the two groups."""
        overlap = group_a & group_b
        if overlap:
            raise NetworkError(f"groups overlap: {sorted(overlap)}")
        for (a, b), controller in self._controllers.items():
            if (a in group_a and b in group_b) or (a in group_b and b in group_a):
                controller.block()

    def heal_all(self) -> None:
        """Repair every cable."""
        for controller in self._controllers.values():
            controller.heal()

    def total_dropped(self) -> int:
        """Frames dropped across all controllers."""
        return sum(c.dropped for c in self._controllers.values())
