"""SocketChannel / ServerSocketChannel behaviour over simulated TCP."""

import pytest

from repro.errors import TcpError
from repro.nio import ByteBuffer, ServerSocketChannel, SocketChannel

from tests.tcpstack.conftest import TcpPair


@pytest.fixture
def pair():
    return TcpPair()


def connect_pair(pair, port=9000):
    """Return (client_channel, server_channel) fully connected."""
    server = ServerSocketChannel.open(pair.server_host).bind(port)
    client = SocketChannel.open(pair.client_host)
    client.connect("server", port)
    pair.env.run(until=client.connection.established)
    pair.env.run(until=pair.env.now + 1e-3)
    assert client.finish_connect()
    accepted = server.accept()
    assert accepted is not None
    return client, accepted, server


def test_connect_and_accept(pair):
    client, accepted, _server = connect_pair(pair)
    assert client.is_connected
    assert accepted.is_connected


def test_finish_connect_false_while_pending(pair):
    ServerSocketChannel.open(pair.server_host).bind(9000)
    client = SocketChannel.open(pair.client_host)
    client.connect("server", 9000)
    assert client.finish_connect() is False
    assert client.connect_pending


def test_finish_connect_raises_on_refused(pair):
    client = SocketChannel.open(pair.client_host)
    client.connect("server", 9999)  # nobody listening
    pair.env.run(until=pair.env.now + 10e-3)
    with pytest.raises(TcpError, match="reset"):
        client.finish_connect()


def test_accept_returns_none_when_no_pending(pair):
    server = ServerSocketChannel.open(pair.server_host).bind(9000)
    assert server.accept() is None


def test_write_then_read_roundtrip(pair):
    client, accepted, _ = connect_pair(pair)
    out = ByteBuffer.wrap(b"nio payload")
    inbuf = ByteBuffer.allocate(64)

    def writer(env):
        while out.has_remaining():
            yield client.write(out)

    def reader(env):
        total = 0
        while total < 11:
            n = yield accepted.read(inbuf)
            assert n >= 0
            total += n
        return total

    pair.env.process(writer(pair.env))
    p = pair.env.process(reader(pair.env))
    pair.env.run(until=p)
    inbuf.flip()
    assert inbuf.get() == b"nio payload"


def test_read_returns_zero_without_data(pair):
    _client, accepted, _ = connect_pair(pair)
    buf = ByteBuffer.allocate(16)

    def reader(env):
        n = yield accepted.read(buf)
        return n

    p = pair.env.process(reader(pair.env))
    assert pair.env.run(until=p) == 0


def test_read_returns_minus_one_at_eof(pair):
    client, accepted, _ = connect_pair(pair)
    client.close()
    pair.env.run(until=pair.env.now + 20e-3)
    buf = ByteBuffer.allocate(16)

    def reader(env):
        n = yield accepted.read(buf)
        return n

    p = pair.env.process(reader(pair.env))
    assert pair.env.run(until=p) == -1


def test_read_into_full_buffer_returns_zero(pair):
    client, accepted, _ = connect_pair(pair)
    buf = ByteBuffer.allocate(0)

    def reader(env):
        n = yield accepted.read(buf)
        return n

    p = pair.env.process(reader(pair.env))
    assert pair.env.run(until=p) == 0


def test_io_on_unconnected_channel_raises(pair):
    channel = SocketChannel.open(pair.client_host)
    with pytest.raises(TcpError, match="not connected"):
        channel.read(ByteBuffer.allocate(8))


def test_io_on_closed_channel_raises(pair):
    client, _accepted, _ = connect_pair(pair)
    client.close()
    with pytest.raises(TcpError, match="closed"):
        client.write(ByteBuffer.wrap(b"x"))


def test_double_connect_raises(pair):
    ServerSocketChannel.open(pair.server_host).bind(9000)
    client = SocketChannel.open(pair.client_host)
    client.connect("server", 9000)
    with pytest.raises(TcpError, match="already"):
        client.connect("server", 9000)


def test_double_bind_raises(pair):
    server = ServerSocketChannel.open(pair.server_host).bind(9000)
    with pytest.raises(TcpError, match="already bound"):
        server.bind(9001)


def test_accept_before_bind_raises(pair):
    server = ServerSocketChannel.open(pair.server_host)
    with pytest.raises(TcpError, match="not bound"):
        server.accept()


def test_partial_write_with_tiny_buffers():
    from repro.tcpstack import TcpConfig

    pair = TcpPair(config=TcpConfig(send_buffer=2048, recv_buffer=2048))
    server = ServerSocketChannel.open(pair.server_host).bind(9000)
    client = SocketChannel.open(pair.client_host)
    client.connect("server", 9000)
    pair.env.run(until=client.connection.established)
    pair.env.run(until=pair.env.now + 1e-3)
    client.finish_connect()
    accepted = server.accept()

    payload = b"p" * 10_000
    out = ByteBuffer.wrap(payload)
    received = bytearray()

    def writer(env):
        while out.has_remaining():
            n = yield client.write(out)
            if n == 0:
                yield env.timeout(100e-6)

    def reader(env):
        buf = ByteBuffer.allocate(4096)
        while len(received) < len(payload):
            n = yield accepted.read(buf)
            if n > 0:
                buf.flip()
                received.extend(buf.get())
                buf.clear()
            elif n == 0:
                yield env.timeout(50e-6)
            else:
                break

    pair.env.process(writer(pair.env))
    p = pair.env.process(reader(pair.env))
    pair.env.run(until=p)
    assert bytes(received) == payload
