"""Unit tests for the Java-NIO-style ByteBuffer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RubinError
from repro.nio import BufferOverflow, BufferUnderflow, ByteBuffer


def test_allocate_starts_in_fill_mode():
    buf = ByteBuffer.allocate(16)
    assert buf.capacity == 16
    assert buf.position == 0
    assert buf.limit == 16
    assert buf.remaining() == 16


def test_wrap_starts_in_drain_mode():
    buf = ByteBuffer.wrap(b"hello")
    assert buf.capacity == 5
    assert buf.position == 0
    assert buf.limit == 5
    assert buf.get() == b"hello"


def test_put_advances_position():
    buf = ByteBuffer.allocate(10)
    buf.put(b"abc")
    assert buf.position == 3
    assert buf.remaining() == 7


def test_put_past_limit_overflows():
    buf = ByteBuffer.allocate(4)
    with pytest.raises(BufferOverflow):
        buf.put(b"too long")


def test_flip_switches_to_drain():
    buf = ByteBuffer.allocate(10)
    buf.put(b"abc")
    buf.flip()
    assert buf.position == 0
    assert buf.limit == 3
    assert buf.get() == b"abc"


def test_get_past_limit_underflows():
    buf = ByteBuffer.wrap(b"ab")
    with pytest.raises(BufferUnderflow):
        buf.get(3)


def test_partial_get():
    buf = ByteBuffer.wrap(b"abcdef")
    assert buf.get(2) == b"ab"
    assert buf.get(2) == b"cd"
    assert buf.remaining() == 2


def test_peek_does_not_advance():
    buf = ByteBuffer.wrap(b"abc")
    assert buf.peek(2) == b"ab"
    assert buf.position == 0
    assert buf.get() == b"abc"


def test_clear_resets_for_filling():
    buf = ByteBuffer.allocate(8)
    buf.put(b"xy")
    buf.flip()
    buf.clear()
    assert buf.position == 0
    assert buf.limit == 8


def test_rewind_rereads():
    buf = ByteBuffer.wrap(b"abc")
    buf.get()
    buf.rewind()
    assert buf.get() == b"abc"


def test_compact_preserves_unread():
    buf = ByteBuffer.allocate(10)
    buf.put(b"abcdef")
    buf.flip()
    buf.get(2)  # consume "ab"
    buf.compact()
    assert buf.position == 4  # "cdef" moved to front
    buf.put(b"gh")
    buf.flip()
    assert buf.get() == b"cdefgh"


def test_limit_setter_clamps_position():
    buf = ByteBuffer.wrap(b"abcdef")
    buf.position = 5
    buf.limit = 3
    assert buf.position == 3


def test_invalid_position_raises():
    buf = ByteBuffer.allocate(4)
    with pytest.raises(RubinError):
        buf.position = 5
    with pytest.raises(RubinError):
        buf.position = -1


def test_invalid_limit_raises():
    buf = ByteBuffer.allocate(4)
    with pytest.raises(RubinError):
        buf.limit = 5


def test_negative_capacity_raises():
    with pytest.raises(RubinError):
        ByteBuffer.allocate(-1)


def test_has_remaining():
    buf = ByteBuffer.wrap(b"a")
    assert buf.has_remaining()
    buf.get()
    assert not buf.has_remaining()


@given(chunks=st.lists(st.binary(min_size=0, max_size=50), max_size=10))
def test_fill_flip_drain_roundtrip(chunks):
    total = b"".join(chunks)
    buf = ByteBuffer.allocate(len(total))
    for chunk in chunks:
        buf.put(chunk)
    buf.flip()
    assert buf.get() == total


@given(data=st.binary(min_size=1, max_size=100), cut=st.integers(0, 100))
def test_compact_then_continue(data, cut):
    cut = min(cut, len(data))
    buf = ByteBuffer.allocate(len(data) * 2)
    buf.put(data)
    buf.flip()
    consumed = buf.get(cut)
    buf.compact()
    buf.flip()
    assert consumed + buf.get() == data


def test_get_returns_owned_bytes_immune_to_backing_mutation():
    """Single-copy get(): mutating array() must never leak into past reads."""
    buf = ByteBuffer.allocate(16)
    buf.put(b"payload!")
    buf.flip()
    out = buf.get()
    buf.array()[:8] = b"XXXXXXXX"
    assert out == b"payload!"


def test_peek_returns_owned_bytes_immune_to_backing_mutation():
    buf = ByteBuffer.wrap(b"sensitive")
    out = buf.peek()
    buf.array()[:4] = b"dead"
    assert out == b"sensitive"


def test_peek_view_aliases_backing_until_released():
    """peek_view is the documented zero-copy escape hatch: it DOES alias."""
    buf = ByteBuffer.wrap(b"aliased")
    view = buf.peek_view()
    buf.array()[:1] = b"Z"
    assert bytes(view) == b"Zliased"
    view.release()
