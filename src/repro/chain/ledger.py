"""A permissioned blockchain as a BFT-replicated state machine.

This is the paper's motivating deployment: "for permissioned blockchain
settings, the BFT replicas responsible for consensus can be placed inside
a data center" (Section I).  The ledger implements the
:class:`~repro.bft.statemachine.StateMachine` protocol, so the PBFT core
totally orders transactions and every replica appends identical blocks —
**consensus finality**: "a block that has been appended to the chain
cannot be invalidated due to forks" (Section I).

Operations:

* ``TX:<payload>``   — buffer one transaction.
* ``SEAL``           — cut a block from the buffered transactions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.chain.block import GENESIS_HASH, Block
from repro.crypto import digest as sha256
from repro.errors import BftError

__all__ = ["Ledger"]

_TX_PREFIX = b"TX:"
_SEAL = b"SEAL"


class Ledger:
    """An append-only, hash-linked blockchain state machine."""

    def __init__(self, max_block_transactions: int = 1024):
        if max_block_transactions < 1:
            raise BftError("blocks must allow at least one transaction")
        self.max_block_transactions = max_block_transactions
        self.blocks: List[Block] = []
        self._mempool: List[bytes] = []
        self.applied_count = 0

    # -- StateMachine protocol ----------------------------------------------

    def apply(self, operation: bytes) -> bytes:
        """Execute one ordered operation; returns a result for the client."""
        self.applied_count += 1
        if operation.startswith(_TX_PREFIX):
            transaction = operation[len(_TX_PREFIX) :]
            if len(self._mempool) >= self.max_block_transactions:
                return b"MEMPOOL_FULL"
            self._mempool.append(transaction)
            return b"BUFFERED:%d" % len(self._mempool)
        if operation == _SEAL:
            block = self._seal()
            if block is None:
                return b"EMPTY"
            return block.hash()
        raise BftError(f"unknown ledger operation {operation[:16]!r}")

    def digest(self) -> bytes:
        """Digest of the chain tip plus the mempool."""
        tip = self.blocks[-1].hash() if self.blocks else GENESIS_HASH
        pool = bytearray()
        for transaction in self._mempool:
            pool.extend(transaction)
            pool.append(0)
        return sha256(tip + bytes(pool))

    # -- chain ------------------------------------------------------------

    def _seal(self) -> Optional[Block]:
        if not self._mempool:
            return None
        block = Block(
            height=len(self.blocks),
            previous_hash=self.blocks[-1].hash() if self.blocks else GENESIS_HASH,
            transactions=tuple(self._mempool),
        )
        block.validate_against(self.blocks[-1] if self.blocks else None)
        self.blocks.append(block)
        self._mempool = []
        return block

    @property
    def height(self) -> int:
        """Number of sealed blocks."""
        return len(self.blocks)

    @property
    def mempool_size(self) -> int:
        """Transactions buffered but not yet sealed."""
        return len(self._mempool)

    def verify_chain(self) -> bool:
        """Re-validate every hash link (tamper check)."""
        parent: Optional[Block] = None
        for block in self.blocks:
            try:
                block.validate_against(parent)
            except BftError:
                return False
            parent = block
        return True

    def tip_hash(self) -> bytes:
        """The hash of the newest block (genesis hash when empty)."""
        return self.blocks[-1].hash() if self.blocks else GENESIS_HASH

    # -- convenience operation builders ----------------------------------------

    @staticmethod
    def tx(payload: bytes) -> bytes:
        """Build a transaction-submission operation."""
        return _TX_PREFIX + payload

    @staticmethod
    def seal() -> bytes:
        """Build a seal-block operation."""
        return _SEAL

    def __repr__(self) -> str:
        return f"<Ledger height={self.height} mempool={self.mempool_size}>"
