"""Permissioned blockchain on top of the BFT core.

The paper's motivating application: BFT agreement as the consensus layer
of a permissioned blockchain, giving consensus finality instead of
probabilistic PoW forks.
"""

from repro.chain.block import GENESIS_HASH, Block
from repro.chain.ledger import Ledger

__all__ = ["Block", "Ledger", "GENESIS_HASH"]
