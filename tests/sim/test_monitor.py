"""Measurement probes: counters, time series, utilization."""

import pytest

from repro.sim import Counter, Environment, SummaryStats, TimeSeries, UtilizationTracker


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.increment()
        c.increment(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestTimeSeries:
    def test_records_at_current_time(self):
        env = Environment()
        ts = TimeSeries(env, "lat")
        env.timeout(2.0)
        env.run()
        ts.record(42.0)
        assert ts.times == [2.0]
        assert ts.values == [42.0]

    def test_explicit_time(self):
        env = Environment()
        ts = TimeSeries(env, "lat")
        ts.record(1.0, time=5.0)
        assert ts.times == [5.0]

    def test_rate(self):
        env = Environment()
        ts = TimeSeries(env, "ops")
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            ts.record(1.0, time=t)
        assert ts.rate() == pytest.approx(1.0)

    def test_rate_degenerate(self):
        env = Environment()
        ts = TimeSeries(env, "ops")
        assert ts.rate() == 0.0
        ts.record(1.0, time=1.0)
        assert ts.rate() == 0.0

    def test_stats(self):
        env = Environment()
        ts = TimeSeries(env, "lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            ts.record(v)
        stats = ts.stats()
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.count == 4


class TestSummaryStats:
    def test_empty(self):
        s = SummaryStats([])
        assert s.count == 0
        assert s.mean == 0.0

    def test_percentiles(self):
        s = SummaryStats([float(i) for i in range(1, 101)])
        assert s.p50 == 50.0
        assert s.p99 == 99.0

    def test_nearest_rank_high_percentiles(self):
        # Nearest-rank semantics pinned: rank = ceil(q*n), 1-indexed.
        s = SummaryStats([float(i) for i in range(1, 101)])
        assert s.p95 == 95.0
        assert s.p999 == 100.0

    def test_percentiles_single_sample(self):
        s = SummaryStats([7.0])
        assert (s.p50, s.p95, s.p99, s.p999) == (7.0, 7.0, 7.0, 7.0)

    def test_from_samples(self):
        s = SummaryStats.from_samples([3.0, 1.0, 2.0])
        assert s.count == 3
        assert s.minimum == 1.0

    def test_merge_equals_concatenation(self):
        """Merging partitions is exactly SummaryStats over the union.

        The merge interleaves the retained sorted sample lists instead of
        re-sorting, so every statistic — including the nearest-rank
        percentiles — must match a from-scratch construction bit for bit.
        """
        import random

        rng = random.Random(42)
        parts = [
            [rng.uniform(0.0, 100.0) for _ in range(n)]
            for n in (1, 7, 50, 113)
        ]
        merged = SummaryStats.merge(SummaryStats(p) for p in parts)
        combined = SummaryStats([x for p in parts for x in p])
        for attr in (
            "count", "mean", "minimum", "maximum", "stdev",
            "p50", "p95", "p99", "p999",
        ):
            assert getattr(merged, attr) == getattr(combined, attr), attr
        assert merged.samples_sorted == combined.samples_sorted

    def test_merge_with_empty_parts(self):
        merged = SummaryStats.merge(
            [SummaryStats([]), SummaryStats([2.0, 1.0])]
        )
        assert merged.count == 2
        assert merged.minimum == 1.0

    def test_merge_nothing(self):
        assert SummaryStats.merge([]).count == 0

    def test_to_dict(self):
        s = SummaryStats([float(i) for i in range(1, 101)])
        d = s.to_dict()
        assert d["count"] == 100
        assert d["min"] == 1.0
        assert d["max"] == 100.0
        assert d["p50"] == 50.0
        assert d["p95"] == 95.0
        assert d["p99"] == 99.0
        assert d["p999"] == 100.0
        assert set(d) == {
            "count", "mean", "min", "max", "stdev",
            "p50", "p95", "p99", "p999",
        }

    def test_stdev(self):
        s = SummaryStats([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.stdev == pytest.approx(2.0)


class TestUtilization:
    def test_basic_busy_fraction(self):
        env = Environment()
        tracker = UtilizationTracker(env, "cpu")

        def work(env):
            tracker.begin()
            yield env.timeout(1.0)
            tracker.end()
            yield env.timeout(3.0)

        env.process(work(env))
        env.run()
        assert tracker.utilization() == pytest.approx(0.25)

    def test_nested_sections(self):
        env = Environment()
        tracker = UtilizationTracker(env, "cpu")

        def work(env):
            tracker.begin()
            tracker.begin()
            yield env.timeout(1.0)
            tracker.end()
            yield env.timeout(1.0)
            tracker.end()

        env.process(work(env))
        env.run()
        assert tracker.busy_time() == pytest.approx(2.0)

    def test_end_without_begin_raises(self):
        env = Environment()
        with pytest.raises(ValueError):
            UtilizationTracker(env, "cpu").end()

    def test_open_section_counts(self):
        env = Environment()
        tracker = UtilizationTracker(env, "cpu")

        def work(env):
            tracker.begin()
            yield env.timeout(2.0)

        env.process(work(env))
        env.run()
        assert tracker.busy_time() == pytest.approx(2.0)
