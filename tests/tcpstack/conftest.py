"""Shared fixtures: a two-host fabric with TCP stacks installed."""

import pytest

from repro.net import Fabric
from repro.sim import Environment
from repro.tcpstack import TcpConfig, TcpStack


class TcpPair:
    """Two cabled hosts with TCP stacks, for connection-level tests."""

    def __init__(self, config=None, drop_fn=None, bandwidth_bps=10e9):
        self.env = Environment()
        self.fabric = Fabric(self.env)
        self.client_host = self.fabric.add_host("client")
        self.server_host = self.fabric.add_host("server")
        self.fabric.connect(
            "client", "server", bandwidth_bps=bandwidth_bps, drop_fn=drop_fn
        )
        self.client = TcpStack(self.client_host, config=config)
        self.server = TcpStack(self.server_host, config=config)

    def establish(self, port=5000):
        """Run a handshake; returns (client_conn, server_conn)."""
        listener = self.server.listen(port)
        client_conn = self.client.connect("server", port)
        server_conn_box = []

        def acceptor(env):
            conn = yield listener.accept()
            server_conn_box.append(conn)

        self.env.process(acceptor(self.env))
        self.env.run(until=client_conn.established)
        # Let the acceptor collect the connection.
        while not server_conn_box:
            self.env.step()
        return client_conn, server_conn_box[0]


@pytest.fixture
def pair():
    return TcpPair()


@pytest.fixture
def small_buffer_pair():
    return TcpPair(config=TcpConfig(send_buffer=4096, recv_buffer=4096))
