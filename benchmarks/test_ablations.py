"""Ablations of the Section-IV design choices.

Each test switches off exactly one RUBIN optimization (or switches on a
future-work one) and quantifies its effect at the payload sizes where the
paper says it matters.
"""

import pytest

from repro.bench import percent_lower
from repro.bench.calibration import build_testbed
from repro.bench.echo import rubin_channel_echo
from repro.rubin import RubinConfig

KB = 1024
MESSAGES = 60


def run(config, payload_kb, messages=MESSAGES):
    return rubin_channel_echo(payload_kb * KB, messages, config=config)


def test_selective_signaling(benchmark):
    """Signal every send vs every 8th: the paper claims up to 30 % lower
    latency for small messages from this plus the other small-message
    optimizations; in isolation it must be a strictly positive win."""

    def sweep():
        always = run(RubinConfig(signal_interval=1), 1)
        selective = run(RubinConfig(signal_interval=8), 1)
        return always, selective

    always, selective = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gain = percent_lower(selective.mean_latency_us, always.mean_latency_us)
    print(
        f"\n1KB latency: signal-always {always.mean_latency_us:.1f}us, "
        f"signal/8 {selective.mean_latency_us:.1f}us ({gain:.1f}% lower)"
    )
    assert selective.mean_latency_us < always.mean_latency_us
    benchmark.extra_info["gain_percent"] = gain


def test_inline_sends(benchmark):
    """Inline vs DMA-gather for a payload under the 256 B threshold."""

    def sweep():
        no_inline = rubin_channel_echo(
            200, MESSAGES, config=RubinConfig(inline_threshold=0)
        )
        inline = rubin_channel_echo(
            200, MESSAGES, config=RubinConfig(inline_threshold=256)
        )
        return no_inline, inline

    no_inline, inline = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gain = percent_lower(inline.mean_latency_us, no_inline.mean_latency_us)
    print(
        f"\n200B latency: no-inline {no_inline.mean_latency_us:.1f}us, "
        f"inline {inline.mean_latency_us:.1f}us ({gain:.1f}% lower)"
    )
    assert inline.mean_latency_us < no_inline.mean_latency_us
    benchmark.extra_info["gain_percent"] = gain


def test_send_zero_copy(benchmark):
    """Registered application send buffer vs copying through the pool.

    The win grows with payload (the copy is per byte), which is why the
    paper registers the app buffer for large messages only."""

    def sweep():
        out = {}
        for kb in (4, 100):
            copied = run(RubinConfig(zero_copy_send=False), kb)
            zero = run(RubinConfig(zero_copy_send=True), kb)
            out[kb] = (copied.mean_latency_us, zero.mean_latency_us)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    gains = {}
    for kb, (copied, zero) in out.items():
        gains[kb] = percent_lower(zero, copied)
        print(
            f"{kb}KB: copy-through-pool {copied:.1f}us, "
            f"zero-copy {zero:.1f}us ({gains[kb]:.1f}% lower)"
        )
        assert zero < copied
    assert gains[100] > gains[4], "zero-copy win must grow with payload"
    benchmark.extra_info["gains"] = {str(k): v for k, v in gains.items()}


def test_receive_copy_removal(benchmark):
    """The paper's future work: 'remove any buffer copy from the RDMA
    communication except for small messages'.  Enabling zero_copy_recv
    quantifies what that would buy at 100 KB."""

    def sweep():
        copying = run(RubinConfig(zero_copy_recv=False), 100)
        zero = run(RubinConfig(zero_copy_recv=True), 100)
        return copying, zero

    copying, zero = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gain = percent_lower(zero.mean_latency_us, copying.mean_latency_us)
    print(
        f"\n100KB latency: recv-copy {copying.mean_latency_us:.1f}us, "
        f"zero-copy-recv {zero.mean_latency_us:.1f}us ({gain:.1f}% lower)"
    )
    assert zero.mean_latency_us < copying.mean_latency_us
    # The receive copy is the dominant large-message overhead: removing it
    # must be a double-digit win.
    assert gain > 10.0
    benchmark.extra_info["gain_percent"] = gain


def test_batched_posting(benchmark):
    """Re-posting receive WRs one at a time vs in device-max batches."""

    def sweep():
        unbatched = run(
            RubinConfig(post_batch=1, num_recv_buffers=64), 1, messages=120
        )
        batched = run(
            RubinConfig(post_batch=16, num_recv_buffers=64), 1, messages=120
        )
        return unbatched, batched

    unbatched, batched = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gain = percent_lower(
        batched.mean_latency_us, unbatched.mean_latency_us
    )
    print(
        f"\n1KB latency: post-1 {unbatched.mean_latency_us:.2f}us, "
        f"post-16 {batched.mean_latency_us:.2f}us ({gain:.1f}% lower)"
    )
    assert batched.mean_latency_us <= unbatched.mean_latency_us
    benchmark.extra_info["gain_percent"] = gain


def test_registration_cost_amortization(benchmark):
    """Why pools are pre-registered: per-message registration is ruinous.

    Compares the one-time cost of registering a 128 KB buffer against a
    verbs post+doorbell, using the calibrated device attributes."""

    def measure():
        bed = build_testbed()
        device = bed.client.stack("rdma")
        pd = device.alloc_pd()
        env = bed.env

        start = env.now
        done = device.reg_mr_timed(pd, bytearray(128 * KB))
        env.run(until=done)
        register_cost = env.now - start

        cpu = bed.client.cpu
        start = env.now
        done = cpu.execute(cpu.costs.post_wr + cpu.costs.doorbell)
        env.run(until=done)
        post_cost = env.now - start
        return register_cost * 1e6, post_cost * 1e6

    register_us, post_us = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nregister 128KB MR: {register_us:.2f}us vs post+doorbell "
        f"{post_us:.2f}us ({register_us / post_us:.0f}x)"
    )
    assert register_us > 5 * post_us
    benchmark.extra_info["register_us"] = register_us
    benchmark.extra_info["post_us"] = post_us


def test_cop_pipelines(benchmark):
    """Consensus-Oriented Parallelization (Section II-C): sharding the
    agreement stage across pipelines scales with the 4 cores when the
    per-message handler work is substantial (signature-class costs)."""
    from repro.bft import BftCluster, BftConfig, CounterMachine

    def run(pipelines, total=40):
        cluster = BftCluster(
            transport="rubin",
            config=BftConfig(
                view_change_timeout=200e-3,
                batch_size=1,
                batch_delay=0.0,
                pipelines=pipelines,
                handler_cost=25e-6,  # signature-verification class
            ),
            app_factory=CounterMachine,
        )
        cluster.start()

        def workload(env):
            client = cluster.client()
            start = env.now
            pending = [client.invoke(CounterMachine.add(1)) for _ in range(total)]
            yield env.all_of(pending)
            return total / (env.now - start)

        p = cluster.env.process(workload(cluster.env))
        rps = cluster.env.run(until=p)
        cluster.run_for(100e-3)  # let laggards finish executing
        values = {app.value for app in cluster.apps.values()}
        assert values == {total}, "total order broken by pipelining"
        return rps

    def sweep():
        return {p: run(p) for p in (1, 2, 4)}

    rps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(
        f"\nCOP scaling (25us/message handlers, 4 cores): "
        f"1 pipe {rps[1]:.0f}, 2 pipes {rps[2]:.0f}, 4 pipes {rps[4]:.0f} req/s"
    )
    assert rps[2] > rps[1] * 1.4
    assert rps[4] > rps[2] * 1.3
    benchmark.extra_info["rps_by_pipelines"] = {str(k): v for k, v in rps.items()}
