"""Non-blocking socket channels over the simulated TCP stack.

These mirror ``java.nio.channels.SocketChannel`` and
``ServerSocketChannel`` closely enough that the Reptor communication stack
(:mod:`repro.reptor`) can be written once against this interface and once
against RUBIN's — which is the paper's whole point: RUBIN recreates this
API over RDMA so BFT frameworks keep their communication code.

All I/O methods return kernel events (yield them from a process); "non-
blocking" means they never wait for data or peer action, but they still
consume simulated CPU time for syscalls and copies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import TcpError
from repro.nio.buffer import ByteBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.host import Host
    from repro.sim import Event
    from repro.tcpstack.connection import TcpConnection
    from repro.tcpstack.listener import TcpListener

__all__ = ["SocketChannel", "ServerSocketChannel"]


class SocketChannel:
    """A non-blocking TCP channel (``java.nio.channels.SocketChannel``)."""

    def __init__(self, host: "Host"):
        self.host = host
        self.env = host.env
        self.connection: Optional["TcpConnection"] = None
        self._connect_pending = False
        self._closed = False

    # -- factories ----------------------------------------------------------

    @classmethod
    def open(cls, host: "Host") -> "SocketChannel":
        """Create an unconnected channel on ``host``."""
        return cls(host)

    @classmethod
    def _wrap(cls, host: "Host", connection: "TcpConnection") -> "SocketChannel":
        """Wrap an accepted server-side connection."""
        channel = cls(host)
        channel.connection = connection
        return channel

    # -- connection management ----------------------------------------------

    def connect(self, remote_host: str, remote_port: int) -> None:
        """Start a non-blocking connect (finish with :meth:`finish_connect`)."""
        if self.connection is not None:
            raise TcpError("channel is already connected or connecting")
        if self._closed:
            raise TcpError("channel is closed")
        stack = self.host.stack("tcp")
        self.connection = stack.connect(remote_host, remote_port)
        self._connect_pending = True

    @property
    def connect_pending(self) -> bool:
        """True while a connect is in flight."""
        return self._connect_pending

    def finish_connect(self) -> bool:
        """Complete a pending connect.

        Returns True once established; raises if the connect failed
        (connection refused).  Mirrors Java's ``finishConnect()``.
        """
        if not self._connect_pending:
            return self.is_connected
        conn = self.connection
        assert conn is not None
        if conn.established.triggered:
            self._connect_pending = False
            if not conn.established.ok:
                raise conn.established.value
            return True
        return False

    @property
    def is_connected(self) -> bool:
        """True while the channel can transfer data."""
        return (
            self.connection is not None
            and not self._connect_pending
            and self.connection.is_established
        )

    @property
    def is_open(self) -> bool:
        """True until :meth:`close` is called."""
        return not self._closed

    # -- I/O --------------------------------------------------------------

    def read(self, buffer: ByteBuffer) -> "Event":
        """Read into ``buffer``; event value is bytes read (-1 at EOF).

        Non-blocking: 0 means no data available right now.
        """
        self._check_io_ready()
        return self.env.process(self._read_proc(buffer), name="nio.read")

    def _read_proc(self, buffer: ByteBuffer):
        conn = self.connection
        assert conn is not None
        want = buffer.remaining()
        if want == 0:
            return 0
        data = yield conn.read_some(want)
        if data is None:
            return -1
        if not data:
            return 0
        buffer.put(data)
        return len(data)

    def write(self, buffer: ByteBuffer) -> "Event":
        """Write from ``buffer``; event value is bytes written (may be 0)."""
        self._check_io_ready()
        return self.env.process(self._write_proc(buffer), name="nio.write")

    def _write_proc(self, buffer: ByteBuffer):
        conn = self.connection
        assert conn is not None
        # Hand the stack a window over the buffer instead of a copy; the
        # stack snapshots what it accepts into its send queue, and the
        # buffer is not mutated while the write is in flight.
        pending = buffer.peek_view()
        if not pending:
            pending.release()
            return 0
        try:
            written = yield conn.write_some(pending)
        finally:
            pending.release()
        if written:
            buffer.position = buffer.position + written
        return written

    def _check_io_ready(self) -> None:
        if self._closed:
            raise TcpError("channel is closed")
        if self.connection is None or self._connect_pending:
            raise TcpError("channel is not connected")

    # -- readiness (used by the selector) -------------------------------------

    @property
    def readable(self) -> bool:
        """True if a read would return data or EOF right now."""
        return self.connection is not None and self.connection.readable

    @property
    def writable(self) -> bool:
        """True if a write could make progress right now."""
        return self.connection is not None and self.connection.writable

    @property
    def connectable(self) -> bool:
        """True if ``finish_connect`` would complete (or fail) right now."""
        return (
            self._connect_pending
            and self.connection is not None
            and self.connection.established.triggered
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the channel (orderly TCP close underneath)."""
        if self._closed:
            return
        self._closed = True
        if self.connection is not None:
            self.connection.close()

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else "pending"
            if self._connect_pending
            else "connected"
            if self.is_connected
            else "unconnected"
        )
        return f"<SocketChannel {self.host.name} {state}>"


class ServerSocketChannel:
    """A non-blocking listening channel (``ServerSocketChannel``)."""

    def __init__(self, host: "Host"):
        self.host = host
        self.env = host.env
        self.listener: Optional["TcpListener"] = None
        self._closed = False

    @classmethod
    def open(cls, host: "Host") -> "ServerSocketChannel":
        """Create an unbound server channel on ``host``."""
        return cls(host)

    def bind(self, port: int, backlog: int = 128) -> "ServerSocketChannel":
        """Bind and start listening on ``port``."""
        if self.listener is not None:
            raise TcpError("server channel is already bound")
        if self._closed:
            raise TcpError("server channel is closed")
        stack = self.host.stack("tcp")
        self.listener = stack.listen(port, backlog=backlog)
        return self

    def accept(self) -> Optional[SocketChannel]:
        """Non-blocking accept: a connected channel or ``None``."""
        if self.listener is None:
            raise TcpError("server channel is not bound")
        if self._closed:
            raise TcpError("server channel is closed")
        connection = self.listener.try_accept()
        if connection is None:
            return None
        return SocketChannel._wrap(self.host, connection)

    @property
    def acceptable(self) -> bool:
        """True if :meth:`accept` would return a channel right now."""
        return self.listener is not None and self.listener.acceptable

    @property
    def is_open(self) -> bool:
        """True until :meth:`close` is called."""
        return not self._closed

    def close(self) -> None:
        """Stop listening."""
        if self._closed:
            return
        self._closed = True
        if self.listener is not None:
            self.listener.close()

    def __repr__(self) -> str:
        port = self.listener.port if self.listener else None
        return f"<ServerSocketChannel {self.host.name}:{port}>"
