"""One-sided agreement benchmark: latency win and quantified blast radius.

Two questions, one figure (the paper's Section III trade-off):

1. **How much latency does the Write-based fast path buy?**  The same
   closed-loop workload runs over the one-sided proposal/ack rings
   (``mode="onesided"``) and over ordinary message-passing PBFT
   (``mode="twosided"``); the delta is the fast path's win.

2. **What does it cost in safety, and does the guard pay for itself?**
   A :class:`~repro.bft.byzantine.CompromisedRkeyReplica` forges leader
   proposals into its peers' rings mid-workload, once with the dynamic
   permission guard armed (``mode="attack-guarded"``) and once with it
   off (``mode="attack-unguarded"``).  The *blast radius* — distinct
   (host, offset) pairs a forged write actually landed on — must be
   zero when guarded and strictly positive when not, and in both modes
   the audit layer must detect every attempt.

All four points are deterministic, so the committed
``BENCH_onesided.json`` is exact; the ``--check`` bands on the latency
percentiles only absorb intentional model changes while blast radius
and detection counts are gated exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.bft import BftCluster, BftConfig
from repro.bft.byzantine import CompromisedRkeyReplica
from repro.errors import ReproError
from repro.rubin import RubinConfig
from repro.sim import SummaryStats

__all__ = [
    "ONESIDED_MODES",
    "ONESIDED_DEFAULTS",
    "run_onesided_point",
    "run_onesided",
    "check_onesided_shape",
]

#: The four benchmark modes, in baseline order.
ONESIDED_MODES: Tuple[str, ...] = (
    "onesided",
    "twosided",
    "attack-guarded",
    "attack-unguarded",
)

#: Baseline scenario parameters (recorded in every point so the gate can
#: rerun it exactly).
ONESIDED_DEFAULTS: Dict[str, Any] = {
    "transport": "rubin",
    "payload_bytes": 64,
    "messages": 16,
    "request_gap": 150e-6,
    "attack_at": 1e-3,
}


def _config(mode: str) -> BftConfig:
    return BftConfig(
        batch_delay=50e-6,
        batch_size=1,
        view_change_timeout=200e-3,
        onesided=mode != "twosided",
        onesided_guard=mode != "attack-unguarded",
    )


def run_onesided_point(
    mode: str,
    payload_bytes: int = 64,
    messages: int = 16,
    request_gap: float = 150e-6,
    attack_at: float = 1e-3,
    tracer=None,
    sampler=None,
) -> Dict[str, Any]:
    """One mode of the one-sided figure; returns a JSON-ready point.

    A single client issues ``messages`` requests closed-loop with
    ``request_gap`` between them; in the attack modes ``r3`` is a
    :class:`CompromisedRkeyReplica` armed at ``attack_at`` so the
    forgeries overlap the workload.
    """
    if mode not in ONESIDED_MODES:
        raise ReproError(
            f"unknown onesided mode {mode!r} (have {ONESIDED_MODES})"
        )
    attack = mode.startswith("attack-")
    replica_classes = {"r3": CompromisedRkeyReplica} if attack else None
    cluster = BftCluster(
        transport="rubin",
        config=_config(mode),
        rubin_config=RubinConfig(
            retry_timeout=1e-3,
            retry_count=3,
            buffer_size=8192,
            num_recv_buffers=8,
            num_send_buffers=8,
            post_batch=4,
        ),
        replica_classes=replica_classes,
        tracer=tracer,
    )
    cluster.start()
    env = cluster.env
    if sampler is not None:
        sampler.bind(env, cluster.metrics_registry())
        sampler.start()
    if attack:
        cluster.replica("r3").arm_compromise(attack_at)

    payload = b"\x5a" * payload_bytes
    latencies_us: List[float] = []

    def load():
        client = cluster.client(0)
        for i in range(messages):
            submitted = env.now
            result = yield client.invoke(b"PUT k%d=" % i + payload)
            if result is None:
                raise ReproError("invocation returned no result")
            latencies_us.append((env.now - submitted) * 1e6)
            yield env.timeout(request_gap)

    proc = env.process(load(), name="onesided.load")
    env.run(until=proc)
    # Let any forgeries still in flight land before scoring.
    cluster.run_for(2e-3)
    if sampler is not None:
        sampler.sample_now()
        sampler.stop()

    audit = cluster.audit
    violations = list(audit.violations) if audit.enabled else []
    landed = set()
    detections = 0
    safety_rules = []
    for violation in violations:
        detail = dict(violation.detail)
        if violation.rule in (
            "rdma.unauthorized-write",
            "rdma.unauthorized-read",
            "rdma.stale-permission-access",
            "bft.onesided-slot-overwrite",
        ):
            detections += 1
            # A denial carries no declared_writer; a *landed* forged
            # write does — those are the corrupted bytes.
            if "declared_writer" in detail:
                landed.add((detail["host"], detail["offset"]))
        else:
            safety_rules.append(violation.rule)

    counters = {"writes": 0, "corrupted_slots": 0, "fallbacks": 0}
    forged_attempts = 0
    for replica in cluster.replicas.values():
        if hasattr(replica, "onesided_writes"):
            counters["writes"] += replica.onesided_writes.value
            counters["corrupted_slots"] += (
                replica.onesided_corrupted_slots.value
            )
            counters["fallbacks"] += replica.onesided_fallbacks.value
        forged_attempts += getattr(replica, "forged_attempts", 0)

    return {
        "mode": mode,
        "transport": "rubin",
        "payload_bytes": payload_bytes,
        "messages": messages,
        "request_gap": request_gap,
        "attack_at": attack_at,
        "latency_us": SummaryStats(latencies_us).to_dict(),
        "completed": len(latencies_us),
        "blast_radius": len(landed),
        "detections": detections,
        "forged_attempts": forged_attempts,
        "safety_violations": sorted(set(safety_rules)),
        "onesided_writes": counters["writes"],
        "corrupted_slots": counters["corrupted_slots"],
        "fallbacks": counters["fallbacks"],
    }


def run_onesided(
    payload_bytes: Optional[int] = None,
    messages: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """All four modes with the baseline parameters."""
    defaults = ONESIDED_DEFAULTS
    return [
        run_onesided_point(
            mode,
            payload_bytes=payload_bytes or defaults["payload_bytes"],
            messages=messages or defaults["messages"],
            request_gap=defaults["request_gap"],
            attack_at=defaults["attack_at"],
        )
        for mode in ONESIDED_MODES
    ]


def check_onesided_shape(points: List[Dict[str, Any]]) -> List[str]:
    """Assert the figure's qualitative claims; returns human-readable
    facts, raises :class:`ReproError` on any violation."""
    by_mode = {point["mode"]: point for point in points}
    missing = [mode for mode in ONESIDED_MODES if mode not in by_mode]
    if missing:
        raise ReproError(f"onesided figure missing modes: {missing}")
    facts: List[str] = []

    fast = by_mode["onesided"]
    slow = by_mode["twosided"]
    if fast["latency_us"]["p50"] >= slow["latency_us"]["p50"]:
        raise ReproError(
            "one-sided fast path is not faster than message passing: "
            f"p50 {fast['latency_us']['p50']:.1f} us >= "
            f"{slow['latency_us']['p50']:.1f} us"
        )
    facts.append(
        f"one-sided p50 {fast['latency_us']['p50']:.1f} us < two-sided "
        f"p50 {slow['latency_us']['p50']:.1f} us"
    )
    for mode in ("onesided", "twosided"):
        point = by_mode[mode]
        if point["detections"] or point["blast_radius"]:
            raise ReproError(f"benign {mode} run tripped the auditors")

    guarded = by_mode["attack-guarded"]
    if guarded["blast_radius"] != 0:
        raise ReproError(
            "guarded attack landed writes: blast radius "
            f"{guarded['blast_radius']} != 0"
        )
    if not guarded["detections"]:
        raise ReproError("guarded attack produced no detections")
    if guarded["safety_violations"]:
        raise ReproError(
            "guarded attack broke safety: "
            f"{guarded['safety_violations']}"
        )
    if guarded["completed"] != guarded["messages"]:
        raise ReproError(
            "guarded cluster stopped committing under attack: "
            f"{guarded['completed']}/{guarded['messages']}"
        )
    facts.append(
        f"guard on: blast radius 0, {guarded['detections']} denials, "
        f"{guarded['completed']}/{guarded['messages']} committed"
    )

    unguarded = by_mode["attack-unguarded"]
    if unguarded["blast_radius"] < 1:
        raise ReproError(
            "unguarded attack corrupted nothing — the figure's threat "
            "is vacuous"
        )
    if not unguarded["detections"]:
        raise ReproError("unguarded attack evaded the declared-writer audit")
    facts.append(
        f"guard off: blast radius {unguarded['blast_radius']} "
        f"({unguarded['detections']} detections)"
    )
    return facts
