"""The PBFT message log: slots, certificates, and garbage collection.

One :class:`Slot` per sequence number accumulates the pre-prepare and the
prepare/commit votes; :class:`MessageLog` tracks the watermark window and
truncates below the stable checkpoint.  Quorum sizes follow PBFT: with
``n = 3f + 1`` replicas a *prepared certificate* is the pre-prepare plus
``2f`` matching prepares from distinct backups, and a *committed
certificate* is ``2f + 1`` matching commits (the replica's own included).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.bft.messages import Commit, PrePrepare, Prepare
from repro.errors import BftError

__all__ = ["Slot", "MessageLog"]


class Slot:
    """Protocol state for one (view, sequence) assignment."""

    def __init__(self, seq: int):
        self.seq = seq
        self.pre_prepare: Optional[PrePrepare] = None
        self.prepares: Dict[str, Prepare] = {}
        self.commits: Dict[str, Commit] = {}
        self.prepared = False
        self.committed = False
        self.executed = False

    def record_pre_prepare(self, message: PrePrepare) -> None:
        """Accept the leader's proposal.

        A pre-prepare from a *newer* view supersedes one left behind by an
        older view (the slot restarts its certificates); a conflicting
        digest within the *same* view is equivocation and is rejected; a
        committed slot can never change its digest.
        """
        if self.pre_prepare is None:
            self.pre_prepare = message
            return
        if self.committed and message.digest != self.pre_prepare.digest:
            raise BftError(
                f"slot {self.seq}: committed digest cannot be replaced"
            )
        if message.view > self.pre_prepare.view:
            self.pre_prepare = message
            self.prepared = self.prepared and self.committed
            return
        if (
            message.view == self.pre_prepare.view
            and message.digest != self.pre_prepare.digest
        ):
            raise BftError(
                f"slot {self.seq}: conflicting pre-prepare in view "
                f"{message.view} (equivocation)"
            )
        # Same view and digest, or a stale older view: keep what we have.

    def record_prepare(self, message: Prepare) -> None:
        """Record a backup's prepare vote (one per replica)."""
        self.prepares[message.replica_id] = message

    def record_commit(self, message: Commit) -> None:
        """Record a commit vote (one per replica)."""
        self.commits[message.replica_id] = message

    def matching_prepares(self, view: int, digest: bytes) -> int:
        """Prepare votes matching (view, digest)."""
        return sum(
            1
            for p in self.prepares.values()
            if p.view == view and p.digest == digest
        )

    def matching_commits(self, view: int, digest: bytes) -> int:
        """Commit votes matching (view, digest)."""
        return sum(
            1
            for c in self.commits.values()
            if c.view == view and c.digest == digest
        )

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (
                ("P", self.prepared),
                ("C", self.committed),
                ("X", self.executed),
            )
            if on
        )
        return f"<Slot {self.seq} [{flags or '-'}]>"


class MessageLog:
    """All slots between the watermarks, plus checkpoint bookkeeping."""

    def __init__(self, f: int, window: int = 256):
        if window < 1:
            raise BftError("log window must be >= 1")
        self.f = f
        self.window = window
        self.slots: Dict[int, Slot] = {}
        #: Highest sequence number covered by a stable checkpoint.
        self.stable_seq = 0
        #: Checkpoint votes: seq -> digest -> set of replica ids.
        self.checkpoint_votes: Dict[int, Dict[bytes, Set[str]]] = {}

    @property
    def low_watermark(self) -> int:
        """Sequence numbers at or below this are garbage-collected."""
        return self.stable_seq

    @property
    def high_watermark(self) -> int:
        """Highest sequence number currently accepted."""
        return self.stable_seq + self.window

    def in_window(self, seq: int) -> bool:
        """Whether ``seq`` is between the watermarks."""
        return self.low_watermark < seq <= self.high_watermark

    def slot(self, seq: int) -> Slot:
        """Get (or create) the slot for ``seq``."""
        if not self.in_window(seq):
            raise BftError(
                f"seq {seq} outside watermarks "
                f"({self.low_watermark}, {self.high_watermark}]"
            )
        existing = self.slots.get(seq)
        if existing is None:
            existing = Slot(seq)
            self.slots[seq] = existing
        return existing

    # -- quorum checks ---------------------------------------------------

    def prepared_quorum(self) -> int:
        """Prepares needed besides the pre-prepare (2f)."""
        return 2 * self.f

    def committed_quorum(self) -> int:
        """Total matching commits needed (2f + 1)."""
        return 2 * self.f + 1

    def check_prepared(self, seq: int, view: int) -> bool:
        """Does ``seq`` hold a prepared certificate in ``view``?"""
        slot = self.slots.get(seq)
        if slot is None or slot.pre_prepare is None:
            return False
        if slot.pre_prepare.view != view:
            return False
        return (
            slot.matching_prepares(view, slot.pre_prepare.digest)
            >= self.prepared_quorum()
        )

    def check_committed(self, seq: int, view: int) -> bool:
        """Does ``seq`` hold a committed certificate in ``view``?"""
        slot = self.slots.get(seq)
        if slot is None or slot.pre_prepare is None:
            return False
        return (
            slot.matching_commits(view, slot.pre_prepare.digest)
            >= self.committed_quorum()
        )

    def prepared_evidence(self) -> Tuple[Tuple[int, int, bytes, tuple], ...]:
        """(seq, view, digest, batch) for every prepared slot above the
        stable checkpoint — the payload of a VIEW-CHANGE message."""
        evidence = []
        for seq in sorted(self.slots):
            slot = self.slots[seq]
            if slot.pre_prepare is None or seq <= self.stable_seq:
                continue
            view = slot.pre_prepare.view
            if slot.prepared or self.check_prepared(seq, view):
                evidence.append(
                    (seq, view, slot.pre_prepare.digest, slot.pre_prepare.batch)
                )
        return tuple(evidence)

    # -- checkpoints ---------------------------------------------------------

    def record_checkpoint_vote(
        self, seq: int, state_digest: bytes, replica_id: str
    ) -> bool:
        """Record a checkpoint vote; True once it becomes *stable*
        (2f + 1 matching votes) and the log was truncated."""
        votes = self.checkpoint_votes.setdefault(seq, {}).setdefault(
            state_digest, set()
        )
        votes.add(replica_id)
        if len(votes) >= self.committed_quorum() and seq > self.stable_seq:
            self._truncate(seq)
            return True
        return False

    def _truncate(self, stable_seq: int) -> None:
        self.stable_seq = stable_seq
        self.slots = {s: slot for s, slot in self.slots.items() if s > stable_seq}
        self.checkpoint_votes = {
            s: votes for s, votes in self.checkpoint_votes.items() if s > stable_seq
        }

    def install_stable(self, seq: int) -> None:
        """Adopt ``seq`` as the stable checkpoint (state transfer).

        Used when a restarted or lagging replica installs a verified
        checkpoint fetched from peers rather than one it voted for; the
        watermarks jump forward and everything at or below ``seq`` is
        garbage-collected.
        """
        if seq < self.stable_seq:
            raise BftError(
                f"cannot move stable checkpoint backwards "
                f"({self.stable_seq} -> {seq})"
            )
        if seq > self.stable_seq:
            self._truncate(seq)

    def __repr__(self) -> str:
        return (
            f"<MessageLog stable={self.stable_seq} slots={len(self.slots)} "
            f"window={self.window}>"
        )
