"""Seeded protocol mutants: known-broken builds the explorer must catch.

Each mutant is a :class:`~repro.bft.replica.Replica` subclass with one
deliberate protocol bug.  The self-test deploys a mutant on every
correct replica (a buggy build shipped fleet-wide), explores, and must
find + shrink a violating schedule — the end-to-end check that the
exploration-oracle-shrinker pipeline actually detects protocol bugs
rather than vacuously passing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Type

from repro.bft.onesided import OneSidedReplica
from repro.bft.replica import Replica

__all__ = [
    "CommitQuorumOffByOneReplica",
    "OneSidedGuardOffReplica",
    "MUTANTS",
]


class CommitQuorumOffByOneReplica(Replica):
    """Commits one vote early: quorum ``2f`` instead of ``2f + 1``.

    The classic off-by-one a refactor of the quorum arithmetic could
    introduce.  With only ``2f`` signers the commit certificate no
    longer intersects every other quorum in an honest replica, so the
    auditors' ``bft.commit-quorum`` check (and, under the right
    schedule, divergence) must fire on every commit.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        log = self.log
        honest_quorum = log.committed_quorum

        def buggy_quorum() -> int:
            return max(1, honest_quorum() - 1)

        # Patch the instance, not the class: the shared MessageLog type
        # keeps its honest arithmetic for every non-mutant replica.
        log.committed_quorum = buggy_quorum  # type: ignore[method-assign]


class OneSidedGuardOffReplica(OneSidedReplica):
    """Ships the one-sided fast path with its permission guard disabled.

    The bug a refactor of the region-setup path could introduce: the
    rings are registered with plain ``REMOTE_WRITE`` access bits and the
    per-peer grant table is never armed, so any replica holding the
    rkeys can write anywhere.  Against a scenario with a
    :class:`~repro.bft.byzantine.CompromisedRkeyReplica` member the
    forged leader proposals now *land* instead of being denied, and the
    declared-writer audit (``rdma.unauthorized-write`` with a
    ``declared_writer`` detail) must call out every landed byte.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Per-instance config copy: the scenario's shared BftConfig (and
        # every non-mutant replica) keeps the guard armed.
        self.config = replace(self.config, onesided_guard=False)


#: Mutants addressable from the CLI / self-test.
MUTANTS: Dict[str, Type[Replica]] = {
    "commit-quorum-off-by-one": CommitQuorumOffByOneReplica,
    "onesided-guard-off": OneSidedGuardOffReplica,
}
