"""Two-sided SEND/RECV semantics: matching, completions, RNR, signaling."""

import pytest

from repro.errors import RdmaError
from repro.rdma import Opcode, QpCapabilities, QpState, WcStatus

from tests.rdma.conftest import RdmaPair, recv_wr, send_wr


def test_send_delivers_into_posted_recv_buffer(rig):
    src = rig.register("left", 1024, fill=b"rdma says hi")
    dst = rig.register("right", 1024)
    rig.right_qp.post_recv(recv_wr(1, dst))
    rig.left_qp.post_send(send_wr(10, src, length=12))
    wcs = rig.poll_until(rig.right_recv_cq)
    assert len(wcs) == 1
    assert wcs[0].ok
    assert wcs[0].opcode is Opcode.RECV
    assert wcs[0].byte_len == 12
    assert bytes(dst.buffer[:12]) == b"rdma says hi"


def test_sender_gets_signaled_completion(rig):
    src = rig.register("left", 64, fill=b"x" * 64)
    dst = rig.register("right", 64)
    rig.right_qp.post_recv(recv_wr(1, dst))
    rig.left_qp.post_send(send_wr(7, src))
    wcs = rig.poll_until(rig.left_send_cq)
    assert len(wcs) == 1
    assert wcs[0].wr_id == 7
    assert wcs[0].status is WcStatus.SUCCESS
    assert wcs[0].opcode is Opcode.SEND


def test_multi_packet_message_reassembles(rig):
    size = 20_000  # > 4 MTUs
    payload = bytes(i % 256 for i in range(size))
    src = rig.register("left", size, fill=payload)
    dst = rig.register("right", size)
    rig.right_qp.post_recv(recv_wr(1, dst))
    rig.left_qp.post_send(send_wr(11, src))
    wcs = rig.poll_until(rig.right_recv_cq)
    assert wcs[0].byte_len == size
    assert bytes(dst.buffer) == payload


def test_sends_match_recvs_in_order(rig):
    src = rig.register("left", 64)
    dst_a = rig.register("right", 64)
    dst_b = rig.register("right", 64)
    rig.right_qp.post_recv_batch([recv_wr(1, dst_a), recv_wr(2, dst_b)])
    src.buffer[:1] = b"A"
    rig.left_qp.post_send(send_wr(10, src, length=1))
    wcs = rig.poll_until(rig.right_recv_cq)
    assert wcs[0].wr_id == 1
    assert bytes(dst_a.buffer[:1]) == b"A"
    src.buffer[:1] = b"B"
    rig.left_qp.post_send(send_wr(11, src, length=1))
    wcs = rig.poll_until(rig.right_recv_cq)
    assert wcs[0].wr_id == 2
    assert bytes(dst_b.buffer[:1]) == b"B"


def test_inline_send_does_not_touch_source_after_post(rig):
    dst = rig.register("right", 64)
    rig.right_qp.post_recv(recv_wr(1, dst))
    payload = bytearray(b"inline-data!")
    rig.left_qp.post_send(send_wr(5, None, inline=bytes(payload)))
    payload[:] = b"????????????"  # mutate after posting: must not matter
    wcs = rig.poll_until(rig.right_recv_cq)
    assert bytes(dst.buffer[:12]) == b"inline-data!"
    assert wcs[0].byte_len == 12


def test_inline_beyond_max_inline_rejected(rig):
    with pytest.raises(RdmaError, match="max_inline"):
        rig.left_qp.post_send(send_wr(5, None, inline=b"z" * 10_000))


def test_rnr_when_no_recv_posted_then_recovers(rig):
    src = rig.register("left", 64, fill=b"patience")
    dst = rig.register("right", 64)
    rig.left_qp.post_send(send_wr(3, src, length=8))
    rig.run_for(50e-6)  # no recv posted yet: sender is in RNR backoff
    assert rig.right_recv_cq.poll() == []
    rig.right_qp.post_recv(recv_wr(1, dst))
    wcs = rig.poll_until(rig.right_recv_cq)
    assert wcs[0].ok
    assert bytes(dst.buffer[:8]) == b"patience"


def test_rnr_retries_exhausted_errors_qp():
    rig = RdmaPair(
        caps=QpCapabilities(rnr_retry=2, rnr_timer=20e-6, retry_timeout=10e-3)
    )
    src = rig.register("left", 64)
    rig.left_qp.post_send(send_wr(3, src, length=8))
    rig.run_for(20e-3)  # never post a recv
    assert rig.left_qp.state is QpState.ERROR
    wcs = rig.left_send_cq.poll()
    assert len(wcs) == 1
    assert wcs[0].status is WcStatus.RNR_RETRY_EXC_ERR


def test_message_longer_than_recv_buffer_is_an_error(rig):
    src = rig.register("left", 8192, fill=b"m" * 8192)
    dst = rig.register("right", 128)
    rig.right_qp.post_recv(recv_wr(1, dst))
    rig.left_qp.post_send(send_wr(9, src))
    wcs = rig.poll_until(rig.right_recv_cq)
    assert wcs[0].status is WcStatus.LOC_LEN_ERR
    rig.run_for(1e-3)
    assert rig.right_qp.state is QpState.ERROR
    assert rig.left_qp.state is QpState.ERROR


def test_send_queue_overflow_rejected():
    rig = RdmaPair(caps=QpCapabilities(max_send_wr=2))
    src = rig.register("left", 64)
    # Unsignaled WRs never free their slots without a signaled completion.
    rig.left_qp.post_send(send_wr(1, src, length=8, signaled=False))
    rig.left_qp.post_send(send_wr(2, src, length=8, signaled=False))
    with pytest.raises(RdmaError, match="send queue full"):
        rig.left_qp.post_send(send_wr(3, src, length=8, signaled=False))


def test_recv_queue_overflow_rejected():
    rig = RdmaPair(caps=QpCapabilities(max_recv_wr=2))
    dst = rig.register("right", 64)
    rig.right_qp.post_recv(recv_wr(1, dst))
    rig.right_qp.post_recv(recv_wr(2, dst))
    with pytest.raises(RdmaError, match="receive queue full"):
        rig.right_qp.post_recv(recv_wr(3, dst))


def test_selective_signaling_frees_slots_on_signaled_completion():
    rig = RdmaPair(caps=QpCapabilities(max_send_wr=4))
    src = rig.register("left", 64, fill=b"s" * 64)
    dst = rig.register("right", 64)
    for i in range(4):
        rig.right_qp.post_recv(recv_wr(i, dst))
    # Three unsignaled, one signaled: the signaled completion releases all.
    rig.left_qp.post_send(send_wr(1, src, length=4, signaled=False))
    rig.left_qp.post_send(send_wr(2, src, length=4, signaled=False))
    rig.left_qp.post_send(send_wr(3, src, length=4, signaled=False))
    rig.left_qp.post_send(send_wr(4, src, length=4, signaled=True))
    wcs = rig.poll_until(rig.left_send_cq)
    assert [w.wr_id for w in wcs] == [4]  # exactly one CQE
    assert rig.left_qp.send_queue_free == 4  # all four slots recycled


def test_unsignaled_only_never_frees_slots():
    rig = RdmaPair(caps=QpCapabilities(max_send_wr=2))
    src = rig.register("left", 64)
    dst = rig.register("right", 64)
    rig.right_qp.post_recv_batch([recv_wr(1, dst), recv_wr(2, dst)])
    rig.left_qp.post_send(send_wr(1, src, length=4, signaled=False))
    rig.left_qp.post_send(send_wr(2, src, length=4, signaled=False))
    rig.run_for(5e-3)  # both delivered and ACKed...
    assert rig.left_qp.send_queue_free == 0  # ...but slots still occupied


def test_post_send_before_connect_raises():
    rig = RdmaPair.__new__(RdmaPair)  # build a partial rig manually
    from repro.net import Fabric
    from repro.rdma import RdmaDevice
    from repro.sim import Environment

    env = Environment()
    fabric = Fabric(env)
    fabric.add_host("solo")
    device = RdmaDevice(fabric.host("solo"))
    pd = device.alloc_pd()
    cq = device.create_cq()
    qp = device.create_qp(pd, cq, cq)
    buffer = bytearray(64)
    mr = device.reg_mr(pd, buffer)
    with pytest.raises(RdmaError, match="post_send in state RESET"):
        qp.post_send(send_wr(1, mr))


def test_batch_post_recv_counts_against_capacity():
    rig = RdmaPair(caps=QpCapabilities(max_recv_wr=8))
    dst = rig.register("right", 64)
    rig.right_qp.post_recv_batch([recv_wr(i, dst) for i in range(8)])
    assert rig.right_qp.recv_queue_depth == 8
    with pytest.raises(RdmaError, match="receive queue full"):
        rig.right_qp.post_recv(recv_wr(99, dst))


def test_send_to_foreign_pd_mr_rejected(rig):
    foreign_pd = rig.left.alloc_pd()
    buffer = bytearray(64)
    mr = rig.left.reg_mr(foreign_pd, buffer)
    with pytest.raises(RdmaError, match="foreign PD"):
        rig.left_qp.post_send(send_wr(1, mr))


def test_zero_length_send(rig):
    src = rig.register("left", 16)
    dst = rig.register("right", 16)
    rig.right_qp.post_recv(recv_wr(1, dst))
    rig.left_qp.post_send(send_wr(2, src, length=0))
    wcs = rig.poll_until(rig.right_recv_cq)
    assert wcs[0].ok
    assert wcs[0].byte_len == 0


def test_loopback_qp_rejected(rig):
    pd = rig.left.alloc_pd()
    cq = rig.left.create_cq()
    qp = rig.left.create_qp(pd, cq, cq)
    with pytest.raises(RdmaError, match="loopback"):
        qp.connect("left", 999)
