"""Profile scenarios: committed baselines, capture determinism, attribution."""

import json
import os

import pytest

from repro.bench.profiles import (
    PROFILE_SCENARIOS,
    attribute_figure,
    capture_observability,
    capture_profile,
    profile_path,
    timeseries_path,
    write_observability,
)
from repro.errors import ReproError
from repro.obs import load_profile_document
from repro.obs.sampler import write_json_atomic

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
BASELINE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines")


def test_every_gate_figure_has_a_scenario():
    assert PROFILE_SCENARIOS == (
        "fig3", "fig4", "overload", "onesided", "cop", "chaos"
    )


def test_unknown_figure_rejected():
    with pytest.raises(ReproError, match="no profile scenario"):
        capture_profile("fig9")


def test_paths():
    assert profile_path("d", "fig3") == os.path.join("d", "PROFILE_fig3.json")
    assert timeseries_path("d", "fig3") == os.path.join(
        "d", "TIMESERIES_fig3.json"
    )


@pytest.mark.parametrize("figure", PROFILE_SCENARIOS)
def test_committed_profile_baselines_exist(figure):
    """Every scenario has a committed, schema-valid profile."""
    document = load_profile_document(profile_path(BASELINE_DIR, figure))
    assert document["figure"] == figure
    assert document["traces"] > 0
    assert document["nodes"]


def test_fig3_capture_matches_committed_baseline():
    """The scenario is deterministic: a fresh capture is bit-identical."""
    fresh = capture_profile("fig3")
    committed = load_profile_document(profile_path(BASELINE_DIR, "fig3"))
    assert json.dumps(fresh, sort_keys=True) == json.dumps(
        committed, sort_keys=True
    )


def test_capture_with_timeseries():
    profile, timeseries = capture_observability("fig3", with_timeseries=True)
    assert profile["figure"] == "fig3"
    assert timeseries["figure"] == "fig3"
    assert timeseries["samples"]
    assert any(m.startswith("host.client.cpu") for m in timeseries["metrics"])


def test_write_observability_artifacts(tmp_path):
    paths = write_observability("fig3", str(tmp_path))
    assert paths == [
        profile_path(str(tmp_path), "fig3"),
        timeseries_path(str(tmp_path), "fig3"),
    ]
    for path in paths:
        assert os.path.exists(path)


class TestAttributeFigure:
    def test_missing_baseline_explains_itself(self, tmp_path):
        lines = attribute_figure("fig3", str(tmp_path))
        assert len(lines) == 1
        assert "no committed profile" in lines[0]

    def test_detects_inflated_layer(self, tmp_path):
        """A doctored baseline makes the real capture read as a regression."""
        fresh = capture_profile("fig3")
        doctored = json.loads(json.dumps(fresh))
        victim = max(
            doctored["nodes"], key=lambda n: doctored["nodes"][n]["mean_us"]
        )
        doctored["nodes"][victim]["mean_us"] *= 0.5
        write_json_atomic(doctored, profile_path(str(tmp_path), "fig3"))
        lines = attribute_figure("fig3", str(tmp_path), fresh=fresh)
        assert any(f"#1 {victim}" in line for line in lines)

    def test_identical_profiles_report_no_movement(self, tmp_path):
        fresh = capture_profile("fig3")
        write_json_atomic(fresh, profile_path(str(tmp_path), "fig3"))
        lines = attribute_figure("fig3", str(tmp_path), fresh=fresh)
        assert any("no critical-path node moved" in line for line in lines)
