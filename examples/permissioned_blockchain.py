#!/usr/bin/env python3
"""A permissioned blockchain ordered by BFT consensus over RDMA.

The paper's motivating deployment (Section I): replicas of a permissioned
blockchain placed inside a data center, using a Byzantine agreement
protocol — not proof-of-work — to order transactions, with RDMA cutting
the agreement latency.  Every replica builds an identical hash-linked
chain, and a sealed block is final (no forks).

Run:  python examples/permissioned_blockchain.py
"""

from repro.bft import BftCluster, BftConfig
from repro.chain import Ledger


def main() -> None:
    cluster = BftCluster(
        transport="rubin",
        config=BftConfig(view_change_timeout=50e-3, batch_delay=50e-6),
        app_factory=Ledger,
        num_clients=2,
    )
    cluster.start()
    env = cluster.env
    print("permissioned chain: 4 validators, BFT-ordered, RDMA transport\n")

    transfers = [
        b"alice->bob:30",
        b"bob->carol:12",
        b"carol->dave:7",
        b"dave->alice:3",
    ]
    for i, transfer in enumerate(transfers):
        client = cluster.client(i % 2)  # two submitting clients
        event = client.invoke(Ledger.tx(transfer))
        result = env.run(until=event)
        print(f"  tx {transfer.decode():<18} -> {result.decode()}")

    print("\nsealing block 0...")
    block_hash = cluster.invoke_and_wait(Ledger.seal())
    print(f"  block hash: {block_hash.hex()}")

    for transfer in (b"alice->eve:5", b"eve->bob:2"):
        cluster.invoke_and_wait(Ledger.tx(transfer))
    print("sealing block 1...")
    tip = cluster.invoke_and_wait(Ledger.seal())
    print(f"  block hash: {tip.hex()}")

    cluster.run_for(20e-3)  # let the final commits land on every replica
    print("\nper-validator chain state:")
    for replica_id, ledger in sorted(cluster.apps.items()):
        print(
            f"  {replica_id}: height={ledger.height} "
            f"tip={ledger.tip_hash().hex()[:16]} "
            f"links_ok={ledger.verify_chain()}"
        )
    tips = {ledger.tip_hash() for ledger in cluster.apps.values()}
    assert tips == {tip}, "validators forked!"
    print(
        "\nconsensus finality: every validator holds the identical chain ✓"
    )


if __name__ == "__main__":
    main()
