"""Exception hierarchy shared by every subsystem in :mod:`repro`.

Each simulated subsystem (network, TCP stack, RDMA verbs, RUBIN, BFT) defines
its own error subtypes, but all of them derive from :class:`ReproError` so
callers can catch "anything this library raises" with a single clause while
still being able to discriminate precisely.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "NetworkError",
    "TcpError",
    "RdmaError",
    "RubinError",
    "BftError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (double triggers, bad yields...)."""


class NetworkError(ReproError):
    """Errors in the simulated hardware substrate (links, NICs, hosts)."""


class TcpError(NetworkError):
    """Errors in the simulated TCP/IP stack (resets, closed sockets...)."""


class RdmaError(NetworkError):
    """Errors in the simulated RDMA verbs layer (QP states, MR access...)."""


class RubinError(ReproError):
    """Errors in the RUBIN framework (selector/channel misuse)."""


class BftError(ReproError):
    """Errors in the BFT protocol core (bad messages, broken invariants)."""


class ConfigurationError(ReproError):
    """A configuration object was constructed with inconsistent values."""
