"""Audit memory bounds: long campaigns must not grow without limit.

The explorer replays thousands of schedules against auditing managers;
violation lists and post-mortem buffers are therefore capped
(drop-oldest) with explicit drop counters, and managers can be released
from the global active list once their run is scored.
"""

import glob

import pytest

from repro.audit import (
    AuditConfig,
    AuditError,
    AuditManager,
    get_audit,
    install_audit,
    release_audit,
)
from repro.sim import Environment


def _trip(manager, count, rule="bft.test-rule"):
    for index in range(count):
        manager.violation(rule, layer="bft", subject=f"r{index}", index=index)


class TestViolationCap:
    def test_oldest_violations_dropped_past_the_cap(self):
        manager = AuditManager(
            config=AuditConfig(max_violations=4, max_postmortems=64),
            expect_violations=True,
        )
        _trip(manager, 10)
        assert len(manager.violations) == 4
        assert manager.violations_dropped == 6
        # Drop-oldest: the newest violations survive.
        kept = [dict(v.detail)["index"] for v in manager.violations]
        assert kept == [6, 7, 8, 9]

    def test_cap_must_be_positive(self):
        with pytest.raises(AuditError):
            AuditConfig(max_violations=0)
        with pytest.raises(AuditError):
            AuditConfig(max_postmortems=0)


class TestPostmortemCap:
    def test_oldest_postmortems_dropped_past_the_cap(self):
        manager = AuditManager(
            config=AuditConfig(max_violations=64, max_postmortems=2),
            expect_violations=True,
        )
        for reason in ("first", "second", "third"):
            manager.dump_postmortem(reason)
        assert len(manager.postmortems) == 2
        assert manager.postmortems_dropped == 1
        assert [d["reason"] for d in manager.postmortems] == [
            "second",
            "third",
        ]

    def test_dump_file_numbering_survives_dropped_buffers(self, tmp_path):
        """On-disk post-mortems are numbered by the running total, so
        dropping in-memory buffers never overwrites earlier files."""
        manager = AuditManager(
            config=AuditConfig(
                max_violations=64,
                max_postmortems=2,
                dump_dir=str(tmp_path),
            ),
            name="bounds",
            expect_violations=True,
        )
        for reason in ("a", "b", "c", "d"):
            manager.dump_postmortem(reason)
        paths = sorted(glob.glob(f"{tmp_path}/*.json"))
        assert len(paths) == 4
        assert len(manager.postmortems) == 2

    def test_violations_past_the_cap_still_dump_postmortems(self):
        manager = AuditManager(
            config=AuditConfig(max_violations=2, max_postmortems=3),
            expect_violations=True,
        )
        _trip(manager, 5)
        assert len(manager.violations) == 2
        assert len(manager.postmortems) == 3
        assert manager.postmortems_dropped == 2


class TestRelease:
    def test_release_removes_the_manager_from_the_active_list(self):
        env = Environment()
        manager = AuditManager(expect_violations=True)
        install_audit(env, manager)
        assert get_audit(env) is manager
        release_audit(manager)
        from repro.audit.core import _ACTIVE

        assert manager not in _ACTIVE
        # Releasing twice is harmless.
        release_audit(manager)
