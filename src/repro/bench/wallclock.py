"""Wall-clock throughput harness (``python -m repro.bench --wallclock``).

Everything else in :mod:`repro.bench` measures *modeled* time; this module
measures the *simulator itself*: how many kernel events per host second it
retires, how many host seconds one Figure-3/Figure-4 sweep costs, and how
many bytes the host CPU copies per delivered link frame (via the
:mod:`repro.sim.copystats` probe).  The point is to keep the reproduction
usable as it grows — the ROADMAP's large sweeps are gated by simulator
wall-clock, not by modeled latency — and to stop future PRs from quietly
re-introducing copies or per-event allocation.

Two passes per run:

1. **Timed pass** (probe *off*): run the Fig-3 and Fig-4 sweeps under
   ``time.perf_counter`` and report host seconds and events/sec (total
   kernel events scheduled, from each run's final event id).
2. **Copy pass** (probe *on*, untimed): run one representative workload
   per data path and report bytes-copied-per-delivered-frame.

The copy metrics are exactly reproducible (the schedule is deterministic
and the probe never feeds back into it), so the gate holds them to a tight
band.  The timing metrics depend on the machine: the baseline records a
host fingerprint, and when the current host differs the gate *warns*
instead of failing.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import platform
import time
from typing import Any, Dict, List, Mapping, Tuple

from repro.bench.echo import run_echo
from repro.bench.figures import FIG3_PAYLOADS, FIG4_PAYLOADS, fig3_sweep, fig4_sweep
from repro.bench.selector_echo import reptor_echo
from repro.errors import ReproError
from repro.sim.copystats import COPYSTATS

__all__ = [
    "SCHEMA",
    "WALLCLOCK_TOLERANCES",
    "host_fingerprint",
    "run_wallclock",
    "check_wallclock",
    "write_wallclock_baseline",
    "load_wallclock_baseline",
    "append_wallclock_history",
]

SCHEMA = "wallclock-v1"

#: Messages per sweep point.  Small enough for a CI gate step, large
#: enough that per-run setup cost does not dominate the rate metrics.
FIG3_MESSAGES = 10
FIG4_MESSAGES = 30

#: Copy-accounting workloads: one representative point per data path.
#: (key, callable) — each returns an EchoResult; the probe snapshot taken
#: around the call is the metric source.
def _copy_workloads():
    return (
        ("fig3_rdma", lambda: run_echo("rdma_channel", 10 * 1024, 20)),
        ("fig3_tcp", lambda: run_echo("tcp", 10 * 1024, 20)),
        ("fig4_rubin", lambda: reptor_echo("rubin", 20 * 1024, 30)),
        ("fig4_nio", lambda: reptor_echo("nio", 20 * 1024, 30)),
    )


#: metric -> (relative tolerance, direction, host_dependent).  Positive
#: direction = regresses when it grows; negative = when it shrinks.
#: Host-dependent metrics are only *warned* about when the baseline was
#: recorded on different hardware (fingerprint mismatch).
WALLCLOCK_TOLERANCES: Dict[str, Tuple[float, int, bool]] = {
    "fig3.events_per_sec": (0.50, -1, True),
    "fig3.host_seconds": (1.00, +1, True),
    "fig4.events_per_sec": (0.50, -1, True),
    "fig4.host_seconds": (1.00, +1, True),
    "copies.fig3_rdma.copied_per_frame": (0.05, +1, False),
    "copies.fig3_tcp.copied_per_frame": (0.05, +1, False),
    "copies.fig4_rubin.copied_per_frame": (0.05, +1, False),
    "copies.fig4_nio.copied_per_frame": (0.05, +1, False),
}


def host_fingerprint() -> str:
    """A short stable id for "the same class of machine".

    Deliberately coarse (architecture, python version, core count): the
    gate should fail on a regression introduced by code, not on a
    developer running the gate on a laptop instead of the CI runner.
    """
    raw = "|".join(
        (
            platform.machine(),
            platform.system(),
            platform.python_version(),
            str(os.cpu_count() or 0),
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


def _timed_sweep(label: str, sweep) -> Dict[str, float]:
    """Run one sweep callable; return host seconds and event totals."""
    gc.collect()
    start = time.perf_counter()
    results = sweep()
    elapsed = time.perf_counter() - start
    events = sum(r.sim_events for r in results.values())
    return {
        "host_seconds": elapsed,
        "sim_events": float(events),
        "events_per_sec": events / elapsed if elapsed > 0 else 0.0,
    }


def run_wallclock(verbose: bool = False) -> Dict[str, Any]:
    """Run both passes; return the wallclock document (baseline schema)."""
    if COPYSTATS.enabled:
        raise ReproError("copy probe must be disabled before the timed pass")

    say = print if verbose else (lambda *_args, **_kw: None)

    say(f"  timed pass: fig3 sweep ({FIG3_MESSAGES} msgs/point)...")
    fig3 = _timed_sweep(
        "fig3", lambda: fig3_sweep(FIG3_MESSAGES, FIG3_PAYLOADS)
    )
    say(
        f"    {fig3['host_seconds']:.2f}s host, "
        f"{fig3['events_per_sec']:,.0f} events/sec"
    )
    say(f"  timed pass: fig4 sweep ({FIG4_MESSAGES} msgs/point)...")
    fig4 = _timed_sweep(
        "fig4", lambda: fig4_sweep(FIG4_MESSAGES, FIG4_PAYLOADS)
    )
    say(
        f"    {fig4['host_seconds']:.2f}s host, "
        f"{fig4['events_per_sec']:,.0f} events/sec"
    )

    copies: Dict[str, Dict[str, float]] = {}
    try:
        COPYSTATS.enabled = True
        for key, workload in _copy_workloads():
            COPYSTATS.reset()
            workload()
            snap = COPYSTATS.snapshot()
            copies[key] = snap
            say(
                f"  copy pass: {key}: "
                f"{snap['copied_per_frame']:,.0f} B copied/frame "
                f"({snap['copies']} copies, {snap['frames_delivered']} frames)"
            )
    finally:
        COPYSTATS.enabled = False
        COPYSTATS.reset()

    return {
        "schema": SCHEMA,
        "host": {
            "fingerprint": host_fingerprint(),
            "machine": platform.machine(),
            "system": platform.system(),
            "python": platform.python_version(),
            "cpus": os.cpu_count() or 0,
        },
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "fig3_messages": FIG3_MESSAGES,
        "fig4_messages": FIG4_MESSAGES,
        "fig3": fig3,
        "fig4": fig4,
        "copies": copies,
    }


def _metric(document: Mapping[str, Any], path: str) -> float:
    node: Any = document
    for part in path.split("."):
        node = node[part]
    return float(node)


def check_wallclock(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance_scale: float = 1.0,
) -> Tuple[bool, List[Dict[str, Any]]]:
    """Band-check ``fresh`` against ``baseline``.

    Returns ``(ok, checks)`` where each check dict carries metric,
    baseline/fresh values, the band, and whether it ``regressed`` or was
    merely ``warned`` (host-dependent metric on foreign hardware).
    """
    if tolerance_scale <= 0:
        raise ReproError("tolerance scale must be positive")
    same_host = (
        baseline.get("host", {}).get("fingerprint") == host_fingerprint()
    )
    checks: List[Dict[str, Any]] = []
    ok = True
    for metric, (tolerance, direction, host_dependent) in sorted(
        WALLCLOCK_TOLERANCES.items()
    ):
        try:
            baseline_value = _metric(baseline, metric)
        except (KeyError, TypeError):
            raise ReproError(f"wallclock baseline missing metric {metric!r}")
        fresh_value = _metric(fresh, metric)
        band = abs(baseline_value) * tolerance * tolerance_scale
        if direction > 0:
            out_of_band = fresh_value > baseline_value + band
        else:
            out_of_band = fresh_value < baseline_value - band
        enforced = not (host_dependent and not same_host)
        regressed = out_of_band and enforced
        if regressed:
            ok = False
        checks.append(
            {
                "metric": metric,
                "baseline": baseline_value,
                "fresh": fresh_value,
                "tolerance": tolerance * tolerance_scale,
                "direction": direction,
                "enforced": enforced,
                "regressed": regressed,
                "warned": out_of_band and not enforced,
            }
        )
    return ok, checks


def write_wallclock_baseline(document: Dict[str, Any], path: str) -> None:
    """Write the baseline JSON (pretty-printed, stable key order)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_wallclock_baseline(path: str) -> Dict[str, Any]:
    """Read and structurally validate a wallclock baseline."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if document.get("schema") != SCHEMA:
        raise ReproError(f"{path}: not a {SCHEMA} baseline document")
    for key in ("host", "fig3", "fig4", "copies"):
        if key not in document:
            raise ReproError(f"{path}: baseline missing {key!r}")
    return document


def append_wallclock_history(
    history_path: str, document: Dict[str, Any], checks: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Append one JSON line for this wallclock run; returns the entry."""
    entry = {
        "checked_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "kind": "wallclock",
        "ok": not any(c["regressed"] for c in checks),
        "host": document["host"]["fingerprint"],
        "metrics": {
            c["metric"]: c["fresh"] for c in checks
        },
        "regressions": [c for c in checks if c["regressed"]],
        "warnings": [c for c in checks if c["warned"]],
    }
    directory = os.path.dirname(history_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry
