"""One-call construction of a replicated BFT service in simulation.

Builds the fabric (hosts, cables), installs both network stacks, starts
Reptor endpoints over the chosen transport, wires the replica full mesh,
and connects clients — the boilerplate every example, test and benchmark
needs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type, Union

from repro.audit import (
    NULL_AUDIT,
    AuditConfig,
    AuditManager,
    ConsensusWatchdog,
    install_audit,
)
from repro.bft.client import BftClient
from repro.bft.config import BftConfig
from repro.bft.cop import CopClient, CopReplica
from repro.bft.replica import Replica
from repro.bft.statemachine import KeyValueStore, StateMachine
from repro.crypto import KeyStore
from repro.errors import BftError, ReproError
from repro.net import Fabric, TEN_GIGABIT
from repro.rdma import RdmaDevice
from repro.reptor import ReptorConfig, ReptorEndpoint
from repro.rubin import RubinConfig
from repro.sim import Environment
from repro.tcpstack import TcpStack
from repro.trace import MetricsRegistry, Tracer, install_tracer

__all__ = ["BftCluster"]

#: Port replicas listen on for peers and clients.
REPLICA_PORT = 6000


class BftCluster:
    """A complete simulated BFT deployment."""

    def __init__(
        self,
        transport: str = "rubin",
        config: Optional[BftConfig] = None,
        reptor_config: Optional[ReptorConfig] = None,
        rubin_config: Optional[RubinConfig] = None,
        app_factory: Callable[[], StateMachine] = KeyValueStore,
        replica_classes: Optional[Dict[str, Type[Replica]]] = None,
        default_replica_class: Optional[Type[Replica]] = None,
        client_class: Optional[Type[BftClient]] = None,
        num_clients: int = 1,
        bandwidth_bps: float = TEN_GIGABIT,
        propagation_delay: float = 1.5e-6,
        faulty_fabric: bool = False,
        tracer: Optional[Tracer] = None,
        audit: Union[bool, AuditConfig, AuditManager, None] = True,
    ):
        self.env = Environment()
        if tracer is not None:
            # Installed before any stack is built so every layer's
            # get_tracer() observes it from the first event on.
            install_tracer(self.env, tracer)
        # The audit manager likewise goes in before any stack exists so
        # the very first QP transition is already observed.  Pass False
        # to run the cluster entirely unaudited (NULL_AUDIT: hook sites
        # cost one attribute read and do nothing).
        self.watchdog: Optional[ConsensusWatchdog] = None
        if audit is False or audit is None:
            self.audit: Union[AuditManager, type(NULL_AUDIT)] = NULL_AUDIT
        else:
            if isinstance(audit, AuditManager):
                manager = audit
            elif isinstance(audit, AuditConfig):
                manager = AuditManager(config=audit)
            else:
                manager = AuditManager()
            install_audit(self.env, manager)
            self.audit = manager
            self.watchdog = ConsensusWatchdog(
                manager, self.env, self._outstanding_requests
            )
        if faulty_fabric:
            from repro.net.faults import FaultyFabric

            self.fabric = FaultyFabric(self.env)
        else:
            self.fabric = Fabric(self.env)
        self.config = config if config is not None else BftConfig()
        self.transport = transport
        self.reptor_config = (
            reptor_config if reptor_config is not None else ReptorConfig()
        )
        self.rubin_config = rubin_config
        self.keystore = KeyStore()
        self.app_factory = app_factory

        self.replica_ids = [f"r{i}" for i in range(self.config.n)]
        self.client_ids = [f"c{i}" for i in range(num_clients)]
        for name in self.replica_ids + self.client_ids:
            self.fabric.add_host(name)
        self.fabric.full_mesh(
            bandwidth_bps=bandwidth_bps, propagation_delay=propagation_delay
        )
        for name in self.replica_ids + self.client_ids:
            host = self.fabric.host(name)
            TcpStack(host)
            RdmaDevice(host)

        replica_classes = replica_classes or {}
        # COP deployments default to the multi-group replica and the
        # partition-aware client; at group_count == 1 the plain classes
        # keep historical schedules bit-identical.
        if default_replica_class is None:
            if self.config.onesided:
                from repro.bft.onesided import OneSidedReplica

                default_replica_class = OneSidedReplica
            else:
                default_replica_class = (
                    Replica if self.config.group_count == 1 else CopReplica
                )
        self.default_replica_class = default_replica_class
        if client_class is None:
            client_class = (
                BftClient if self.config.group_count == 1 else CopClient
            )
        self.client_class = client_class
        if self.audit.enabled:
            self.audit.bft.configure(
                self.config.f, group_count=self.config.group_count
            )
            if getattr(default_replica_class, "BYZANTINE", False) or any(
                getattr(cls, "BYZANTINE", False)
                for cls in replica_classes.values()
            ):
                # Deliberately faulty members are *supposed* to trip the
                # auditors; the conformance fixture must not fail the test.
                self.audit.expect_violations = True
        self.replicas: Dict[str, Replica] = {}
        self.apps: Dict[str, StateMachine] = {}
        self._crashed: set = set()
        for replica_id in self.replica_ids:
            endpoint = ReptorEndpoint(
                self.fabric.host(replica_id),
                transport,
                name=replica_id,
                config=self.reptor_config,
                keystore=self.keystore,
                rubin_config=self.rubin_config,
            )
            endpoint.listen(REPLICA_PORT)
            app = app_factory()
            self.apps[replica_id] = app
            cls = replica_classes.get(replica_id, self.default_replica_class)
            self.replicas[replica_id] = cls(
                replica_id,
                endpoint,
                list(self.replica_ids),
                app,
                config=self.config,
            )

        self.clients: Dict[str, BftClient] = {}
        for client_id in self.client_ids:
            endpoint = ReptorEndpoint(
                self.fabric.host(client_id),
                transport,
                name=client_id,
                config=self.reptor_config,
                keystore=self.keystore,
                rubin_config=self.rubin_config,
            )
            if issubclass(self.client_class, CopClient):
                self.clients[client_id] = self.client_class(
                    client_id,
                    endpoint,
                    list(self.replica_ids),
                    f=self.config.f,
                    group_count=self.config.group_count,
                    partitioner=self.config.partitioner,
                )
            else:
                self.clients[client_id] = self.client_class(
                    client_id,
                    endpoint,
                    list(self.replica_ids),
                    f=self.config.f,
                )
        self._started = False

    # -- startup ---------------------------------------------------------

    def start(self, deadline: float = 0.5) -> None:
        """Wire the replica mesh and connect all clients (blocking)."""
        if self._started:
            raise BftError("cluster already started")
        self._started = True
        done = []

        def wire():
            # Lower-id replicas dial higher-id peers (one link per pair).
            for i, a in enumerate(self.replica_ids):
                for b in self.replica_ids[i + 1 :]:
                    endpoint = self.replicas[a].endpoint
                    connection = yield endpoint.connect(
                        b, REPLICA_PORT, peer_name=b
                    )
                    self.replicas[a].attach_peer(b, connection)
            for client in self.clients.values():
                yield client.connect_all(REPLICA_PORT)
            done.append(True)

        self.env.process(wire(), name="cluster.wire")
        limit = self.env.now + deadline
        while not done:
            if self.env.peek() > limit:
                raise BftError("cluster wiring did not finish in time")
            self.env.step()
        if self.config.onesided:
            from repro.bft.onesided import wire_onesided

            wire_onesided(self)
        if self.watchdog is not None:
            self.watchdog.start()

    def _outstanding_requests(self) -> int:
        """Requests with armed deadlines on live replicas (watchdog input)."""
        total = 0
        for replica_id, replica in self.replicas.items():
            if replica_id in self._crashed or not replica.running:
                continue
            for pipeline in replica.group_pipelines():
                total += len(pipeline._request_deadlines)
        return total

    # -- crash / restart -------------------------------------------------------

    def _host_faults(self, name: str):
        host_controller = getattr(self.fabric, "host_controller", None)
        if host_controller is None:
            return None
        return host_controller(name)

    def crash_replica(self, replica_id: str) -> None:
        """Crash a replica: power its NIC off, then kill its processes.

        The NIC dies first so peers observe silence (retry-exhausted
        queue pairs), not clean connection shutdowns — the fault a real
        host crash presents.  Requires ``faulty_fabric=True`` for the
        power fault; without it only the processes stop.
        """
        if replica_id in self._crashed:
            raise BftError(f"{replica_id} is already crashed")
        replica = self.replicas[replica_id]
        controller = self._host_faults(replica_id)
        if controller is not None and not controller.crashed:
            controller.crash()
        replica.stop()
        self._crashed.add(replica_id)
        if self.audit.enabled:
            self.audit.on_replica_crash(replica_id)

    def restart_replica(
        self, replica_id: str, recover: bool = True
    ) -> Replica:
        """Restart a crashed replica with a blank state machine.

        Powers the NIC back on, builds a fresh endpoint + replica on the
        same host, and re-dials the peers this replica originally opened
        connections to (lower-id peers and clients re-reach it through
        their channel supervisors).  With ``recover=True`` the new
        replica immediately requests state transfer to catch up.
        """
        if replica_id not in self._crashed:
            raise BftError(f"{replica_id} is not crashed")
        controller = self._host_faults(replica_id)
        if controller is not None and controller.crashed:
            controller.restart()
        self._crashed.discard(replica_id)
        endpoint = ReptorEndpoint(
            self.fabric.host(replica_id),
            self.transport,
            name=replica_id,
            config=self.reptor_config,
            keystore=self.keystore,
            rubin_config=self.rubin_config,
        )
        endpoint.listen(REPLICA_PORT)
        app = self.app_factory()
        self.apps[replica_id] = app
        replica = self.default_replica_class(
            replica_id,
            endpoint,
            list(self.replica_ids),
            app,
            config=self.config,
            recover=recover,
        )
        self.replicas[replica_id] = replica
        if self.audit.enabled:
            # Resets the per-incarnation view-monotonicity tracking.
            self.audit.on_replica_restart(replica_id)

        def redial(peer: str):
            # Retry: right after a restart links may still be healing.
            for _ in range(50):
                try:
                    connection = yield endpoint.connect(
                        peer, REPLICA_PORT, peer_name=peer
                    )
                except ReproError:
                    yield self.env.timeout(2e-3)
                    continue
                replica.attach_peer(peer, connection)
                return

        for peer in self.replica_ids:
            if peer > replica_id:
                self.env.process(
                    redial(peer), name=f"cluster.redial.{replica_id}-{peer}"
                )
        return replica

    # -- convenience ----------------------------------------------------------

    def client(self, index: int = 0) -> BftClient:
        """The ``index``-th client."""
        return self.clients[self.client_ids[index]]

    def replica(self, replica_id: str) -> Replica:
        """Replica by id (``"r0"``...)."""
        return self.replicas[replica_id]

    @property
    def leader(self) -> Replica:
        """The current leader according to r0's view."""
        any_replica = self.replicas[self.replica_ids[0]]
        return self.replicas[any_replica.leader_of(any_replica.view)]

    def run_for(self, seconds: float) -> None:
        """Advance the simulation."""
        self.env.run(until=self.env.now + seconds)

    def invoke_and_wait(self, operation: bytes, client_index: int = 0) -> bytes:
        """Synchronous helper: submit one op and return its result."""
        event = self.client(client_index).invoke(operation)
        return self.env.run(until=event)

    def metrics_registry(self) -> MetricsRegistry:
        """Unified snapshot of every layer's counters and gauges.

        Assembles a fresh :class:`MetricsRegistry` over the cluster's
        current components (call again after crash/restart to pick up
        replacement endpoints) under hierarchical names:
        ``replica.<id>.*``, ``client.<id>.*``, ``endpoint.<id>.*``,
        ``host.<name>.cpu`` and ``link.<name>.*``.
        """
        registry = MetricsRegistry(name="cluster")
        if self.audit.enabled:
            registry.register_many(
                "audit",
                {
                    "violations": lambda a=self.audit: len(a.violations),
                    "events_recorded": lambda a=self.audit: a.recorder.total,
                    "events_dropped": lambda a=self.audit: a.recorder.dropped,
                    "max_cq_depth": (
                        lambda a=self.audit: a.resources.max_cq_depth
                    ),
                    "stalls_detected": (
                        lambda w=self.watchdog: (
                            w.stalls_detected if w is not None else 0
                        )
                    ),
                },
            )
        for replica_id in self.replica_ids:
            replica = self.replicas[replica_id]
            registry.register_many(
                f"replica.{replica_id}",
                {
                    "committed": lambda r=replica: r.committed_count,
                    "view_changes": lambda r=replica: r.view_changes_completed,
                    "state_transfers": (
                        lambda r=replica: r.state_transfers_completed
                    ),
                    "st_served": replica.state_transfers_served,
                    "st_bytes": replica.state_transfer_bytes,
                    "shed_requests": replica.shed_requests,
                    "rejoin_latency": replica.rejoin_latency,
                },
            )
            if hasattr(replica, "onesided_writes"):
                registry.register_many(
                    f"replica.{replica_id}.onesided",
                    {
                        "writes": replica.onesided_writes,
                        "records": replica.onesided_records,
                        "corrupted_slots": replica.onesided_corrupted_slots,
                        "fallbacks": replica.onesided_fallbacks,
                    },
                )
            endpoint_metrics = {
                "watermark_crossings": replica.endpoint.watermark_crossings,
                "backpressure_time": replica.endpoint.backpressure_time,
            }
            if self.transport == "rubin":
                # Aggregate transport-level stall counters across the
                # endpoint's channels (per-channel values stay available
                # on the channel objects for debugging).
                endpoint_metrics["credit_stalls"] = (
                    lambda r=replica: sum(
                        conn.channel.credit_stalls.value
                        for conn in r.endpoint.connections
                    )
                )
                endpoint_metrics["pool_stalls"] = (
                    lambda r=replica: sum(
                        conn.channel.pool_stalls.value
                        for conn in r.endpoint.connections
                    )
                )
            registry.register_many(
                f"endpoint.{replica_id}", endpoint_metrics
            )
            supervisor = replica.endpoint.supervisor
            if supervisor is not None:
                registry.register_many(
                    f"endpoint.{replica_id}.supervisor",
                    {
                        "reconnect_attempts": supervisor.reconnect_attempts,
                        "reconnects": supervisor.reconnects,
                        "abandons": supervisor.abandons,
                        "recovery_latency": supervisor.recovery_latency,
                    },
                )
        # Per-consensus-group aggregates (COP): committed batches, view
        # changes and the per-group ordering frontier, summed/maxed over
        # the replicas currently hosting that group's pipeline.
        for group in range(self.config.group_count):
            registry.register_many(
                f"bft.group.{group}",
                {
                    "committed": lambda g=group: sum(
                        p.committed_count
                        for r in self.replicas.values()
                        for p in r.group_pipelines()
                        if p.group == g
                    ),
                    "view_changes": lambda g=group: sum(
                        p.view_changes_completed
                        for r in self.replicas.values()
                        for p in r.group_pipelines()
                        if p.group == g
                    ),
                    "executed_seq": lambda g=group: max(
                        (
                            p.executed_seq
                            for r in self.replicas.values()
                            for p in r.group_pipelines()
                            if p.group == g
                        ),
                        default=0,
                    ),
                },
            )
        if self.config.onesided:
            # Cluster-wide fast-path aggregates (per-replica values stay
            # available under replica.<id>.onesided.*).
            registry.register_many(
                "bft.onesided",
                {
                    "writes": lambda: sum(
                        r.onesided_writes.value
                        for r in self.replicas.values()
                        if hasattr(r, "onesided_writes")
                    ),
                    "records": lambda: sum(
                        r.onesided_records.value
                        for r in self.replicas.values()
                        if hasattr(r, "onesided_records")
                    ),
                    "corrupted_slots": lambda: sum(
                        r.onesided_corrupted_slots.value
                        for r in self.replicas.values()
                        if hasattr(r, "onesided_corrupted_slots")
                    ),
                    "fallbacks": lambda: sum(
                        r.onesided_fallbacks.value
                        for r in self.replicas.values()
                        if hasattr(r, "onesided_fallbacks")
                    ),
                },
            )
        for client_id, client in sorted(self.clients.items()):
            registry.register_many(
                f"client.{client_id}",
                {
                    "invocations": lambda c=client: c.invocations,
                    "retransmissions": lambda c=client: c.retransmissions,
                    "busy_backoffs": lambda c=client: c.busy_backoffs,
                },
            )
        for host in self.fabric.hosts():
            registry.register(f"host.{host.name}.cpu", host.cpu.tracker)
            registry.register_many(
                f"host.{host.name}.nic",
                {
                    "rnr_naks": host.nic.rnr_naks,
                    "rnr_retries": host.nic.rnr_retries,
                    "rnr_exhausted": host.nic.rnr_exhausted,
                    "perm_grants": host.nic.perm_grants,
                    "perm_revokes": host.nic.perm_revokes,
                    "stale_access_denied": host.nic.stale_access_denied,
                },
            )
        for pair in sorted(self.fabric._cables):
            cable = self.fabric._cables[pair]
            for link in (cable.forward, cable.backward):
                registry.register_many(
                    f"link.{link.name}",
                    {
                        "utilization": link.tracker,
                        "frames_sent": link.frames_sent,
                        "frames_dropped": link.frames_dropped,
                        "bytes_sent": link.bytes_sent,
                    },
                    if_exists="suffix",
                )
        return registry

    def executed_sequences(self) -> Dict[str, int]:
        """Executed sequence number per replica (for convergence checks)."""
        return {rid: r.executed_seq for rid, r in self.replicas.items()}

    def merged_positions(self) -> Dict[str, int]:
        """Merged total-order execution position per replica (COP).

        Equals :meth:`executed_sequences` at ``group_count == 1``.
        """
        return {
            rid: r.global_executed_seq for rid, r in self.replicas.items()
        }

    def state_digests(self) -> Dict[str, bytes]:
        """Application state digest per replica."""
        return {rid: app.digest() for rid, app in self.apps.items()}

    def __repr__(self) -> str:
        return (
            f"<BftCluster n={self.config.n} transport={self.transport} "
            f"clients={len(self.clients)}>"
        )
