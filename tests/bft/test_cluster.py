"""End-to-end replication: agreement, execution, consistency, recovery."""

import pytest

from repro.bft import (
    BftCluster,
    BftConfig,
    CounterMachine,
    EquivocatingLeader,
    KeyValueStore,
    SilentReplica,
)


def make_cluster(transport="nio", **kwargs):
    defaults = dict(
        config=BftConfig(view_change_timeout=30e-3, batch_delay=50e-6),
        num_clients=1,
    )
    defaults.update(kwargs)
    cluster = BftCluster(transport=transport, **defaults)
    cluster.start()
    return cluster


@pytest.fixture(params=["nio", "rubin"])
def cluster(request):
    return make_cluster(request.param)


class TestHappyPath:
    def test_single_request_executes_everywhere(self, cluster):
        result = cluster.invoke_and_wait(b"PUT answer=42")
        assert result == b"OK"
        cluster.run_for(5e-3)  # let the last commits land everywhere
        for replica_id, app in cluster.apps.items():
            assert app.get("answer") == "42", replica_id

    def test_get_after_put(self, cluster):
        cluster.invoke_and_wait(b"PUT name=rubin")
        assert cluster.invoke_and_wait(b"GET name") == b"rubin"

    def test_sequential_requests_totally_ordered(self, cluster):
        for i in range(10):
            cluster.invoke_and_wait(f"PUT k{i}=v{i}".encode())
        cluster.run_for(10e-3)
        seqs = cluster.executed_sequences()
        assert len(set(seqs.values())) == 1, seqs
        digests = cluster.state_digests()
        assert len(set(digests.values())) == 1, "replica states diverged"

    def test_duplicate_request_not_reexecuted(self):
        cluster = make_cluster(app_factory=CounterMachine)
        client = cluster.client()
        result = cluster.invoke_and_wait(CounterMachine.add(5))
        assert int.from_bytes(result, "big", signed=True) == 5
        # Re-send the identical request (same timestamp): replicas must
        # reply from cache, not apply twice.
        from repro.bft.messages import Request, encode

        request = Request(client_id=client.client_id, timestamp=1,
                          operation=CounterMachine.add(5))

        def resend(env):
            for connection in client._connections.values():
                yield connection.send(encode(request))
            yield env.timeout(20e-3)

        p = cluster.env.process(resend(cluster.env))
        cluster.env.run(until=p)
        for app in cluster.apps.values():
            assert app.value == 5


class TestConcurrency:
    def test_concurrent_clients_converge(self):
        cluster = make_cluster(num_clients=3, app_factory=CounterMachine)
        done = []

        def worker(env, client, count):
            for _ in range(count):
                yield client.invoke(CounterMachine.add(1))
            done.append(True)

        for i in range(3):
            cluster.env.process(worker(cluster.env, cluster.client(i), 5))
        limit = cluster.env.now + 2.0
        while len(done) < 3 and cluster.env.peek() < limit:
            cluster.env.step()
        assert len(done) == 3
        cluster.run_for(10e-3)
        values = {rid: app.value for rid, app in cluster.apps.items()}
        assert set(values.values()) == {15}, values

    def test_batching_packs_multiple_requests(self):
        cluster = make_cluster(app_factory=CounterMachine)
        client = cluster.client()
        events = [client.invoke(CounterMachine.add(1)) for _ in range(10)]
        done = cluster.env.all_of(events)
        cluster.env.run(until=done)
        cluster.run_for(10e-3)
        leader = cluster.replica("r0")
        # 10 requests fit in far fewer than 10 protocol instances.
        assert leader.executed_seq < 10
        for app in cluster.apps.values():
            assert app.value == 10


class TestCheckpoints:
    def test_log_truncates_after_checkpoint(self):
        cluster = make_cluster(
            config=BftConfig(
                checkpoint_interval=4,
                log_window=32,
                batch_delay=0.0,
                batch_size=1,
                view_change_timeout=30e-3,
            )
        )
        for i in range(12):
            cluster.invoke_and_wait(f"PUT x{i}=y".encode())
        cluster.run_for(20e-3)
        for replica in cluster.replicas.values():
            assert replica.log.stable_seq >= 4
            assert all(s > replica.log.stable_seq for s in replica.log.slots)


class TestFaultTolerance:
    def test_crashed_backup_does_not_block_progress(self, cluster):
        backup_id = [r for r in cluster.replica_ids if r != "r0"][0]
        cluster.replica(backup_id).stop()
        result = cluster.invoke_and_wait(b"PUT still=alive")
        assert result == b"OK"

    def test_leader_crash_triggers_view_change(self):
        cluster = make_cluster(
            replica_classes={"r0": SilentReplica},
        )
        cluster.invoke_and_wait(b"PUT before=crash")
        cluster.replica("r0").go_silent()
        result = cluster.invoke_and_wait(b"PUT after=crash")
        assert result == b"OK"
        survivors = [r for r in cluster.replicas.values() if r.replica_id != "r0"]
        assert all(r.view >= 1 for r in survivors)
        assert all(not r.in_view_change for r in survivors)
        # State on survivors includes both writes.
        cluster.run_for(10e-3)
        for replica_id in ("r1", "r2", "r3"):
            app = cluster.apps[replica_id]
            assert app.get("before") == "crash"
            assert app.get("after") == "crash"

    def test_equivocating_leader_cannot_split_state(self):
        cluster = make_cluster(
            replica_classes={"r0": EquivocatingLeader},
            app_factory=KeyValueStore,
        )
        cluster.invoke_and_wait(b"PUT honest=1")
        cluster.replica("r0").start_equivocating()
        result = cluster.invoke_and_wait(b"PUT contested=value")
        assert result == b"OK"
        cluster.run_for(30e-3)
        # Safety: no two honest replicas executed different operations.
        honest = [rid for rid in cluster.replica_ids if rid != "r0"]
        values = {cluster.apps[rid].get("contested") for rid in honest}
        values.discard(None)  # a replica may lag, but must not diverge
        assert len(values) == 1
        assert not any(
            (cluster.apps[rid].get("contested") or "").startswith("FORGED")
            for rid in honest
        )


class TestViewChangeDetails:
    def test_view_change_preserves_prepared_requests(self):
        """Requests prepared under the old leader survive into the new
        view (the new-view message re-proposes them)."""
        cluster = make_cluster(replica_classes={"r0": SilentReplica})
        cluster.invoke_and_wait(b"PUT seed=1")
        cluster.replica("r0").go_silent()
        # Submit while the leader is dead: replicas time out, change view,
        # and the request still executes exactly once.
        result = cluster.invoke_and_wait(b"PUT survived=yes")
        assert result == b"OK"
        cluster.run_for(20e-3)
        for replica_id in ("r1", "r2", "r3"):
            assert cluster.apps[replica_id].get("survived") == "yes"
            assert cluster.apps[replica_id].applied_count == 2

    def test_service_continues_after_view_change(self):
        cluster = make_cluster(replica_classes={"r0": SilentReplica})
        cluster.replica("r0").go_silent()
        for i in range(5):
            assert cluster.invoke_and_wait(f"PUT k{i}=v".encode()) == b"OK"
        survivors = [cluster.replicas[r] for r in ("r1", "r2", "r3")]
        digests = {cluster.apps[r.replica_id].digest() for r in survivors}
        cluster.run_for(20e-3)
        digests = {cluster.apps[r.replica_id].digest() for r in survivors}
        assert len(digests) == 1


class TestCop:
    def test_cop_pipelines_preserve_total_order(self):
        cluster = make_cluster(
            config=BftConfig(
                pipelines=4,
                batch_size=1,
                batch_delay=0.0,
                view_change_timeout=30e-3,
            ),
            app_factory=CounterMachine,
        )
        client = cluster.client()
        events = [client.invoke(CounterMachine.add(i)) for i in range(1, 9)]
        cluster.env.run(until=cluster.env.all_of(events))
        cluster.run_for(10e-3)
        expected = sum(range(1, 9))
        for replica_id, app in cluster.apps.items():
            assert app.value == expected, replica_id
        digests = cluster.state_digests()
        assert len(set(digests.values())) == 1
