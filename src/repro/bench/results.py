"""Result containers and table rendering for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import SummaryStats

__all__ = ["EchoResult", "FigureTable", "percent_lower", "percent_higher"]


@dataclass
class EchoResult:
    """Measurements of one echo run at one payload size."""

    transport: str
    payload_bytes: int
    messages: int
    latencies_us: List[float] = field(default_factory=list)
    duration_s: float = 0.0
    #: Total kernel events scheduled by the run's Environment (its final
    #: ``_eid``) — the numerator of the wall-clock events/sec metric.
    sim_events: int = 0

    @property
    def mean_latency_us(self) -> float:
        """Mean per-message latency in microseconds."""
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us)

    @property
    def requests_per_second(self) -> float:
        """Completed echo round trips per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.messages / self.duration_s

    def stats(self) -> SummaryStats:
        """Full latency distribution statistics."""
        return SummaryStats(self.latencies_us)

    def __repr__(self) -> str:
        return (
            f"<EchoResult {self.transport} {self.payload_bytes}B "
            f"lat={self.mean_latency_us:.1f}us "
            f"rps={self.requests_per_second:.0f}>"
        )


def percent_lower(value: float, baseline: float) -> float:
    """How many percent ``value`` is below ``baseline``."""
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline * 100.0


def percent_higher(value: float, baseline: float) -> float:
    """How many percent ``value`` is above ``baseline``."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline * 100.0


class FigureTable:
    """A figure's data: payload sizes x transports -> metric values."""

    def __init__(self, title: str, metric: str, unit: str):
        self.title = title
        self.metric = metric
        self.unit = unit
        self.payloads: List[int] = []
        self.series: Dict[str, Dict[int, float]] = {}

    def add(self, transport: str, payload_bytes: int, value: float) -> None:
        """Record one data point."""
        if payload_bytes not in self.payloads:
            self.payloads.append(payload_bytes)
            self.payloads.sort()
        self.series.setdefault(transport, {})[payload_bytes] = value

    def value(self, transport: str, payload_bytes: int) -> float:
        """Look up one data point."""
        return self.series[transport][payload_bytes]

    def transports(self) -> List[str]:
        """Series names in insertion order."""
        return list(self.series)

    def render(self, float_format: str = "{:>12.1f}") -> str:
        """Plain-text table matching the paper's figure series."""
        width = max(16, max((len(n) for n in self.series), default=0) + 2)
        lines = [f"{self.title} — {self.metric} [{self.unit}]"]
        header = f"{'payload':>10}" + "".join(
            f"{name:>{width}}" for name in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        for payload in self.payloads:
            cells = []
            for name in self.series:
                value = self.series[name].get(payload)
                cells.append(
                    float_format.format(value) if value is not None else ""
                )
            label = (
                f"{payload // 1024}KB" if payload % 1024 == 0 else f"{payload}B"
            )
            lines.append(
                f"{label:>10}" + "".join(f"{c:>{width}}" for c in cells)
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<FigureTable {self.title!r} series={list(self.series)} "
            f"points={len(self.payloads)}>"
        )
