"""The perf gate's attribution pass and observability artifacts.

Uses a tiny synthetic fig3 baseline (one fast echo point) so a full gate
run takes seconds.  Doctoring the stored numbers downwards makes the
deterministic re-run read as a regression, which must trigger the
critical-path suspect ranking; leaving them untouched must keep the gate
green with no attribution output.
"""

import json
import os

import pytest

from repro.bench.__main__ import main
from repro.bench.baseline import echo_record
from repro.bench.echo import run_echo
from repro.bench.profiles import capture_profile, profile_path
from repro.obs.sampler import write_json_atomic

POINT_PAYLOAD = 2048
POINT_MESSAGES = 10


def seed_baselines(directory, latency_scale=1.0, profile_scale=1.0):
    """Write a one-point BENCH_fig3.json + PROFILE_fig3.json into
    ``directory``, optionally scaling the stored numbers to provoke a
    gate failure (the re-run is deterministic, so scaling the baseline
    down is equivalent to the tree regressing)."""
    result = run_echo("rdma_channel", POINT_PAYLOAD, POINT_MESSAGES)
    point = echo_record(result)
    point["latency_us"] = {
        key: value * latency_scale
        for key, value in point["latency_us"].items()
    }
    write_json_atomic(
        {"figure": "fig3", "points": [point]},
        os.path.join(directory, "BENCH_fig3.json"),
    )
    profile = capture_profile("fig3")
    for node in profile["nodes"].values():
        node["mean_us"] *= profile_scale
    write_json_atomic(profile, profile_path(directory, "fig3"))
    return point


def gate_args(directory, *extra):
    return [
        "--check", "--fig", "3",
        "--baseline-dir", directory,
        "--history", os.path.join(directory, "history.jsonl"),
        *extra,
    ]


@pytest.fixture
def green_dir(tmp_path):
    directory = str(tmp_path / "baselines")
    os.makedirs(directory)
    seed_baselines(directory)
    return directory


@pytest.fixture
def red_dir(tmp_path):
    directory = str(tmp_path / "baselines")
    os.makedirs(directory)
    seed_baselines(directory, latency_scale=0.5, profile_scale=0.5)
    return directory


class TestGateAttribution:
    def test_green_gate_prints_no_suspects(self, green_dir, capsys):
        assert main(gate_args(green_dir)) == 0
        out = capsys.readouterr().out
        assert "fig3: PASS" in out
        assert "critical-path suspects" not in out

    def test_failing_gate_ranks_suspect_layers(self, red_dir, capsys):
        assert main(gate_args(red_dir)) == 1
        out = capsys.readouterr().out
        assert "fig3: FAIL" in out
        assert "fig3 critical-path suspects" in out
        assert "#1 " in out
        assert "self-time" in out

    def test_failing_gate_appends_github_step_summary(
        self, red_dir, tmp_path, monkeypatch, capsys
    ):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert main(gate_args(red_dir)) == 1
        text = summary.read_text()
        assert "### fig3 regression suspects" in text
        assert "#1 " in text

    def test_obs_dir_writes_artifacts(self, green_dir, tmp_path, capsys):
        obs_dir = str(tmp_path / "obs")
        assert main(gate_args(green_dir, "--obs-dir", obs_dir)) == 0
        assert os.path.exists(os.path.join(obs_dir, "PROFILE_fig3.json"))
        assert os.path.exists(os.path.join(obs_dir, "TIMESERIES_fig3.json"))
        profile = json.load(
            open(os.path.join(obs_dir, "PROFILE_fig3.json"))
        )
        assert profile["figure"] == "fig3"

    def test_missing_profile_baseline_degrades_gracefully(
        self, red_dir, capsys
    ):
        os.remove(profile_path(red_dir, "fig3"))
        assert main(gate_args(red_dir)) == 1
        out = capsys.readouterr().out
        assert "no committed profile" in out


class TestUpdateBaseline:
    def test_refreshes_bench_and_profile_together(self, red_dir, capsys):
        args = [
            "--update-baseline", "--fig", "3", "--baseline-dir", red_dir,
        ]
        assert main(args) == 0
        # The doctored numbers are gone: the gate is green again.
        assert main(gate_args(red_dir)) == 0
        fresh_bench = json.load(
            open(os.path.join(red_dir, "BENCH_fig3.json"))
        )
        point = fresh_bench["points"][0]
        assert point["payload_bytes"] == POINT_PAYLOAD
        assert point["messages"] == POINT_MESSAGES
        fresh_profile = json.load(open(profile_path(red_dir, "fig3")))
        assert fresh_profile["figure"] == "fig3"
        # Profile means are back to the real capture (not the 0.5x fake).
        reference = capture_profile("fig3")
        assert fresh_profile["nodes"] == reference["nodes"]
