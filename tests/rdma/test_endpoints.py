"""The DiSNI-style blocking endpoint interface."""

import pytest

from repro.errors import RdmaError
from repro.net import Fabric
from repro.rdma import EndpointGroup, RdmaDevice
from repro.sim import Environment


class EndpointRig:
    def __init__(self, **group_kwargs):
        self.env = Environment()
        fabric = Fabric(self.env)
        fabric.add_host("left")
        fabric.add_host("right")
        fabric.connect("left", "right")
        self.left = EndpointGroup(RdmaDevice(fabric.host("left")), **group_kwargs)
        self.right = EndpointGroup(RdmaDevice(fabric.host("right")), **group_kwargs)

    def connect(self, port=18515):
        server = self.right.listen(port)
        accepted_box = []

        def acceptor(env):
            endpoint = yield server.accept()
            accepted_box.append(endpoint)

        self.env.process(acceptor(self.env))
        client = self.left.create_endpoint()
        done = client.connect("right", port)
        self.env.run(until=done)
        while not accepted_box:
            self.env.step()
        return client, accepted_box[0]


@pytest.fixture
def rig():
    return EndpointRig()


def test_connect_and_accept(rig):
    client, server = rig.connect()
    assert client.connected
    assert server.connected


def test_blocking_send_recv(rig):
    client, server = rig.connect()

    def scenario(env):
        yield client.send(b"endpoint message")
        message = yield server.recv()
        return message

    p = rig.env.process(scenario(rig.env))
    assert rig.env.run(until=p) == b"endpoint message"


def test_bidirectional_messages(rig):
    client, server = rig.connect()

    def client_side(env):
        yield client.send(b"ping")
        return (yield client.recv())

    def server_side(env):
        message = yield server.recv()
        yield server.send(message + b"-pong")

    rig.env.process(server_side(rig.env))
    p = rig.env.process(client_side(rig.env))
    assert rig.env.run(until=p) == b"ping-pong"


def test_messages_preserve_order(rig):
    client, server = rig.connect()
    messages = [f"m{i}".encode() for i in range(20)]

    def sender(env):
        for message in messages:
            yield client.send(message)

    def receiver(env):
        got = []
        for _ in messages:
            got.append((yield server.recv()))
        return got

    rig.env.process(sender(rig.env))
    p = rig.env.process(receiver(rig.env))
    assert rig.env.run(until=p) == messages


def test_send_beyond_buffer_size_rejected():
    rig = EndpointRig(buffer_size=1024)
    client, _server = rig.connect()
    with pytest.raises(RdmaError, match="exceeds endpoint buffer"):
        client.send(b"z" * 2048)


def test_send_on_unconnected_endpoint_raises(rig):
    endpoint = rig.left.create_endpoint()

    def scenario(env):
        yield endpoint.send(b"nope")

    p = rig.env.process(scenario(rig.env))
    with pytest.raises(RdmaError, match="not connected"):
        rig.env.run(until=p)


def test_try_recv_nonblocking(rig):
    client, server = rig.connect()
    assert server.try_recv() is None

    def scenario(env):
        yield client.send(b"later")
        yield env.timeout(1e-3)

    p = rig.env.process(scenario(rig.env))
    rig.env.run(until=p)
    assert server.try_recv() == b"later"


def test_many_messages_recycle_buffers():
    rig = EndpointRig(buffer_count=4)
    client, server = rig.connect()
    total = 20  # 5x the buffer count: recycling must work

    def sender(env):
        for i in range(total):
            yield client.send(f"msg-{i:02d}".encode())

    def receiver(env):
        got = []
        for _ in range(total):
            got.append((yield server.recv()))
        return got

    rig.env.process(sender(rig.env))
    p = rig.env.process(receiver(rig.env))
    got = rig.env.run(until=p)
    assert got == [f"msg-{i:02d}".encode() for i in range(total)]


def test_connect_to_unbound_port_fails(rig):
    endpoint = rig.left.create_endpoint()
    done = endpoint.connect("right", 9999)
    with pytest.raises(RdmaError, match="no listener"):
        rig.env.run(until=done)


def test_two_connections_same_listener(rig):
    server = rig.right.listen(18600)
    accepted = []

    def acceptor(env):
        for _ in range(2):
            endpoint = yield server.accept()
            accepted.append(endpoint)

    rig.env.process(acceptor(rig.env))
    c1 = rig.left.create_endpoint()
    c2 = rig.left.create_endpoint()
    rig.env.run(until=c1.connect("right", 18600))
    rig.env.run(until=c2.connect("right", 18600))
    assert len(accepted) == 2

    def scenario(env):
        yield c1.send(b"one")
        yield c2.send(b"two")
        a = yield accepted[0].recv()
        b = yield accepted[1].recv()
        return a, b

    p = rig.env.process(scenario(rig.env))
    assert rig.env.run(until=p) == (b"one", b"two")
