"""The fabric: hosts plus the cables between them.

The paper's testbed is two machines on one 10 Gbps full-duplex RoCE link;
the BFT experiments need a small mesh.  :class:`Fabric` supports both: add
hosts, then :meth:`connect` pairs (or :meth:`full_mesh` everything) with
per-cable bandwidth, propagation delay and an optional deterministic drop
hook for failure injection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.net.cpu import CpuCosts
from repro.net.host import Host
from repro.net.link import TEN_GIGABIT, DropFn, DuplexLink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment

__all__ = ["Fabric"]


class Fabric:
    """A set of hosts and the point-to-point cables wiring them."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._hosts: Dict[str, Host] = {}
        self._cables: Dict[Tuple[str, str], DuplexLink] = {}

    # -- hosts ---------------------------------------------------------------

    def add_host(
        self,
        name: str,
        cores: int = 4,
        cpu_costs: Optional[CpuCosts] = None,
    ) -> Host:
        """Create and register a host."""
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(self.env, name, cores=cores, cpu_costs=cpu_costs)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(
                f"unknown host {name!r} (have: {sorted(self._hosts)})"
            ) from None

    def hosts(self) -> list[Host]:
        """All hosts, sorted by name for determinism."""
        return [self._hosts[name] for name in sorted(self._hosts)]

    # -- cables ----------------------------------------------------------------

    def connect(
        self,
        a: str,
        b: str,
        bandwidth_bps: float = TEN_GIGABIT,
        propagation_delay: float = 1.5e-6,
        drop_fn: Optional[DropFn] = None,
    ) -> DuplexLink:
        """Run a full-duplex cable between hosts ``a`` and ``b``."""
        if a == b:
            raise NetworkError("cannot cable a host to itself")
        key = (min(a, b), max(a, b))
        if key in self._cables:
            raise NetworkError(f"hosts {a!r} and {b!r} are already cabled")
        host_a, host_b = self.host(a), self.host(b)
        cable = DuplexLink(
            self.env,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=propagation_delay,
            drop_fn=drop_fn,
            name=f"{a}<->{b}",
        )
        # forward carries a->b, backward carries b->a.
        host_a.nic.attach_tx(b, cable.forward)
        host_b.nic.attach_rx(cable.forward)
        host_b.nic.attach_tx(a, cable.backward)
        host_a.nic.attach_rx(cable.backward)
        self._cables[key] = cable
        return cable

    def full_mesh(
        self,
        bandwidth_bps: float = TEN_GIGABIT,
        propagation_delay: float = 1.5e-6,
        drop_fn: Optional[DropFn] = None,
    ) -> None:
        """Cable every pair of hosts that is not already connected."""
        names = sorted(self._hosts)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if (a, b) not in self._cables:
                    self.connect(
                        a,
                        b,
                        bandwidth_bps=bandwidth_bps,
                        propagation_delay=propagation_delay,
                        drop_fn=drop_fn,
                    )

    def min_propagation_delay(self) -> float:
        """Smallest propagation delay across all cables.

        This is the conservative-sync lookahead bound
        :mod:`repro.sim.parallel` derives its barrier window from: a
        frame finishing serialization at ``t`` cannot arrive anywhere
        before ``t + min_propagation_delay()``.
        """
        if not self._cables:
            raise NetworkError("fabric has no cables")
        return min(
            cable.forward.propagation_delay for cable in self._cables.values()
        )

    def cable(self, a: str, b: str) -> DuplexLink:
        """The cable between ``a`` and ``b``."""
        key = (min(a, b), max(a, b))
        try:
            return self._cables[key]
        except KeyError:
            raise NetworkError(f"no cable between {a!r} and {b!r}") from None

    def __repr__(self) -> str:
        return (
            f"<Fabric hosts={len(self._hosts)} cables={len(self._cables)}>"
        )
