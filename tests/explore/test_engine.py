"""The explorer: real scenario runs, dedup, replay, pruning, budgets."""

import pytest

from repro.explore.engine import ExploreBudget, Explorer
from repro.explore.mutants import MUTANTS
from repro.explore.scenario import get_scenario, with_overrides
from repro.explore.selftest import selftest_spec


def _tiny_spec():
    """A fast clean scenario: no faults, three requests."""
    return with_overrides(
        get_scenario("crash-overload"),
        name="test:tiny",
        faults=(),
        requests=3,
        num_clients=1,
        admission_budget=0,
        run_time=60e-3,
    )


@pytest.fixture(scope="module")
def explored():
    explorer = Explorer(
        _tiny_spec(), budget=ExploreBudget(max_events=400_000, max_runs=12)
    )
    report = explorer.explore()
    return explorer, report


class TestExploration:
    def test_clean_scenario_stays_clean_across_schedules(self, explored):
        _, report = explored
        assert report.ok
        assert report.failures == []

    def test_schedules_are_distinct_and_deduplicated(self, explored):
        _, report = explored
        assert report.distinct_schedules > 1
        assert report.distinct_schedules <= report.runs
        assert report.runs == 12
        assert report.exhausted == "runs"

    def test_choice_points_and_branching_observed(self, explored):
        _, report = explored
        assert report.choice_points > 0
        assert report.branch_points > 0

    def test_independence_pruning_drops_alternatives(self, explored):
        _, report = explored
        # Ready sets mixing several hosts exist in any BFT run; the
        # owner-independence rule must collapse some of them.
        assert report.pruned_alternatives > 0

    def test_summary_is_json_shaped(self, explored):
        _, report = explored
        summary = report.summary()
        assert summary["scenario"] == "test:tiny"
        assert summary["ok"] is True
        assert summary["distinct_schedules"] == report.distinct_schedules


class TestReplayDeterminism:
    def test_same_prescription_same_fingerprint(self):
        explorer = Explorer(_tiny_spec())
        first, _ = explorer.run_prescribed((0, 1), origin="branch")
        second, _ = explorer.run_prescribed((0, 1), origin="replay")
        assert first.outcome.fingerprint == second.outcome.fingerprint

    def test_deviation_changes_the_schedule_identity(self):
        explorer = Explorer(_tiny_spec())
        base, base_policy = explorer.run_prescribed((), origin="base")
        point = next(
            i for i, size in enumerate(base_policy.sizes) if size > 1
        )
        branch, branch_policy = explorer.run_prescribed(
            (0,) * point + (1,), origin="branch"
        )
        assert branch_policy.clamped == 0
        assert branch.trace.choices != base.trace.choices

    def test_failing_trace_replays_to_the_same_violation(self):
        mutant_name = "commit-quorum-off-by-one"
        explorer = Explorer(
            selftest_spec(), mutant=MUTANTS[mutant_name],
            mutant_name=mutant_name,
        )
        record, _ = explorer.run_prescribed((), origin="base")
        assert not record.ok
        assert "bft.commit-quorum" in record.outcome.rules
        replayed = explorer.replay(record.trace)
        assert replayed.outcome.rules == record.outcome.rules
        assert replayed.outcome.fingerprint == record.outcome.fingerprint


class TestBudgets:
    def test_run_budget_is_a_hard_stop(self):
        explorer = Explorer(
            _tiny_spec(), budget=ExploreBudget(max_events=10**9, max_runs=2)
        )
        report = explorer.explore()
        assert report.runs == 2
        assert report.exhausted == "runs"

    def test_event_budget_is_a_hard_stop(self):
        explorer = Explorer(
            _tiny_spec(), budget=ExploreBudget(max_events=1, max_runs=100)
        )
        report = explorer.explore()
        # The base run always executes; the budget check stops the rest.
        assert report.runs == 1
        assert report.exhausted == "events"


class TestPruning:
    def test_distinct_owners_collapse_to_one_representative(self):
        explorer = Explorer(_tiny_spec(), max_alternatives=8)
        kept, pruned = explorer._alternatives(
            4, ("h0", "h1", "h1", "h2")
        )
        # Index 1 represents h1 (and is kept); index 2 is a second h1
        # entry independent of the h0 default, so it is pruned; index 3
        # represents h2.
        assert kept == [1, 3]
        assert pruned == 1

    def test_same_owner_entries_are_all_dependent(self):
        explorer = Explorer(_tiny_spec(), max_alternatives=8)
        kept, pruned = explorer._alternatives(4, ("h0", "h0", "h0", "h0"))
        assert kept == [1, 2, 3]
        assert pruned == 0

    def test_missing_owner_data_keeps_everything(self):
        explorer = Explorer(_tiny_spec(), max_alternatives=8)
        kept, _ = explorer._alternatives(3, ())
        assert kept == [1, 2]

    def test_singleton_ready_set_has_no_alternatives(self):
        explorer = Explorer(_tiny_spec())
        assert explorer._alternatives(1, ("h0",)) == ([], 0)
