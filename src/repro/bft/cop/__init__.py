"""Consensus-Oriented Parallelization (COP) for the BFT layer.

The source paper integrates RUBIN into Reptor, whose defining trait is
COP: many consensus instances pipelined in parallel across *consensus
groups* (PAPER.md §1.5).  This package shards the sequence space by
group, runs one independent PBFT ordering pipeline per group, and
deterministically merges the committed per-group entries back into a
single total execution order:

- :mod:`repro.bft.cop.merge` — the deterministic round-robin merge
  stage with gap-aware stalls;
- :mod:`repro.bft.cop.partition` — pluggable client-request
  partitioners (deterministic hash on the request id by default);
- :mod:`repro.bft.cop.batcher` — the adaptive per-group batcher fed by
  the PR 5 admission/queue-depth and outbox-watermark signals;
- :mod:`repro.bft.cop.group` — ``CopReplica`` / ``GroupPipeline`` /
  ``CopClient``, multiplexing per-group protocol traffic over the
  existing RUBIN channels.

``group_count=1`` is the exact degenerate case: a ``CopReplica`` with a
single group schedules bit-identically to the sequential pipeline (the
fingerprint tests pin this).
"""

from repro.bft.cop.batcher import AdaptiveBatcher
from repro.bft.cop.group import (
    CopClient,
    CopGroupEquivocator,
    CopReplica,
    GroupConnection,
    GroupPipeline,
)
from repro.bft.cop.merge import MergeStage
from repro.bft.cop.partition import (
    PARTITIONERS,
    ClientAffinityPartitioner,
    HashPartitioner,
    make_partitioner,
)

__all__ = [
    "AdaptiveBatcher",
    "ClientAffinityPartitioner",
    "CopClient",
    "CopGroupEquivocator",
    "CopReplica",
    "GroupConnection",
    "GroupPipeline",
    "HashPartitioner",
    "MergeStage",
    "PARTITIONERS",
    "make_partitioner",
]
