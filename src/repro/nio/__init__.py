"""Java-NIO-like non-blocking I/O over the simulated TCP stack.

The TCP baseline of the paper's Figure 4: ``ByteBuffer``,
``SocketChannel``/``ServerSocketChannel`` and a ``Selector`` with
``SelectionKey`` interest ops, built on the epoll emulation exactly like
the JDK's implementation is built on Linux epoll.
"""

from repro.nio.buffer import BufferOverflow, BufferUnderflow, ByteBuffer
from repro.nio.channel import ServerSocketChannel, SocketChannel
from repro.nio.selector import (
    OP_ACCEPT,
    OP_CONNECT,
    OP_READ,
    OP_WRITE,
    SelectionKey,
    Selector,
)

__all__ = [
    "ByteBuffer",
    "BufferOverflow",
    "BufferUnderflow",
    "SocketChannel",
    "ServerSocketChannel",
    "Selector",
    "SelectionKey",
    "OP_READ",
    "OP_WRITE",
    "OP_CONNECT",
    "OP_ACCEPT",
]
