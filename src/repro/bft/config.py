"""BFT protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BftConfig"]


@dataclass(frozen=True)
class BftConfig:
    """Tunables of the PBFT core.

    Attributes
    ----------
    n:
        Replica-group size; must be ``3f + 1`` for some integer ``f >= 0``.
    batch_size:
        Maximum client requests ordered by a single pre-prepare ("requests
        in BFT protocols are often batched", paper Section II-B).
    batch_delay:
        How long the leader waits to fill a batch before proposing what it
        has (adaptive batching lower bound).
    checkpoint_interval:
        A checkpoint is taken every this many executed sequence numbers.
    log_window:
        Watermark window size (max in-flight sequence numbers).
    view_change_timeout:
        How long a replica waits for a pending request to execute before
        voting to change the view.
    pipelines:
        COP-style parallel ordering instances; protocol messages for
        sequence number ``s`` are handled by pipeline ``s % pipelines``,
        each running as its own process (its own core, CPU permitting),
        while execution stays in total order (Section II-C).
    execution_cost:
        CPU seconds charged per executed request (the service work).
    state_transfer_timeout:
        How often a recovering replica re-broadcasts its
        STATE-TRANSFER-REQUEST while waiting for f+1 matching replies
        (covers requests lost to crashed peers or mid-reconnect links).
    admission_budget:
        Admission control: maximum client requests a replica accepts
        in flight (deadline armed, not yet executed).  New requests
        beyond the budget are shed with a ``Busy`` reply — the client
        backs off and retries — instead of piling onto the ordering
        pipeline and view-change timers.  0 disables shedding
        (historical accept-everything behaviour).
    group_count:
        Consensus-Oriented Parallelization: number of independent
        consensus groups, each ordering its own shard of the sequence
        space with its own PBFT pipeline; committed entries merge into
        one deterministic total execution order (PAPER.md §1.5).  1 is
        the exact degenerate case — bit-identical to the sequential
        pipeline.
    partitioner:
        Name of the client-request partitioner (``repro.bft.cop
        .PARTITIONERS``): "hash" spreads requests by the full request
        id, "client" pins each client to one group.
    adaptive_batching:
        Size batches with the :class:`~repro.bft.cop.AdaptiveBatcher`
        (grow under load, shrink when idle) instead of the fixed
        ``batch_size`` ceiling.  Off by default so historical schedules
        stay bit-identical.
    batch_size_min:
        Adaptive-batcher floor (lowest limit the controller shrinks to).
        ``batch_size`` stays the ceiling.
    batch_shrink_patience:
        Consecutive idle observations before the adaptive batcher
        halves its limit (shrink hysteresis).
    merge_fill_interval:
        How often a COP replica checks for merge stalls — an idle group
        gating committed work in other groups — and, when leading the
        stalled group, proposes an empty filler batch to close the gap.
    merge_stall_timeout:
        How long a merge gap may persist before replicas arm a
        synthetic deadline in the stalled group, forcing a view change
        there (covers a crashed group leader with no pending client
        requests of its own).  0 means use ``view_change_timeout``.
    """

    n: int = 4
    batch_size: int = 10
    batch_delay: float = 200e-6
    checkpoint_interval: int = 64
    log_window: int = 256
    view_change_timeout: float = 40e-3
    pipelines: int = 1
    execution_cost: float = 1e-6
    #: CPU seconds each protocol message costs its handler (digest checks,
    #: certificate bookkeeping).  With MAC authenticators this is small;
    #: signature-based deployments are 1-2 orders of magnitude higher —
    #: exactly the regime where COP's parallel pipelines pay off.
    handler_cost: float = 0.3e-6
    state_transfer_timeout: float = 5e-3
    admission_budget: int = 0
    group_count: int = 1
    partitioner: str = "hash"
    adaptive_batching: bool = False
    batch_size_min: int = 1
    batch_shrink_patience: int = 4
    merge_fill_interval: float = 2e-3
    merge_stall_timeout: float = 0.0
    #: One-sided fast path (Aguilera et al., "The Impact of RDMA on
    #: Agreement"): the leader writes proposals straight into per-replica
    #: slot arrays and replicas write their Prepare/Commit acks into
    #: per-writer lanes, all via RDMA WRITE — no receiver CPU on the
    #: critical path.  Strictly opt-in: the default False keeps every
    #: historical schedule bit-identical.
    onesided: bool = False
    #: NIC-level dynamic permission guarding for the one-sided regions:
    #: only the current leader holds a REMOTE_WRITE grant on proposal
    #: rings (switched on every view change, fencing in-flight writes
    #: via permission epochs) and each ack lane admits only its owner.
    #: Turning this off reproduces the paper's §IV security concern —
    #: any replica that knows an rkey can corrupt consensus state.
    onesided_guard: bool = True
    #: Slots per one-sided proposal ring / ack lane.  0 = auto-size from
    #: the log window (proposals can never overrun a ring that holds the
    #: whole watermark window).
    onesided_slots: int = 0
    #: Bytes per slot; a record that cannot fit falls back to the
    #: message-passing path for that message only.
    onesided_slot_bytes: int = 2048
    #: Poll period of each replica's inbound-region scanner.
    onesided_poll_interval: float = 5e-6

    def __post_init__(self) -> None:
        if self.n < 1 or (self.n - 1) % 3 != 0:
            raise ConfigurationError(
                f"n must be 3f + 1 for integer f >= 0, got {self.n}"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.batch_delay < 0:
            raise ConfigurationError("batch_delay must be >= 0")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.log_window <= self.checkpoint_interval:
            raise ConfigurationError(
                "log_window must exceed checkpoint_interval or the log "
                "wedges before the next stable checkpoint"
            )
        if self.view_change_timeout <= 0:
            raise ConfigurationError("view_change_timeout must be > 0")
        if self.pipelines < 1:
            raise ConfigurationError("pipelines must be >= 1")
        if self.execution_cost < 0:
            raise ConfigurationError("execution_cost must be >= 0")
        if self.handler_cost < 0:
            raise ConfigurationError("handler_cost must be >= 0")
        if self.state_transfer_timeout <= 0:
            raise ConfigurationError("state_transfer_timeout must be > 0")
        if self.admission_budget < 0:
            raise ConfigurationError("admission_budget must be >= 0")
        if self.group_count < 1:
            raise ConfigurationError("group_count must be >= 1")
        if self.group_count > 128:
            # The group-mux frame tag carries the group id in 7 bits.
            raise ConfigurationError("group_count must be <= 128")
        if not self.partitioner:
            raise ConfigurationError("partitioner name must be non-empty")
        if not 1 <= self.batch_size_min <= self.batch_size:
            raise ConfigurationError(
                "batch_size_min must satisfy 1 <= batch_size_min <= "
                f"batch_size, got {self.batch_size_min}"
            )
        if self.batch_shrink_patience < 1:
            raise ConfigurationError("batch_shrink_patience must be >= 1")
        if self.merge_fill_interval <= 0:
            raise ConfigurationError("merge_fill_interval must be > 0")
        if self.merge_stall_timeout < 0:
            raise ConfigurationError("merge_stall_timeout must be >= 0")
        if self.onesided_slots < 0:
            raise ConfigurationError("onesided_slots must be >= 0")
        if self.onesided_slot_bytes < 64:
            raise ConfigurationError(
                "onesided_slot_bytes must be >= 64 (record framing alone "
                "needs 24 bytes)"
            )
        if self.onesided_poll_interval <= 0:
            raise ConfigurationError("onesided_poll_interval must be > 0")
        if self.onesided and self.group_count != 1:
            raise ConfigurationError(
                "the one-sided fast path only supports group_count == 1"
            )

    @property
    def f(self) -> int:
        """Faults tolerated."""
        return (self.n - 1) // 3
