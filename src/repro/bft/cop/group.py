"""Multi-group ordering pipelines and the merged execution coordinator.

The COP deployment model (PAPER.md §1.5): every replica hosts
``group_count`` *consensus groups*, each an independent PBFT ordering
pipeline over its own shard of the sequence space, all multiplexed over
the replica's single set of Reptor connections.  Committed per-group
entries flow into the :class:`~repro.bft.cop.merge.MergeStage`, and one
coordinator process per replica executes the merged total order strictly
serially — so application state, reply order, and checkpoint digests are
pure functions of the merged prefix, identical on every correct replica.

Wire format: when ``group_count > 1`` every replica-to-replica frame is
prefixed with one tag byte ``0x80 | group``.  Protocol message encodings
themselves are untouched (their first byte is a small type id, never >=
0x80), and client traffic stays untagged — the partitioner is a pure
function of the request id, so each replica derives the target group
locally.  With ``group_count == 1`` no tagging, no extra processes and
no extra simulation events exist: a :class:`CopReplica` is bit-identical
to the sequential :class:`~repro.bft.replica.Replica` (pinned by the
schedule-fingerprint tests).

Leadership is rotated per group — group ``g`` in view ``v`` is led by
``all_ids[(v + g) % n]`` — so at view 0 the ``n`` group leaders spread
across distinct hosts, which is exactly where the parallel pipelines
pay off once handler CPU (signatures) is the bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.audit import get_audit
from repro.bft.client import BftClient
from repro.bft.config import BftConfig
from repro.bft.cop.merge import MergeStage
from repro.bft.cop.partition import make_partitioner
from repro.bft.messages import PrePrepare, Reply, Request, decode, encode
from repro.bft.replica import Replica, batch_digest
from repro.errors import BftError
from repro.reptor import ReptorConnection, ReptorEndpoint
from repro.bft.statemachine import StateMachine
from repro.trace import get_tracer

__all__ = [
    "CopClient",
    "CopGroupEquivocator",
    "CopReplica",
    "GroupConnection",
    "GroupPipeline",
]

#: High bit of the first frame byte marks a group-tagged frame; the low
#: seven bits carry the group id.  Message type ids are tiny integers,
#: so an untagged frame can never be mistaken for a tagged one.
GROUP_TAG = 0x80


class GroupConnection:
    """A per-group view of one shared replica-to-replica connection.

    Prepends the group tag byte on every send so the receiving replica
    can demultiplex the frame to the right ordering pipeline.  Reads
    never happen here — the owning replica runs one mux receive loop
    per underlying connection.
    """

    __slots__ = ("_inner", "_tag")

    def __init__(self, inner: ReptorConnection, group: int):
        self._inner = inner
        self._tag = bytes([GROUP_TAG | group])

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def peer_name(self):
        return self._inner.peer_name

    @property
    def _above_high(self) -> bool:
        # Outbox watermark pressure of the shared connection: feeds the
        # adaptive batcher of every pipeline multiplexed over it.
        return getattr(self._inner, "_above_high", False)

    def send(self, payload: bytes, trace_ctx=None):
        return self._inner.send(self._tag + payload, trace_ctx=trace_ctx)

    def close(self) -> None:
        self._inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GroupConnection group={self._tag[0] & 0x7F} {self._inner!r}>"


class GroupPipeline(Replica):
    """One non-coordinator consensus group of a :class:`CopReplica`.

    A full PBFT pipeline (agreement, view changes, checkpoints) that
    shares its owner's endpoint, application and client connections.
    It never executes batches itself: committed slots are handed to the
    owner's merge stage, and the owner's coordinator process applies
    them in merged order (which is also when this pipeline's
    checkpoints are taken, so their digests cover the global state at
    the merged execution point).
    """

    def __init__(self, owner: "CopReplica", group: int):
        self.owner = owner
        self.group = group
        super().__init__(
            owner.replica_id,
            owner.endpoint,
            list(owner.all_ids),
            owner.app,
            config=owner.config,
            recover=False,
        )
        # Clients talk to the replica, not to a group: share the owner's
        # connection table so replies reach them from any pipeline.
        self._client_conns = owner._client_conns

    def leader_of(self, view: int) -> str:
        """Group-rotated leadership: distinct groups get distinct
        leaders in the same view (group 0 keeps the base formula)."""
        return self.all_ids[(view + self.group) % self.n]

    def _wire_endpoint(self) -> None:
        # The owner demultiplexes group-tagged traffic to this pipeline;
        # subscribing here would double-deliver every connection.
        pass

    def _execute_ready(self) -> None:
        self.owner._drain_group(self)

    def begin_state_transfer(self) -> None:
        # One group lagging means the merged order is lagging: recovery
        # is coordinated across all groups by the owner.
        self.owner.begin_state_transfer()

    def _try_install_state(self) -> None:
        # Installation decisions belong to the owner's coordinator (and
        # must never run mid-batch), so a new reply just wakes it.
        self.owner._kick_exec()

    def __repr__(self) -> str:
        return (
            f"<GroupPipeline {self.replica_id} g{self.group} "
            f"view={self.view} executed={self.executed_seq}>"
        )


class CopReplica(Replica):
    """A replica running ``group_count`` parallel ordering pipelines.

    The replica object itself is group 0's pipeline *and* the
    coordinator: it owns the merge stage, the serial merged-order
    executor, the merge-stall fill loop, and the frame mux over the
    shared connections.  With ``group_count == 1`` every override
    delegates straight to the base class and no COP process is spawned
    — the degenerate case schedules bit-identically.
    """

    def __init__(
        self,
        replica_id: str,
        endpoint: ReptorEndpoint,
        peer_ids: List[str],
        app: StateMachine,
        config: Optional[BftConfig] = None,
        recover: bool = False,
    ):
        cfg = config if config is not None else BftConfig()
        self._merge = MergeStage(cfg.group_count)
        self._partitioner = make_partitioner(cfg.partitioner, cfg.group_count)
        self._groups: List[Replica] = [self]
        self._exec_kick = None
        self._cop_st_active = False
        self._cop_st_started = 0.0
        self._st_attempted_slot = 0
        super().__init__(
            replica_id,
            endpoint,
            peer_ids,
            app,
            config=cfg,
            recover=recover if cfg.group_count == 1 else False,
        )
        if cfg.group_count > 1:
            for group in range(1, cfg.group_count):
                self._groups.append(self._make_group_pipeline(group))
            self.env.process(
                self._cop_execute_loop(), name=f"{replica_id}.cop-exec"
            )
            self.env.process(
                self._merge_fill_loop(), name=f"{replica_id}.cop-fill"
            )
            if recover:
                self.begin_state_transfer()

    def _make_group_pipeline(self, group: int) -> Replica:
        """Factory hook: Byzantine subclasses substitute faulty groups."""
        return GroupPipeline(self, group)

    # -- identity ------------------------------------------------------

    def group_children(self) -> Tuple[Replica, ...]:
        return tuple(self._groups[1:])

    @property
    def global_executed_seq(self) -> int:
        if self.config.group_count == 1:
            return self.executed_seq
        return self._merge.position

    # -- wiring & mux --------------------------------------------------

    def attach_peer(self, peer_id: str, connection: ReptorConnection) -> None:
        if self.config.group_count == 1:
            super().attach_peer(peer_id, connection)
            return
        self._bind_peer(peer_id, connection)

    def _on_inbound_connection(self, connection: ReptorConnection) -> None:
        if self.config.group_count == 1:
            super()._on_inbound_connection(connection)
            return
        peer = connection.peer_name
        if peer in self.all_ids:
            self._bind_peer(peer, connection)
        else:
            self._client_conns[peer] = connection
            self.env.process(
                self._cop_client_receive_loop(connection),
                name=f"{self.replica_id}<-client.rx",
            )

    def _bind_peer(self, peer_id: str, connection: ReptorConnection) -> None:
        """Give every pipeline a tagged view of the shared connection
        and start the single demux loop that feeds them all."""
        for pipeline in self._groups:
            pipeline._replica_conns[peer_id] = GroupConnection(
                connection, pipeline.group
            )
        self.env.process(
            self._mux_receive_loop(connection, peer_id),
            name=f"{self.replica_id}<-{peer_id}.rx",
        )

    def _mux_receive_loop(self, connection: ReptorConnection, peer: str):
        while self.running and not connection.closed:
            try:
                raw = yield connection.receive()
            except BftError:
                return
            if raw and raw[0] & GROUP_TAG:
                group = raw[0] & 0x7F
                payload = bytes(raw[1:])
            else:
                group, payload = 0, raw
            if group >= len(self._groups):
                continue  # tag for a group we do not run: drop
            try:
                message = decode(payload)
            except BftError:
                connection.close()
                return
            self._groups[group]._route(message, peer)

    def _cop_client_receive_loop(self, connection: ReptorConnection):
        while self.running and not connection.closed:
            try:
                raw = yield connection.receive()
            except BftError:
                return
            try:
                message = decode(raw)
            except BftError:
                connection.close()
                return
            if isinstance(message, Request):
                self._client_conns[message.client_id] = connection
                group = self._partitioner.group_of(
                    message.client_id, message.timestamp
                )
                self._groups[group]._route(message, message.client_id)
            # Anything else from a client is ignored.

    # -- merged execution ----------------------------------------------

    def _execute_ready(self) -> None:
        if self.config.group_count == 1:
            super()._execute_ready()
            return
        self._drain_group(self)

    def _drain_group(self, pipeline: Replica) -> None:
        """Hand a pipeline's contiguous committed slots to the merge.

        Mirrors the base execute-ready scan, but instead of executing,
        each slot is buffered at its global merge slot; the coordinator
        executes it once every lower slot has merged.
        """
        while True:
            next_seq = pipeline.executed_seq + 1
            slot = pipeline.log.slots.get(next_seq)
            if slot is None or not slot.committed or slot.executed:
                break
            batch = pipeline._request_batches.get(
                next_seq, slot.pre_prepare.batch
            )
            slot.executed = True
            pipeline.executed_seq = next_seq
            pipeline._vc_backoff = 0
            self._merge.offer(pipeline.group, next_seq, (pipeline, slot, batch))
        self._kick_exec()

    def _kick_exec(self) -> None:
        if self._exec_kick is not None and not self._exec_kick.triggered:
            self._exec_kick.succeed()

    def _cop_execute_loop(self):
        """The coordinator: executes merged slots strictly one batch at
        a time, so every replica applies the identical operation stream
        and checkpoint digests are deterministic."""
        while self.running:
            if self._cop_st_active:
                self._cop_install_now()
            item = None if self._cop_st_active else self._merge.pop_ready()
            if item is None:
                self._exec_kick = self.env.event()
                yield self._exec_kick
                continue
            global_slot, (pipeline, slot, batch) = item
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_execute(
                    self.replica_id,
                    slot.seq,
                    batch_digest(batch),
                    group=pipeline.group,
                    global_seq=global_slot,
                )
            yield from self._cop_execute_batch(pipeline, slot, batch)
            if slot.seq % self.config.checkpoint_interval == 0:
                pipeline._take_checkpoint(slot.seq)

    def _cop_execute_batch(self, pipeline: Replica, slot, batch):
        cpu = self.endpoint.host.cpu
        tracer = get_tracer(self.env)
        span = None
        ctx = pipeline._slot_trace_ctx.get(slot.seq)
        if tracer.enabled and ctx is not None:
            span = tracer.start_span(
                "bft.execute",
                layer="bft",
                parent=ctx,
                track=self.replica_id,
                seq=slot.seq,
                batch_size=len(batch),
                group=pipeline.group,
            )
        try:
            for request in batch:
                yield cpu.execute(self.config.execution_cost)
                result = self.app.apply(request.operation)
                reply = Reply(
                    replica_id=self.replica_id,
                    client_id=request.client_id,
                    timestamp=request.timestamp,
                    view=pipeline.view,
                    result=result,
                )
                pipeline._reply_cache[request.key()] = reply
                pipeline._request_deadlines.pop(request.key(), None)
                pipeline._proposed_keys.discard(request.key())
                pipeline._reply_to_client(
                    reply, trace_ctx=pipeline._message_trace_ctx(request)
                )
        finally:
            if span is not None:
                span.end()
            pipeline._finish_slot_trace(slot.seq)

    # -- merge-stall liveness ------------------------------------------

    def _merge_fill_loop(self):
        """Close merge gaps left by idle or leaderless groups.

        A group with no client traffic never commits, which stalls the
        merged order for every other group.  The leader of the stalled
        group proposes an *empty* filler batch; if the stall persists
        (e.g. that leader crashed), every replica arms a synthetic
        deadline in the stalled group so its ordinary timers force a
        view change there.
        """
        interval = self.config.merge_fill_interval
        stall_timeout = (
            self.config.merge_stall_timeout or self.config.view_change_timeout
        )
        stalled_slot = None
        stalled_since = 0.0
        while self.running:
            yield self.env.timeout(interval)
            position = self._merge.position
            for pipeline in self._groups:
                stale = [
                    key
                    for key in pipeline._request_deadlines
                    if key[0] == "__merge__" and key[1] <= position
                ]
                for key in stale:
                    pipeline._request_deadlines.pop(key, None)
            if self._cop_st_active:
                stalled_slot = None
                continue
            if self._merge.has_gap():
                slot_no = self._merge.next_slot
            else:
                slot_no = self._lost_tail_slot()
                if slot_no is None:
                    stalled_slot = None
                    continue
            if slot_no != stalled_slot:
                stalled_slot = slot_no
                stalled_since = self.env.now
            pipeline = self._groups[self._merge.group_of(slot_no)]
            seq = self._merge.group_seq(slot_no)
            slot_state = pipeline.log.slots.get(seq)
            unproposed = slot_state is None or (
                not slot_state.committed
                and (
                    slot_state.pre_prepare is None
                    or slot_state.pre_prepare.view < pipeline.view
                )
            )
            if (
                pipeline.is_leader
                and not pipeline.in_view_change
                and not pipeline._pending_requests
                and pipeline.next_seq <= seq
                and unproposed
                and pipeline.log.in_window(seq)
            ):
                try:
                    pipeline._propose(())
                except BftError:
                    pass
            elif self.env.now - stalled_since >= stall_timeout:
                # Already-past deadline: the stalled group's next timer
                # tick escalates into a view change.
                pipeline._request_deadlines.setdefault(
                    ("__merge__", slot_no), self.env.now
                )
                if slot_no != self._st_attempted_slot:
                    # The missing slot may be committed (even garbage-
                    # collected) everywhere else — e.g. this replica was
                    # healing when it went through.  No one retransmits
                    # old commits, but state transfer fetches executed
                    # slots directly.  Once per stalled slot; a genuine
                    # leader failure still recovers via the view change.
                    self._st_attempted_slot = slot_no
                    self.begin_state_transfer()

    def _lost_tail_slot(self):
        """Global slot whose pre-prepare this replica provably missed.

        With no merge gap the replica looks idle, yet a group's next
        sequence number may hold f+1 commit votes without the
        pre-prepare that carries the batch — the proposal was lost in
        flight (nobody retransmits it) while at least one correct peer
        committed and moved on.  Without traffic behind it, nothing
        would ever surface the loss; report it so the stall timer can
        escalate into a state transfer.
        """
        lost = None
        for pipeline in self._groups:
            seq = pipeline.executed_seq + 1
            slot = pipeline.log.slots.get(seq)
            if (
                slot is not None
                and slot.pre_prepare is None
                and not slot.committed
                and len(slot.commits) >= self.config.f + 1
            ):
                slot_no = self._merge.global_slot(pipeline.group, seq)
                if lost is None or slot_no < lost:
                    lost = slot_no
        return lost

    # -- coordinated state transfer ------------------------------------

    def begin_state_transfer(self) -> None:
        if self.config.group_count == 1:
            super().begin_state_transfer()
            return
        if self._cop_st_active:
            return
        self._cop_st_active = True
        self._cop_st_started = self.env.now
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_state_transfer(
                self.replica_id, "started", low_seq=self._merge.position
            )
        for pipeline in self._groups:
            pipeline._st_active = True
            pipeline._st_replies = {}
            self.env.process(
                pipeline._state_transfer_loop(),
                name=f"{self.replica_id}.g{pipeline.group}.statex",
            )
        self._kick_exec()

    def _try_install_state(self) -> None:
        if self.config.group_count == 1:
            super()._try_install_state()
            return
        self._kick_exec()

    def _cop_install_now(self) -> bool:
        """Run the coordinated install from the executor's context.

        Picks the f+1-agreed per-group checkpoint covering the highest
        merged slot, installs it (the snapshot is global state at that
        merged point), aligns every other group's log to the merged
        prefix, then extends slot by slot with per-slot f+1-agreed
        suffix batches.  Returns True when the transfer completed.
        """
        if not self._cop_st_active:
            return False
        best = None
        for pipeline in self._groups:
            candidate = pipeline._st_candidate()
            if candidate is None:
                # Until *every* group has an f+1-agreed checkpoint the
                # true merge target is unknown — a slot covered by a
                # missing group's checkpoint could never be filled from
                # suffixes alone.  The per-group retry loops keep
                # re-requesting until the stragglers answer.
                return False
            seq, digest, replies = candidate
            slot_no = (
                self._merge.global_slot(pipeline.group, seq) if seq else 0
            )
            if best is None or slot_no > best[0]:
                best = (slot_no, pipeline, seq, digest, replies)
        target_slot, pipeline, seq, digest, replies = best
        if target_slot > self._merge.position:
            if seq > pipeline.executed_seq:
                if not pipeline._install_checkpoint(seq, digest, replies):
                    return False
            group_count = self.config.group_count
            for other in self._groups:
                if other is pipeline:
                    continue
                j = other.group
                # Group j's share of the merged prefix [1..target_slot].
                covered = (
                    (target_slot - j - 1) // group_count + 1
                    if target_slot >= j + 1
                    else 0
                )
                if covered > other.executed_seq:
                    other.executed_seq = covered
                    other.next_seq = max(other.next_seq, covered + 1)
                    if covered > other.log.stable_seq:
                        other.log.install_stable(covered)
            self._merge.reset(target_slot)
        # Extend the merged order with f+1-agreed suffix batches.
        while True:
            slot_no = self._merge.next_slot
            target = self._groups[self._merge.group_of(slot_no)]
            seq_needed = self._merge.group_seq(slot_no)
            if seq_needed != target.executed_seq + 1:
                break
            chosen = target._st_suffix_batch(seq_needed)
            if chosen is None:
                break
            target._apply_transferred_batch(seq_needed, chosen)
            self._merge.reset(slot_no)
        if self._merge.position < target_slot:
            return False
        for p in self._groups:
            candidate = p._st_candidate()
            if candidate is not None:
                p._adopt_reported_view(candidate[2])
            elif p._st_replies:
                p._adopt_reported_view(list(p._st_replies.values()))
            p._request_deadlines.clear()
            p._st_active = False
            p._st_replies = {}
        self._cop_st_active = False
        self.state_transfers_completed += 1
        self.rejoin_latency.record(self.env.now - self._cop_st_started)
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_state_transfer(
                self.replica_id,
                "completed",
                checkpoint_seq=self._merge.position,
                executed_seq=self._merge.position,
            )
        for p in self._groups:
            p._execute_ready()
            if p.is_leader:
                p._kick_batcher()
        return True

    # -- lifecycle -----------------------------------------------------

    def stop(self) -> None:
        for pipeline in self._groups[1:]:
            pipeline.running = False
            pipeline._kick_batcher()
        self._kick_exec()
        super().stop()

    def __repr__(self) -> str:
        return (
            f"<CopReplica {self.replica_id} groups={self.config.group_count} "
            f"merged={self.global_executed_seq}>"
        )


class CopClient(BftClient):
    """Client aware of the group partition and per-group leaders.

    Derives the target group of each request with the same partitioner
    the replicas use and addresses the *group's* suspected leader
    first; replies teach it per-group views.  With ``group_count == 1``
    it is bit-identical to :class:`~repro.bft.client.BftClient`.
    """

    def __init__(
        self,
        client_id: str,
        endpoint: ReptorEndpoint,
        replica_ids: List[str],
        f: int,
        group_count: int = 1,
        partitioner: str = "hash",
        **kwargs,
    ):
        super().__init__(client_id, endpoint, replica_ids, f, **kwargs)
        self.group_count = group_count
        self._partitioner = make_partitioner(partitioner, group_count)
        self._group_views: Dict[int, int] = {}

    def _leader_hint(self, timestamp: int) -> str:
        if self.group_count == 1:
            return super()._leader_hint(timestamp)
        group = self._partitioner.group_of(self.client_id, timestamp)
        view = self._group_views.get(group, 0)
        return self.replica_ids[(view + group) % len(self.replica_ids)]

    def _on_reply(self, reply: Reply) -> None:
        if self.group_count > 1 and reply.client_id == self.client_id:
            group = self._partitioner.group_of(self.client_id, reply.timestamp)
            self._group_views[group] = max(
                self._group_views.get(group, 0), reply.view
            )
        super()._on_reply(reply)


class _GroupEquivocationMixin:
    """Equivocating pre-prepare behaviour shared by the Byzantine COP
    classes (same attack as
    :class:`repro.bft.byzantine.EquivocatingLeader`)."""

    def _init_equivocation(self) -> None:
        self.equivocate = False
        self._victims: Set[str] = set()

    def start_equivocating(self, victims: Optional[Set[str]] = None) -> None:
        """Send forged pre-prepares to ``victims`` (default: half the
        other replicas) from now on."""
        self.equivocate = True
        if victims is None:
            others = [p for p in self.all_ids if p != self.replica_id]
            victims = set(others[: len(others) // 2])
        self._victims = victims

    def _outbound_filter(self, message, raw: bytes, peer_id: str):
        if (
            self.equivocate
            and isinstance(message, PrePrepare)
            and peer_id in self._victims
        ):
            forged_batch = tuple(
                type(request)(
                    client_id=request.client_id,
                    timestamp=request.timestamp,
                    operation=b"FORGED:" + request.operation,
                )
                for request in message.batch
            )
            forged = PrePrepare(
                view=message.view,
                seq=message.seq,
                digest=batch_digest(forged_batch),
                batch=forged_batch,
                replica_id=self.replica_id,
            )
            return encode(forged)
        return super()._outbound_filter(message, raw, peer_id)


class _EquivocatingGroupPipeline(_GroupEquivocationMixin, GroupPipeline):
    """A single Byzantine consensus group inside an otherwise honest
    replica host."""

    BYZANTINE = True

    def __init__(self, owner: "CopReplica", group: int):
        super().__init__(owner, group)
        self._init_equivocation()


class CopGroupEquivocator(_GroupEquivocationMixin, CopReplica):
    """COP replica whose ``byzantine_group`` pipeline equivocates.

    Models the COP-specific fault surface: one consensus group turns
    Byzantine while the host's other groups keep behaving — the audit
    invariants must localise the violation to that group while the
    merged order stays safe.
    """

    BYZANTINE = True

    def __init__(self, *args, byzantine_group: int = 1, **kwargs):
        self.byzantine_group = byzantine_group
        self._init_equivocation()
        super().__init__(*args, **kwargs)

    def _make_group_pipeline(self, group: int) -> Replica:
        if group == self.byzantine_group:
            return _EquivocatingGroupPipeline(self, group)
        return super()._make_group_pipeline(group)

    def arm_group_equivocation(
        self,
        victims: Optional[Set[str]] = None,
        group: Optional[int] = None,
    ) -> None:
        """Start equivocating in ``group`` (default the configured
        Byzantine group; group 0 is the coordinator itself)."""
        target = self.byzantine_group if group is None else group
        self._groups[target].start_equivocating(victims)
