"""Per-host TCP stack: port space, demultiplexing, connection factory."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import TcpError
from repro.net.frame import Frame
from repro.tcpstack.config import TcpConfig
from repro.tcpstack.connection import TcpConnection
from repro.tcpstack.listener import TcpListener
from repro.tcpstack.segment import ACK, RST, SYN, Segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.host import Host

__all__ = ["TcpStack"]

#: First ephemeral port handed out by :meth:`TcpStack.connect`.
EPHEMERAL_BASE = 49152

ConnKey = Tuple[int, str, int]  # (local_port, remote_host, remote_port)


class TcpStack:
    """The TCP endpoint living on one host.

    Install with ``TcpStack(host)`` — it registers itself as the host's
    ``"tcp"`` stack and binds the NIC's ``"tcp"`` protocol handler.
    """

    PROTOCOL = "tcp"

    def __init__(self, host: "Host", config: Optional[TcpConfig] = None):
        self.host = host
        self.env = host.env
        self.config = config if config is not None else TcpConfig()
        self._connections: Dict[ConnKey, TcpConnection] = {}
        self._listeners: Dict[int, TcpListener] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        host.install("tcp", self)
        host.nic.register_protocol(self.PROTOCOL, self._on_frame)

    # -- socket factory ---------------------------------------------------

    def listen(self, port: int, backlog: int = 128) -> TcpListener:
        """Open a listening socket on ``port``."""
        self._check_port(port)
        if port in self._listeners:
            raise TcpError(f"{self.host.name}: port {port} already listening")
        listener = TcpListener(self, port, backlog=backlog)
        self._listeners[port] = listener
        return listener

    def connect(
        self,
        remote_host: str,
        remote_port: int,
        local_port: Optional[int] = None,
        config: Optional[TcpConfig] = None,
    ) -> TcpConnection:
        """Start an active open; yield ``connection.established`` to wait."""
        self._check_port(remote_port)
        if local_port is None:
            local_port = self._allocate_ephemeral()
        else:
            self._check_port(local_port)
        key = (local_port, remote_host, remote_port)
        if key in self._connections:
            raise TcpError(f"{self.host.name}: {key} already in use")
        connection = TcpConnection(
            self,
            local_port,
            remote_host,
            remote_port,
            config or self.config,
            passive=False,
        )
        self._connections[key] = connection
        connection.open_active()
        return connection

    def _allocate_ephemeral(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    @staticmethod
    def _check_port(port: int) -> None:
        if not 0 < port < 65536:
            raise TcpError(f"invalid port {port}")

    # -- demultiplexing ------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        segment: Segment = frame.payload
        key = (segment.dst_port, segment.src_host, segment.src_port)
        connection = self._connections.get(key)
        if connection is not None:
            connection.enqueue_segment(segment)
            return
        if segment.has(SYN) and not segment.has(ACK):
            listener = self._listeners.get(segment.dst_port)
            if listener is not None and not listener.closed:
                server_conn = TcpConnection(
                    self,
                    segment.dst_port,
                    segment.src_host,
                    segment.src_port,
                    self.config,
                    passive=True,
                )
                server_conn._listener = listener  # noqa: SLF001 - own module
                self._connections[key] = server_conn
                server_conn.open_passive(segment)
                return
        if not segment.has(RST):
            # Nothing matches: refuse (connection refused / stray segment).
            self._send_rst(segment)

    def _send_rst(self, offending: Segment) -> None:
        rst = Segment(
            src_host=self.host.name,
            src_port=offending.dst_port,
            dst_host=offending.src_host,
            dst_port=offending.src_port,
            flags=RST | ACK,
            seq=offending.ack,
            ack=offending.seq + offending.seq_length,
        )
        self.host.nic.transmit(
            Frame(
                src=self.host.name,
                dst=offending.src_host,
                protocol=self.PROTOCOL,
                wire_bytes=rst.wire_bytes,
                payload=rst,
            )
        )

    # -- callbacks from connections/listeners -------------------------------

    def _connection_established(self, connection: TcpConnection) -> None:
        """Passive handshake finished: queue on the owning listener."""
        listener = getattr(connection, "_listener", None)
        if listener is not None and not listener.closed:
            listener.enqueue_established(connection)

    def _connection_closed(self, connection: TcpConnection) -> None:
        key = (
            connection.local_port,
            connection.remote_host,
            connection.remote_port,
        )
        self._connections.pop(key, None)

    def _listener_closed(self, listener: TcpListener) -> None:
        self._listeners.pop(listener.port, None)

    # -- introspection ----------------------------------------------------

    @property
    def connection_count(self) -> int:
        """Number of live (non-CLOSED) connections."""
        return len(self._connections)

    def __repr__(self) -> str:
        return (
            f"<TcpStack {self.host.name} conns={len(self._connections)} "
            f"listeners={sorted(self._listeners)}>"
        )
