"""Observability must not move the schedule: pinned sampled-run digests.

The sampler's wake-up timers are real agenda entries, but they only ever
schedule the sampler's own next tick, so the relative order of protocol
events — and therefore every modeled output — is unchanged.  These tests
pin that claim: a sampler-enabled figure run reproduces the exact same
fingerprint as the unsampled pinned runs, the only extra agenda entries
are the sampler's own, and the sampled series itself is bit-stable
(the sixth pinned digest).
"""

from repro.bench.echo import run_echo
from repro.bench.selector_echo import reptor_echo
from repro.obs import MetricsSampler
from tests.sim.test_fastpath_determinism import (
    FIG3_POINT_DIGEST,
    FIG4_POINT_DIGEST,
    _digest,
    _echo_fingerprint,
)

# Digest of the sampled Fig-4 run's full time series (0.5 ms period),
# recorded when the sampler landed.  Rounding below matches the capture.
FIG4_SAMPLED_SERIES_DIGEST = (
    "411744e4cb8bb6984efc6906ed11aa76e3332bc6888069a9eddd98e85dc42b13"
)


def _series_fingerprint(sampler) -> str:
    return _digest(
        [
            (
                round(sample["t"], 9),
                sorted(
                    (key, round(value, 6))
                    for key, value in sample["values"].items()
                ),
            )
            for sample in sampler.samples
        ]
    )


def test_sampled_fig4_run_keeps_pinned_fingerprint():
    """Sampler on: modeled outputs bit-identical, extra events sampler-only."""
    plain = reptor_echo("rubin", 20 * 1024, 30)
    sampler = MetricsSampler(period=0.5e-3)
    sampled = reptor_echo("rubin", 20 * 1024, 30, sampler=sampler)
    assert _echo_fingerprint(sampled) == FIG4_POINT_DIGEST
    # Every extra agenda entry is accounted for by a sampler tick.
    assert sampled.sim_events - plain.sim_events == sampler.ticks
    assert sampler.ticks > 0


def test_sampled_fig4_series_is_pinned():
    """The sixth pinned digest: the recorded series itself is bit-stable."""
    sampler = MetricsSampler(period=0.5e-3)
    reptor_echo("rubin", 20 * 1024, 30, sampler=sampler)
    assert _series_fingerprint(sampler) == FIG4_SAMPLED_SERIES_DIGEST


def test_sampled_fig3_run_keeps_pinned_fingerprint():
    sampler = MetricsSampler(period=0.5e-3)
    result = run_echo(
        "rdma_channel", 10 * 1024, 20, sampler=sampler
    )
    assert _echo_fingerprint(result) == FIG3_POINT_DIGEST
    assert sampler.ticks > 0


def test_sampler_identical_across_schedulers(monkeypatch):
    """Calendar vs heap: the sampler's ticks are ordinary agenda entries,
    so switching the far-lane structure must change neither the sampled
    series nor the tick/event accounting."""
    series = {}
    accounting = {}
    for mode in ("heap", "calendar"):
        monkeypatch.setenv("REPRO_SCHEDULER", mode)
        sampler = MetricsSampler(period=0.5e-3)
        result = reptor_echo("rubin", 20 * 1024, 30, sampler=sampler)
        series[mode] = _series_fingerprint(sampler)
        accounting[mode] = (result.sim_events, sampler.ticks)
    assert series["heap"] == series["calendar"] == FIG4_SAMPLED_SERIES_DIGEST
    assert accounting["heap"] == accounting["calendar"]
    assert accounting["heap"][1] > 0


def test_traced_fig4_run_keeps_pinned_fingerprint():
    """The tracer is pure observation: zero agenda entries, same digest."""
    from repro.trace import Tracer

    tracer = Tracer()
    plain = reptor_echo("rubin", 20 * 1024, 30)
    traced = reptor_echo("rubin", 20 * 1024, 30, tracer=tracer)
    assert _echo_fingerprint(traced) == FIG4_POINT_DIGEST
    assert traced.sim_events == plain.sim_events
    assert len(tracer.spans) > 0
