"""ddmin and trace shrinking: minimal failing subsets, capped runs."""

import pytest

from repro.explore.shrink import ShrinkResult, ddmin, shrink_choices


class TestDdmin:
    def test_finds_the_minimal_pair(self):
        items = list(range(20))

        def still_fails(subset):
            return 3 in subset and 7 in subset

        kept, _tests = ddmin(items, still_fails)
        assert sorted(kept) == [3, 7]

    def test_single_culprit(self):
        kept, _ = ddmin(list(range(16)), lambda s: 11 in s)
        assert kept == [11]

    def test_schedule_independent_failure_shrinks_to_nothing(self):
        kept, _ = ddmin(list(range(8)), lambda s: True)
        assert kept == []

    def test_requires_a_failing_starting_point(self):
        with pytest.raises(AssertionError):
            ddmin([1, 2, 3], lambda s: False)


class TestShrinkChoices:
    def test_reduction_keeps_only_needed_deviations(self):
        # Deviations at positions 1, 3, 5; only position 3 matters.
        choices = (0, 2, 0, 1, 0, 3)

        def run_trace(candidate):
            return len(candidate) > 3 and candidate[3] == 1

        result = shrink_choices(choices, run_trace)
        assert result.shrunk == (0, 0, 0, 1)
        assert result.original_deviations == 3
        assert result.shrunk_deviations == 1
        assert result.reduction == pytest.approx(2 / 3)

    def test_schedule_independent_bug_reaches_full_reduction(self):
        result = shrink_choices((0, 1, 2, 0, 1), lambda c: True)
        assert result.shrunk == ()
        assert result.reduction == 1.0

    def test_run_cap_still_returns_a_failing_trace(self):
        choices = tuple([1] * 12)
        calls = []

        def run_trace(candidate):
            calls.append(candidate)
            return sum(candidate) >= 6

        result = shrink_choices(choices, run_trace, max_runs=3)
        assert result.runs_used <= 3
        # Whatever it settled on still fails.
        assert run_trace(result.shrunk)

    def test_deviation_free_trace_must_fail(self):
        with pytest.raises(ValueError):
            shrink_choices((0, 0), lambda c: False)

    def test_result_summary_shape(self):
        result = ShrinkResult((0, 1), (0, 1), runs_used=1)
        summary = result.summary()
        assert summary["reduction"] == 0.0
        assert summary["original_deviations"] == 1
