"""Host-side copy accounting for the simulated data path.

The paper's performance argument is about *copies*: RDMA's zero-copy,
kernel-bypass data path is what buys low latency, and RUBIN registers the
application's send buffer directly while the receive path keeps exactly
one copy into the application buffer.  This probe counts how many times
the *simulator's host CPU* actually materialises payload bytes while a
frame crosses the stack, so the reproduction can demonstrate the same
staging/copy discipline the paper describes — and so the wall-clock gate
(``python -m repro.bench --wallclock``) can stop future PRs from quietly
re-introducing copies.

Semantics (documented in DESIGN.md §11):

* ``copied_bytes`` / ``copies`` — host CPU copies of payload data: every
  time payload bytes are duplicated into a new owned buffer (``bytes()``
  of a slice, ``bytearray`` extension, staging-buffer fill...).  Pure
  ``memoryview`` slicing does not count: no bytes move.
* ``dma_bytes`` / ``dma_ops`` — modeled *NIC* transfers (scatter/gather
  into registered memory regions).  These are the RNIC's DMA engine in
  the modeled world, not the host CPU, exactly as the paper accounts
  them; they are tallied separately so the gate metric isolates the
  avoidable CPU copies.
* ``frames_delivered`` / ``frame_bytes`` — link-level frame deliveries,
  the denominator of the gate metric *bytes copied per delivered frame*.

The probe is **pure host bookkeeping**: it is disabled by default, every
instrumentation site is guarded by ``if COPYSTATS.enabled:``, and no
counter ever feeds back into modeled time, event counts or scheduling —
enabling it cannot change a single modeled-latency number.
"""

from __future__ import annotations

__all__ = ["CopyStats", "COPYSTATS"]


class CopyStats:
    """Counters for host copies, modeled DMA, and delivered frames."""

    __slots__ = (
        "enabled",
        "copied_bytes",
        "copies",
        "dma_bytes",
        "dma_ops",
        "frames_delivered",
        "frame_bytes",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.reset()

    def reset(self) -> None:
        """Zero every counter (does not touch ``enabled``)."""
        self.copied_bytes = 0
        self.copies = 0
        self.dma_bytes = 0
        self.dma_ops = 0
        self.frames_delivered = 0
        self.frame_bytes = 0

    # The hot paths guard with ``if COPYSTATS.enabled:`` and then call
    # these; keeping them as plain methods (no closures, no locks — the
    # simulator is single-threaded) keeps the disabled path to a single
    # attribute load and branch.

    def copy(self, nbytes: int, times: int = 1) -> None:
        """Record ``times`` host CPU copies of ``nbytes`` payload bytes each.

        ``times=2`` covers the double-copy idiom ``bytes(buf[a:b])`` where
        slicing a ``bytearray`` materialises once and ``bytes()`` again.
        """
        self.copied_bytes += nbytes * times
        self.copies += times

    def dma(self, nbytes: int) -> None:
        """Record one modeled NIC DMA transfer of ``nbytes``."""
        self.dma_bytes += nbytes
        self.dma_ops += 1

    def frame(self, nbytes: int) -> None:
        """Record one link-level frame delivery carrying ``nbytes``."""
        self.frames_delivered += 1
        self.frame_bytes += nbytes

    @property
    def copied_per_frame(self) -> float:
        """Gate metric: host bytes copied per delivered frame."""
        if not self.frames_delivered:
            return 0.0
        return self.copied_bytes / self.frames_delivered

    def snapshot(self) -> dict:
        """All counters plus the derived gate metric, as a plain dict."""
        return {
            "copied_bytes": self.copied_bytes,
            "copies": self.copies,
            "dma_bytes": self.dma_bytes,
            "dma_ops": self.dma_ops,
            "frames_delivered": self.frames_delivered,
            "frame_bytes": self.frame_bytes,
            "copied_per_frame": self.copied_per_frame,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CopyStats enabled={self.enabled} copies={self.copies} "
            f"copied_bytes={self.copied_bytes} frames={self.frames_delivered}>"
        )


#: Process-wide probe instance.  The simulator is single-threaded and the
#: benchmarks run one environment at a time, so a module-level singleton
#: keeps the per-site guard down to one attribute load.
COPYSTATS = CopyStats()
