"""Sim-clock time-series sampling of :class:`MetricsRegistry` probes.

A :class:`MetricsSampler` is a tiny simulation process that wakes every
``period`` seconds of simulated time, snapshots every registered probe,
flattens the snapshot to scalar series (``endpoint.r0.credit_stalls``,
``host.r0.cpu.utilization``, ``bft.group.1.committed`` ...) and appends
one timestamped sample to a bounded ring.  Derived ``<name>.rate``
series are computed for every integer-valued scalar (counters and
counter-like callables) as the per-second delta between consecutive
ticks.

Interference contract: the sampler is *observational* with one caveat.
Reading probes never mutates simulation state, but the sampler's wake-up
timers are real agenda entries — they consume event ids.  Because the
kernel orders equal-time events by (time, priority, seq) and the sampler
never schedules anything except its own next wake-up, the relative order
of all protocol events is unchanged: a sampled run produces bit-identical
modeled outputs (latencies, durations, digests) to an unsampled one.
The pinned-fingerprint tests assert exactly that.  The sampler is
default-off everywhere — constructing one is always an explicit opt-in —
so default runs have literally zero extra events.

The ring is bounded by ``max_samples``: the oldest sample is dropped
(and counted in ``dropped``) when a new one would overflow, so a
long-running simulation cannot grow sampler memory without bound.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "TIMESERIES_SCHEMA",
    "MetricsSampler",
    "load_timeseries",
    "render_timeseries",
    "counter_track_events",
    "write_json_atomic",
]

#: Schema tag of the JSON time-series dumps.
TIMESERIES_SCHEMA = "repro.obs/timeseries/v1"

_US = 1e6


def _flatten_into(
    flat: Dict[str, float],
    ints: set,
    name: str,
    value: Any,
) -> None:
    """Flatten one snapshot value into scalar series (depth-first)."""
    if isinstance(value, bool):
        return
    if isinstance(value, int):
        flat[name] = float(value)
        ints.add(name)
    elif isinstance(value, float):
        flat[name] = value
    elif isinstance(value, Mapping):
        for key in sorted(value):
            _flatten_into(flat, ints, f"{name}.{key}", value[key])
    # Strings, lists, None: not scalar series — skipped.


class MetricsSampler:
    """Bounded ring of periodic, timestamped metric samples."""

    def __init__(
        self,
        period: float = 1e-3,
        max_samples: int = 4096,
        name: str = "obs.sampler",
    ):
        if period <= 0:
            raise ReproError(f"{name}: period must be positive")
        if max_samples < 1:
            raise ReproError(f"{name}: max_samples must be >= 1")
        self.period = period
        self.max_samples = max_samples
        self.name = name
        self.env: Any = None
        self.registry: Any = None
        #: Ring of ``{"t": seconds, "values": {series: float}}`` samples.
        self.samples: deque = deque()
        #: Samples evicted by the ring bound.
        self.dropped = 0
        #: Total samples ever taken (``len(samples) + dropped``).
        self.ticks = 0
        self._running = False
        self._prev: Optional[Tuple[float, Dict[str, float], set]] = None

    # -- lifecycle -------------------------------------------------------

    def bind(self, env: Any, registry: Any) -> "MetricsSampler":
        """Attach to a clock source and a registry; returns self."""
        self.env = env
        self.registry = registry
        return self

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin periodic sampling (one sample immediately, then every
        ``period``); idempotent while running."""
        if self.env is None or self.registry is None:
            raise ReproError(f"{self.name}: bind(env, registry) first")
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(self.env), name=self.name)

    def stop(self) -> None:
        """Stop after the current tick; the pending timer just expires."""
        self._running = False

    def _loop(self, env):
        while self._running:
            self.sample_now()
            yield env.timeout(self.period)

    # -- sampling --------------------------------------------------------

    def sample_now(self) -> Dict[str, float]:
        """Take one sample immediately; returns its values mapping."""
        if self.env is None or self.registry is None:
            raise ReproError(f"{self.name}: bind(env, registry) first")
        now = self.env.now
        flat: Dict[str, float] = {}
        ints: set = set()
        for metric_name, value in self.registry.snapshot().items():
            _flatten_into(flat, ints, metric_name, value)
        values = dict(flat)
        if self._prev is not None:
            prev_t, prev_flat, prev_ints = self._prev
            dt = now - prev_t
            if dt > 0:
                for key in ints & prev_ints:
                    delta = flat[key] - prev_flat[key]
                    if delta >= 0:
                        values[f"{key}.rate"] = delta / dt
        self._prev = (now, flat, ints)
        if len(self.samples) >= self.max_samples:
            self.samples.popleft()
            self.dropped += 1
        self.samples.append({"t": now, "values": values})
        self.ticks += 1
        return values

    # -- access ----------------------------------------------------------

    def metric_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for sample in self.samples:
            for key in sample["values"]:
                seen.setdefault(key, None)
        return sorted(seen)

    def series(self, metric: str) -> List[Tuple[float, float]]:
        """``(t, value)`` pairs of one series (missing ticks skipped)."""
        return [
            (sample["t"], sample["values"][metric])
            for sample in self.samples
            if metric in sample["values"]
        ]

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TIMESERIES_SCHEMA,
            "name": self.name,
            "period_s": self.period,
            "max_samples": self.max_samples,
            "ticks": self.ticks,
            "dropped": self.dropped,
            "metrics": self.metric_names(),
            "samples": [
                {"t": sample["t"], "values": dict(sample["values"])}
                for sample in self.samples
            ],
        }

    def write(self, path: str) -> Dict[str, Any]:
        """Atomically write the time-series dump to ``path``."""
        document = self.to_dict()
        write_json_atomic(document, path)
        return document

    def __repr__(self) -> str:
        return (
            f"<MetricsSampler {self.name!r} period={self.period} "
            f"samples={len(self.samples)} dropped={self.dropped}>"
        )


def write_json_atomic(document: Mapping[str, Any], path: str) -> None:
    """Write JSON via a temp file + rename so readers never see a torn
    document (the perf gate reads these while CI may be rewriting)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_timeseries(path: str) -> Dict[str, Any]:
    """Read one time-series dump, validating its schema tag."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != TIMESERIES_SCHEMA:
        raise ReproError(
            f"{path}: not a {TIMESERIES_SCHEMA} document "
            f"(schema={document.get('schema')!r})"
        )
    if not isinstance(document.get("samples"), list):
        raise ReproError(f"{path}: time-series document has no samples")
    return document


def render_timeseries(
    document: Mapping[str, Any], top: Optional[int] = None
) -> str:
    """Per-series summary table of a time-series dump."""
    samples = document.get("samples", [])
    if not samples:
        return "no samples recorded"
    t0, t1 = samples[0]["t"], samples[-1]["t"]
    header = (
        f"{document.get('name', 'timeseries')}: {len(samples)} samples "
        f"over {(t1 - t0) * 1e3:.3f}ms sim-time "
        f"(period {document.get('period_s', 0) * 1e3:.3f}ms, "
        f"dropped {document.get('dropped', 0)})"
    )
    metrics = document.get("metrics") or sorted(
        {key for sample in samples for key in sample["values"]}
    )
    width = max(10, max((len(m) for m in metrics), default=0))
    lines = [
        header,
        f"{'metric':<{width}} {'n':>5} {'first':>12} {'last':>12} "
        f"{'min':>12} {'max':>12}",
        "-" * (width + 58),
    ]
    shown = metrics if top is None else metrics[:top]
    for metric in shown:
        points = [
            sample["values"][metric]
            for sample in samples
            if metric in sample["values"]
        ]
        if not points:
            continue
        lines.append(
            f"{metric:<{width}} {len(points):>5} {points[0]:>12.4g} "
            f"{points[-1]:>12.4g} {min(points):>12.4g} {max(points):>12.4g}"
        )
    if top is not None and len(metrics) > top:
        lines.append(f"... {len(metrics) - top} more series")
    return "\n".join(lines)


def counter_track_events(
    document: Mapping[str, Any],
    metrics: Optional[List[str]] = None,
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """Perfetto counter-track events (``"C"`` phase) from a dump.

    One event per (sample, series); Perfetto renders each distinct name
    as a counter track, so the series plot alongside span tracks when
    merged into a Chrome trace (sorted by ``ts`` — the caller merges).
    """
    wanted = set(metrics) if metrics is not None else None
    events: List[Dict[str, Any]] = []
    for sample in document.get("samples", []):
        ts = sample["t"] * _US
        for key in sorted(sample["values"]):
            if wanted is not None and key not in wanted:
                continue
            events.append(
                {
                    "name": key,
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "args": {"value": sample["values"][key]},
                }
            )
    return events
