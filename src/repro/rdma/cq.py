"""Completion queues, work completions, and completion channels.

"Upon the completion of an RDMA operation, an event is added to a
completion queue (CQ) to notify the application" (paper, Section II-A).
The RUBIN selector's hybrid event queue merges these CQ events with
connection-manager events; the :class:`CompletionChannel` is the blocking
notification primitive it builds on (``ibv_comp_channel``).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.audit import get_audit
from repro.errors import RdmaError
from repro.rdma.verbs import Opcode, WcStatus
from repro.sim import Store
from repro.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment, Event

__all__ = ["WorkCompletion", "CompletionQueue", "CompletionChannel"]

_cq_numbers = itertools.count(1)


@dataclass(frozen=True)
class WorkCompletion:
    """One completion-queue entry (``ibv_wc``)."""

    wr_id: int
    status: WcStatus
    opcode: Opcode
    byte_len: int
    qp_num: int
    #: Out-of-band trace context of the operation this CQE completes.
    trace_ctx: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """True for a successful completion."""
        return self.status is WcStatus.SUCCESS


class CompletionChannel:
    """Blocking notification channel shared by one or more CQs."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._events: Store = Store(env)

    def get_cq_event(self) -> "Event":
        """Wait for the next CQ that signalled; value is the CQ."""
        return self._events.get()

    def try_get_cq_event(self) -> Optional["CompletionQueue"]:
        """Non-blocking variant of :meth:`get_cq_event`."""
        return self._events.try_get()

    def _notify(self, cq: "CompletionQueue") -> None:
        self._events.put(cq)

    def __repr__(self) -> str:
        return f"<CompletionChannel pending={len(self._events)}>"


class CompletionQueue:
    """A bounded queue of work completions.

    Notification follows the verbs contract: after
    :meth:`request_notify`, the *next* CQE pushed wakes the channel once;
    the application then re-arms after draining with :meth:`poll` (the
    race-free pattern RUBIN's event manager implements).
    """

    def __init__(
        self,
        env: "Environment",
        capacity: int = 4096,
        channel: Optional[CompletionChannel] = None,
        name: str = "",
    ):
        if capacity < 1:
            raise RdmaError(f"CQ capacity must be >= 1 ({capacity})")
        self.env = env
        self.capacity = capacity
        self.channel = channel
        self.number = next(_cq_numbers)
        self.name = name or f"cq{self.number}"
        self._entries: Deque[WorkCompletion] = deque()
        # Open "cq.wait" spans, kept index-aligned with ``_entries``
        # (None for untraced completions) so poll() can close them.
        self._wait_spans: Deque[Optional[object]] = deque()
        self._armed = False
        self.overrun = False
        #: Deepest the queue has ever been (bounded-memory evidence for
        #: overload runs; pure observability).
        self.high_watermark = 0

    def push(self, wc: WorkCompletion) -> None:
        """RNIC-side: append a completion (overrun is a hard error)."""
        audit = get_audit(self.env)
        if audit.enabled:
            # Depth *after* this push: > capacity flags the overrun the
            # exception below turns into a hard error.
            audit.on_cq_push(self.name, len(self._entries) + 1, self.capacity)
            if wc.opcode is Opcode.RECV:
                # Uniform accounting for every receive-WR outcome:
                # success, length error, or flush.
                audit.on_recv_complete(wc.qp_num, wc.wr_id)
        if len(self._entries) >= self.capacity:
            # A real CQ overrun corrupts the CQ and errors attached QPs;
            # we fail loudly so tests catch undersized completion queues.
            self.overrun = True
            raise RdmaError(
                f"{self.name}: completion queue overrun "
                f"(capacity {self.capacity})"
            )
        span = None
        if wc.trace_ctx is not None:
            tracer = get_tracer(self.env)
            if tracer.enabled:
                span = tracer.start_span(
                    "cq.wait",
                    layer="cq",
                    parent=wc.trace_ctx,
                    track=self.name,
                    wr_id=wc.wr_id,
                    opcode=wc.opcode.value,
                )
        self._entries.append(wc)
        self._wait_spans.append(span)
        if len(self._entries) > self.high_watermark:
            self.high_watermark = len(self._entries)
        if self._armed and self.channel is not None:
            self._armed = False
            self.channel._notify(self)

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Reap up to ``max_entries`` completions (non-blocking)."""
        if max_entries < 1:
            raise RdmaError(f"max_entries must be >= 1 ({max_entries})")
        out: List[WorkCompletion] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
            span = self._wait_spans.popleft()
            if span is not None:
                span.end()
        return out

    def head_trace_ctx(self) -> Optional[object]:
        """Trace context of the oldest pending completion (if any)."""
        return self._entries[0].trace_ctx if self._entries else None

    def request_notify(self) -> None:
        """Arm the channel notification for the next pushed CQE.

        If entries are already pending, notifies immediately — closing the
        poll/arm race window exactly like ``ibv_req_notify_cq`` users must.
        """
        if self.channel is None:
            raise RdmaError(f"{self.name}: no completion channel attached")
        if self._entries:
            self.channel._notify(self)
        else:
            self._armed = True

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"<CompletionQueue {self.name} pending={len(self._entries)}>"
