"""Critical-path extraction: blocking chains, clipping, aggregation."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    CriticalPathReport,
    critical_path,
    load_profile_document,
    node_label,
    render_flame,
    render_profile,
    spans_from_chrome_trace,
)
from repro.obs.sampler import write_json_atomic
from repro.trace import Tracer, chrome_trace_events


class FakeEnv:
    def __init__(self):
        self.now = 0.0


def span_at(tracer, env, name, layer, start, end, parent=None, **attrs):
    env.now = start
    span = tracer.start_span(name, layer=layer, parent=parent, **attrs)
    env.now = end
    span.end()
    return span


def one_chain(report):
    assert report.traces == 1
    return report.chains[0]


def segment_seconds(chain, label):
    return sum(
        hi - lo
        for _stack, span, lo, hi in chain["segments"]
        if node_label(span) == label
    )


class TestWalk:
    def test_gaps_attributed_to_parent_self_time(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        span_at(tracer, env, "a", "qp", 1e-6, 4e-6, parent=root)
        span_at(tracer, env, "b", "link", 6e-6, 9e-6, parent=root)
        env.now = 10e-6
        root.end()

        chain = one_chain(critical_path(tracer))
        assert chain["end_to_end"] == pytest.approx(10e-6)
        # Gaps [0,1], [4,6], [9,10] fall to the root itself.
        assert segment_seconds(chain, "req") == pytest.approx(4e-6)
        assert segment_seconds(chain, "a") == pytest.approx(3e-6)
        assert segment_seconds(chain, "b") == pytest.approx(3e-6)

    def test_segments_partition_root_window(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        span_at(tracer, env, "a", "qp", 1e-6, 5e-6, parent=root)
        span_at(tracer, env, "b", "link", 4e-6, 9e-6, parent=root)
        env.now = 10e-6
        root.end()

        chain = one_chain(critical_path(tracer))
        total = sum(hi - lo for _s, _sp, lo, hi in chain["segments"])
        assert total == pytest.approx(chain["end_to_end"])
        # Windows are disjoint.
        windows = sorted((lo, hi) for _s, _sp, lo, hi in chain["segments"])
        for (_, hi_prev), (lo_next, _) in zip(windows, windows[1:]):
            assert hi_prev <= lo_next + 1e-15

    def test_latest_ending_child_wins_overlap(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        span_at(tracer, env, "a", "qp", 1e-6, 5e-6, parent=root)
        span_at(tracer, env, "b", "link", 4e-6, 9e-6, parent=root)
        env.now = 10e-6
        root.end()

        chain = one_chain(critical_path(tracer))
        # b gated [4,9]; a only the uncovered prefix [1,4].
        assert segment_seconds(chain, "b") == pytest.approx(5e-6)
        assert segment_seconds(chain, "a") == pytest.approx(3e-6)
        assert segment_seconds(chain, "req") == pytest.approx(2e-6)

    def test_nested_chain_descends(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        env.now = 2e-6
        mid = tracer.start_span("mid", layer="reptor", parent=root)
        span_at(tracer, env, "leaf", "qp", 3e-6, 7e-6, parent=mid)
        env.now = 8e-6
        mid.end()
        env.now = 10e-6
        root.end()

        chain = one_chain(critical_path(tracer))
        assert segment_seconds(chain, "leaf") == pytest.approx(4e-6)
        # mid keeps [2,3] and [7,8]; root keeps [0,2] and [8,10].
        assert segment_seconds(chain, "mid") == pytest.approx(2e-6)
        assert segment_seconds(chain, "req") == pytest.approx(4e-6)

    def test_child_clipped_to_parent_window(self):
        env = FakeEnv()
        tracer = Tracer(env)
        env.now = 2e-6
        root = tracer.start_trace("req", layer="client")
        # Starts before the root and ends after it: only [2,6] counts.
        span_at(tracer, env, "early", "qp", 0.0, 8e-6, parent=root)
        env.now = 6e-6
        root.end()

        chain = one_chain(critical_path(tracer))
        assert segment_seconds(chain, "early") == pytest.approx(4e-6)
        assert segment_seconds(chain, "req") == pytest.approx(0.0)

    def test_superseded_spans_never_descended(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        span_at(
            tracer, env, "bft.prepare", "bft", 1e-6, 9e-6,
            parent=root, superseded=True,
        )
        env.now = 10e-6
        root.end()

        chain = one_chain(critical_path(tracer))
        # The superseded phase's window falls to the root.
        assert segment_seconds(chain, "req") == pytest.approx(10e-6)

    def test_open_children_never_descended(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        env.now = 1e-6
        tracer.start_span("dangling", layer="qp", parent=root)
        env.now = 4e-6
        root.end()

        chain = one_chain(critical_path(tracer))
        assert segment_seconds(chain, "req") == pytest.approx(4e-6)

    def test_group_attr_qualifies_node_label(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        span_at(
            tracer, env, "bft.prepare", "bft", 1e-6, 5e-6,
            parent=root, group=2,
        )
        env.now = 6e-6
        root.end()

        report = critical_path(tracer)
        assert "bft.group.2.prepare" in report.labels()


class TestReport:
    def build(self):
        env = FakeEnv()
        tracer = Tracer(env)
        # Trace 1: qp gates 4 of 10us.  Trace 2: no qp at all.
        root = tracer.start_trace("req", layer="client")
        span_at(tracer, env, "qp.send", "qp", 1e-6, 5e-6, parent=root)
        env.now = 10e-6
        root.end()
        env.now = 20e-6
        root2 = tracer.start_trace("req", layer="client")
        env.now = 26e-6
        root2.end()
        return critical_path(tracer)

    def test_open_and_empty_roots_skipped(self):
        env = FakeEnv()
        tracer = Tracer(env)
        tracer.start_trace("in-flight", layer="client")  # never ends
        root = tracer.start_trace("zero", layer="client")
        root.end()  # zero duration
        assert critical_path(tracer).traces == 0

    def test_trace_id_filter(self):
        env = FakeEnv()
        tracer = Tracer(env)
        for _ in range(2):
            start = env.now
            root = tracer.start_trace("req", layer="client")
            env.now = start + 5e-6
            root.end()
        tid = tracer.spans[0].context.trace_id
        report = critical_path(tracer, trace_id=tid)
        assert report.traces == 1
        assert report.chains[0]["trace_id"] == tid

    def test_contributions_zero_where_node_absent(self):
        report = self.build()
        contributions = report.node_contributions("qp.send")
        assert contributions == [pytest.approx(4e-6), 0.0]

    def test_node_shares_sum_to_one(self):
        doc = self.build().to_dict()
        assert sum(n["share"] for n in doc["nodes"].values()) == pytest.approx(1.0)

    def test_self_plus_wait_equals_on_path_time(self):
        report = self.build()
        doc = report.to_dict()
        req = doc["nodes"]["req"]
        # req was on-path 10us + 6us; self 6us + 6us; wait the 4us covered
        # by qp.send.
        assert req["self_us_total"] == pytest.approx(12.0)
        assert req["wait_us_total"] == pytest.approx(4.0)

    def test_flame_stacks_collapse(self):
        flame = self.build().flame()
        stacks = dict(flame)
        assert stacks["req;qp.send"] == pytest.approx(4e-6)
        assert stacks["req"] == pytest.approx(12e-6)
        # Sorted by descending time.
        assert [s for s, _ in flame] == ["req", "req;qp.send"]

    def test_render_profile_and_flame(self):
        doc = self.build().to_dict()
        text = render_profile(doc)
        assert "qp.send" in text
        assert "end-to-end" in text
        assert "qp.send" in render_flame(doc)

    def test_render_top_limits_rows(self):
        doc = self.build().to_dict()
        assert "qp.send" not in render_profile(doc, top=1)

    def test_empty_report_renders(self):
        assert "no completed traces" in render_profile(
            CriticalPathReport([]).to_dict()
        )


class TestChromeRoundTrip:
    def test_profile_from_exported_trace_matches_direct(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client", track="client")
        span_at(tracer, env, "qp.send", "qp", 1e-6, 5e-6, parent=root)
        span_at(
            tracer, env, "bft.prepare", "bft", 5e-6, 8e-6,
            parent=root, group=1,
        )
        env.now = 10e-6
        root.end()

        direct = critical_path(tracer).to_dict()
        rebuilt = critical_path(
            spans_from_chrome_trace(chrome_trace_events(tracer))
        ).to_dict()
        assert json.dumps(rebuilt, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_open_spans_rebuilt_as_open(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        env.now = 1e-6
        tracer.start_span("dangling", layer="qp", parent=root)
        env.now = 4e-6
        root.end()
        records = spans_from_chrome_trace(
            chrome_trace_events(tracer, include_open=True)
        )
        dangling = next(r for r in records if r.name == "dangling")
        assert dangling.is_open


class TestDocumentIO:
    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        write_json_atomic({"schema": "nope", "nodes": {}}, str(path))
        with pytest.raises(ReproError, match="not a repro.obs/critical_path"):
            load_profile_document(str(path))

    def test_load_rejects_missing_nodes(self, tmp_path):
        path = tmp_path / "bogus.json"
        write_json_atomic(
            {"schema": "repro.obs/critical_path/v1"}, str(path)
        )
        with pytest.raises(ReproError, match="no nodes"):
            load_profile_document(str(path))

    def test_round_trip(self, tmp_path):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        env.now = 5e-6
        root.end()
        doc = critical_path(tracer).to_dict()
        path = tmp_path / "PROFILE_x.json"
        write_json_atomic(doc, str(path))
        assert load_profile_document(str(path)) == doc
