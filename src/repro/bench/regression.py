"""The performance-regression gate (``python -m repro.bench --check``).

Re-runs every point recorded in a committed ``BENCH_fig*.json`` baseline
— same transport, payload and message count — and compares the fresh
numbers against the stored ones under per-metric tolerance bands.  The
simulation is deterministic, so an unchanged tree reproduces the
baseline exactly; the bands only absorb intentional model changes small
enough not to count as regressions.

Latency percentiles regress *upward* (fresh may not exceed baseline by
more than the band); throughput regresses *downward*.  Every check run
appends one JSON line to ``BENCH_history.jsonl`` so the performance
trajectory of the tree is queryable from CI artifacts.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.bench.baseline import echo_record
from repro.bench.cop import run_cop_point
from repro.bench.echo import run_echo
from repro.bench.onesided import run_onesided_point
from repro.bench.overload import run_overload
from repro.bench.results import EchoResult
from repro.bench.selector_echo import reptor_echo
from repro.errors import ReproError

__all__ = [
    "DEFAULT_TOLERANCES",
    "OVERLOAD_TOLERANCES",
    "COP_TOLERANCES",
    "ONESIDED_TOLERANCES",
    "MetricCheck",
    "PointReport",
    "CheckReport",
    "load_baseline",
    "rerun_point",
    "check_figure",
    "run_check",
    "append_history",
]

#: Relative tolerance per metric.  Positive direction = the metric
#: regresses when it grows (latency); negative = when it shrinks
#: (throughput).  Tail percentiles get wider bands: they move more under
#: legitimate model adjustments.
DEFAULT_TOLERANCES: Dict[str, Tuple[float, int]] = {
    "latency_us.p50": (0.25, +1),
    "latency_us.p95": (0.30, +1),
    "latency_us.p99": (0.40, +1),
    "throughput_rps": (0.25, -1),
}

#: The overload figure gates different metrics: goodput must not drop,
#: the shed rate and completed-request tail must not blow up.  Shedding
#: is intentionally generous — its absolute value is a scenario property,
#: not a performance target; the band only catches it *doubling*.
OVERLOAD_TOLERANCES: Dict[str, Tuple[float, int]] = {
    "latency_us.p99": (0.40, +1),
    "goodput_rps": (0.25, -1),
    "shed_rate": (0.50, +1),
}

#: The COP sweep gates committed-request throughput per group count plus
#: client-observed latency.  The G=4/G=1 speedup itself is asserted by
#: the shape check when the baseline is (re)generated; the bands here
#: keep every individual point from drifting.
COP_TOLERANCES: Dict[str, Tuple[float, int]] = {
    "latency_us.p50": (0.25, +1),
    "latency_us.p99": (0.40, +1),
    "committed_rps": (0.25, -1),
}

#: The one-sided figure bands latency like the echo figures but gates
#: the security metrics *exactly* (tolerance 0, deterministic run): the
#: blast radius may never grow past its baseline — in particular the
#: guarded points' committed 0 — and detections and completed requests
#: may never drop.
ONESIDED_TOLERANCES: Dict[str, Tuple[float, int]] = {
    "latency_us.p50": (0.25, +1),
    "latency_us.p99": (0.40, +1),
    "blast_radius": (0.0, +1),
    "detections": (0.0, -1),
    "completed": (0.0, -1),
}

#: ``reptor_echo`` takes the protocol name; baselines store the label
#: the workload reports.
_FIG4_TRANSPORTS = {"nio_tcp": "nio", "rubin": "rubin"}


@dataclass(frozen=True)
class MetricCheck:
    """One metric of one point compared against its baseline."""

    metric: str
    baseline: float
    fresh: float
    tolerance: float
    direction: int
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "tolerance": self.tolerance,
            "regressed": self.regressed,
        }


@dataclass
class PointReport:
    """All metric checks for one (transport, payload) sweep point."""

    transport: str
    payload_bytes: int
    group_count: Optional[int] = None
    checks: List[MetricCheck] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.regressed]

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "transport": self.transport,
            "payload_bytes": self.payload_bytes,
            "checks": [c.to_dict() for c in self.checks],
        }
        if self.group_count is not None:
            record["group_count"] = self.group_count
        return record


@dataclass
class CheckReport:
    """The gate's verdict for one figure baseline."""

    figure: str
    points: List[PointReport] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricCheck]:
        return [c for p in self.points for c in p.regressions]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure,
            "ok": self.ok,
            "points": [p.to_dict() for p in self.points],
        }


def load_baseline(path: str) -> Dict[str, Any]:
    """Read and structurally validate one ``BENCH_fig*.json``."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    figure = document.get("figure")
    points = document.get("points")
    if not isinstance(figure, str) or not isinstance(points, list):
        raise ReproError(f"{path}: not a baseline document")
    for point in points:
        for key in ("transport", "payload_bytes", "messages", "latency_us"):
            if key not in point:
                raise ReproError(f"{path}: point missing {key!r}")
    return document


def rerun_point(figure: str, point: Mapping[str, Any]):
    """Repeat one baseline point with its recorded parameters.

    Returns an :class:`EchoResult` for the echo figures, or the
    JSON-ready record dict for the overload figure.
    """
    transport = point["transport"]
    payload = int(point["payload_bytes"])
    messages = int(point["messages"])
    if figure == "fig3":
        return run_echo(transport, payload, messages)
    if figure == "fig4":
        protocol = _FIG4_TRANSPORTS.get(transport)
        if protocol is None:
            raise ReproError(
                f"unknown fig4 transport {transport!r} "
                f"(have {sorted(_FIG4_TRANSPORTS)})"
            )
        return reptor_echo(protocol, payload, messages)
    if figure == "overload":
        return run_overload(
            transport=transport,
            payload_bytes=payload,
            messages=messages,
            num_clients=int(point["num_clients"]),
            admission_budget=int(point["admission_budget"]),
            view_change_timeout=float(point["view_change_timeout"]),
        )
    if figure == "onesided":
        return run_onesided_point(
            point["mode"],
            payload_bytes=payload,
            messages=messages,
            request_gap=float(point["request_gap"]),
            attack_at=float(point["attack_at"]),
        )
    if figure == "cop":
        return run_cop_point(
            int(point["group_count"]),
            transport=transport,
            payload_bytes=payload,
            messages=messages,
            num_clients=int(point["num_clients"]),
            batch_size=int(point["batch_size"]),
            handler_cost=float(point["handler_cost"]),
        )
    raise ReproError(
        f"unknown figure {figure!r} "
        "(have fig3, fig4, overload, onesided, cop)"
    )


def _metric(record: Mapping[str, Any], path: str) -> float:
    node: Any = record
    for part in path.split("."):
        node = node[part]
    return float(node)


def check_figure(
    document: Mapping[str, Any],
    tolerances: Optional[Mapping[str, Tuple[float, int]]] = None,
    tolerance_scale: float = 1.0,
) -> CheckReport:
    """Re-run every point of ``document`` and band-check each metric."""
    if tolerance_scale <= 0:
        raise ReproError("tolerance scale must be positive")
    figure = document["figure"]
    if tolerances is None:
        if figure == "overload":
            tolerances = OVERLOAD_TOLERANCES
        elif figure == "cop":
            tolerances = COP_TOLERANCES
        elif figure == "onesided":
            tolerances = ONESIDED_TOLERANCES
        else:
            tolerances = DEFAULT_TOLERANCES
    report = CheckReport(figure=figure)
    for point in document["points"]:
        rerun = rerun_point(figure, point)
        fresh = rerun if isinstance(rerun, Mapping) else echo_record(rerun)
        point_report = PointReport(
            transport=point["transport"],
            payload_bytes=int(point["payload_bytes"]),
            group_count=(
                int(point["group_count"]) if "group_count" in point else None
            ),
        )
        for metric, (tolerance, direction) in sorted(tolerances.items()):
            baseline_value = _metric(point, metric)
            fresh_value = _metric(fresh, metric)
            band = abs(baseline_value) * tolerance * tolerance_scale
            if direction > 0:
                regressed = fresh_value > baseline_value + band
            else:
                regressed = fresh_value < baseline_value - band
            point_report.checks.append(
                MetricCheck(
                    metric=metric,
                    baseline=baseline_value,
                    fresh=fresh_value,
                    tolerance=tolerance * tolerance_scale,
                    direction=direction,
                    regressed=regressed,
                )
            )
        report.points.append(point_report)
    return report


def append_history(
    history_path: str, reports: List[CheckReport]
) -> Dict[str, Any]:
    """Append one JSON line describing this check run; returns the entry."""
    entry = {
        "checked_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "ok": all(r.ok for r in reports),
        "figures": {
            r.figure: {
                "ok": r.ok,
                "points": len(r.points),
                "regressions": [c.to_dict() for c in r.regressions],
            }
            for r in reports
        },
    }
    directory = os.path.dirname(history_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def run_check(
    baseline_dir: str,
    figures: Tuple[str, ...] = ("fig3", "fig4", "overload"),
    history_path: Optional[str] = None,
    tolerance_scale: float = 1.0,
) -> Tuple[bool, List[CheckReport]]:
    """Gate entry point: check every committed figure baseline.

    Missing baseline files are an error — the gate exists to stop the
    trajectory from silently going dark.
    """
    reports: List[CheckReport] = []
    for figure in figures:
        path = os.path.join(baseline_dir, f"BENCH_{figure}.json")
        if not os.path.exists(path):
            raise ReproError(f"baseline {path} not found")
        document = load_baseline(path)
        reports.append(
            check_figure(document, tolerance_scale=tolerance_scale)
        )
    if history_path is not None:
        append_history(history_path, reports)
    return all(r.ok for r in reports), reports
