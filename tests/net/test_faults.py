"""Fault injection: controllers, partitions, healing."""

import pytest

from repro.errors import NetworkError
from repro.net import FaultyFabric, Frame, LinkFaultController
from repro.sim import Environment


def make_fabric(names=("a", "b")):
    env = Environment()
    fabric = FaultyFabric(env)
    for name in names:
        fabric.add_host(name)
    fabric.full_mesh(propagation_delay=0.0)
    return env, fabric


def send_probe(env, fabric, src, dst, collector):
    fabric.host(dst).nic.register_protocol(
        f"probe-{src}-{dst}", lambda f: collector.append(f.payload)
    )
    fabric.host(src).nic.transmit(
        Frame(
            src=src,
            dst=dst,
            protocol=f"probe-{src}-{dst}",
            wire_bytes=100,
            payload=f"{src}->{dst}",
        )
    )


class TestController:
    def test_passes_by_default(self):
        controller = LinkFaultController()
        frame = Frame(src="a", dst="b", protocol="t", wire_bytes=1, payload=None)
        assert controller(frame) is False
        assert controller.passed == 1

    def test_block_drops_everything(self):
        controller = LinkFaultController()
        controller.block()
        frame = Frame(src="a", dst="b", protocol="t", wire_bytes=1, payload=None)
        assert controller(frame) is True
        assert controller.dropped == 1

    def test_heal_restores(self):
        controller = LinkFaultController()
        controller.block()
        controller.heal()
        frame = Frame(src="a", dst="b", protocol="t", wire_bytes=1, payload=None)
        assert controller(frame) is False

    def test_seeded_loss_is_reproducible(self):
        def run(seed):
            controller = LinkFaultController()
            controller.set_loss(0.5, seed=seed)
            frame = Frame(src="a", dst="b", protocol="t", wire_bytes=1, payload=None)
            return [controller(frame) for _ in range(50)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_invalid_loss_rate(self):
        with pytest.raises(NetworkError):
            LinkFaultController().set_loss(1.5)


class TestFaultyFabric:
    def test_traffic_flows_when_healthy(self):
        env, fabric = make_fabric()
        got = []
        send_probe(env, fabric, "a", "b", got)
        env.run()
        assert got == ["a->b"]

    def test_blocked_cable_drops(self):
        env, fabric = make_fabric()
        fabric.controller("a", "b").block()
        got = []
        send_probe(env, fabric, "a", "b", got)
        env.run()
        assert got == []
        assert fabric.total_dropped() == 1

    def test_isolate_cuts_all_cables_of_host(self):
        env, fabric = make_fabric(("a", "b", "c"))
        fabric.isolate("b")
        got_ab, got_ac = [], []
        send_probe(env, fabric, "a", "b", got_ab)
        send_probe(env, fabric, "a", "c", got_ac)
        env.run()
        assert got_ab == []
        assert got_ac == ["a->c"]

    def test_partition_cuts_cross_group_only(self):
        env, fabric = make_fabric(("a", "b", "c", "d"))
        fabric.partition({"a", "b"}, {"c", "d"})
        got_ab, got_ac = [], []
        send_probe(env, fabric, "a", "b", got_ab)
        send_probe(env, fabric, "a", "c", got_ac)
        env.run()
        assert got_ab == ["a->b"]  # same side: alive
        assert got_ac == []  # across the cut: dropped

    def test_overlapping_partition_rejected(self):
        env, fabric = make_fabric(("a", "b", "c"))
        with pytest.raises(NetworkError, match="overlap"):
            fabric.partition({"a", "b"}, {"b", "c"})

    def test_heal_all_restores_traffic(self):
        env, fabric = make_fabric()
        fabric.controller("a", "b").block()
        fabric.heal_all()
        got = []
        send_probe(env, fabric, "a", "b", got)
        env.run()
        assert got == ["a->b"]

    def test_unknown_cable_raises(self):
        env, fabric = make_fabric()
        with pytest.raises(NetworkError, match="no controlled cable"):
            fabric.controller("a", "ghost")

    def test_isolating_unknown_host_raises(self):
        env, fabric = make_fabric()
        with pytest.raises(NetworkError):
            fabric.isolate("mars")

    def test_user_drop_fn_composes(self):
        env = Environment()
        fabric = FaultyFabric(env)
        fabric.add_host("a")
        fabric.add_host("b")
        dropped_ids = []

        def user_drop(frame):
            dropped_ids.append(frame.frame_id)
            return False  # observes but never drops

        fabric.connect("a", "b", propagation_delay=0.0, drop_fn=user_drop)
        got = []
        send_probe(env, fabric, "a", "b", got)
        env.run()
        assert got == ["a->b"]
        assert len(dropped_ids) == 1
