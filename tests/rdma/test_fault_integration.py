"""RDMA transport recovery through runtime-injected faults."""

import pytest

from repro.net import FaultyFabric
from repro.rdma import (
    QpCapabilities,
    QpState,
    RdmaDevice,
    RecvWorkRequest,
    SendWorkRequest,
    Sge,
    WcStatus,
)
from repro.rdma.verbs import Opcode
from repro.sim import Environment


def faulty_rig(caps=None):
    env = Environment()
    fabric = FaultyFabric(env)
    fabric.add_host("left")
    fabric.add_host("right")
    fabric.connect("left", "right")
    left = RdmaDevice(fabric.host("left"))
    right = RdmaDevice(fabric.host("right"))
    lp, rp = left.alloc_pd(), right.alloc_pd()
    lcq, rcq = left.create_cq(), right.create_cq()
    caps = caps or QpCapabilities(retry_timeout=200e-6)
    lqp = left.create_qp(lp, lcq, lcq, caps)
    rqp = right.create_qp(rp, rcq, rcq, caps)
    lqp.connect("right", rqp.qp_num)
    rqp.connect("left", lqp.qp_num)
    return env, fabric, (left, lp, lcq, lqp), (right, rp, rcq, rqp)


def run_until_cqe(env, cq, deadline):
    end = env.now + deadline
    out = []
    while not out and env.now < end and env.peek() < end:
        env.step()
        out = cq.poll(1)
    return out


def test_transfer_survives_transient_blackout():
    """A mid-transfer blackout heals and the message still lands intact."""
    env, fabric, (left, lp, lcq, lqp), (right, rp, rcq, rqp) = faulty_rig()
    payload = bytes(i % 256 for i in range(40_000))
    src = left.reg_mr(lp, bytearray(payload))
    dst = right.reg_mr(rp, bytearray(len(payload)))
    rqp.post_recv(RecvWorkRequest(wr_id=1, sge=Sge(dst)))
    lqp.post_send(
        SendWorkRequest(wr_id=2, opcode=Opcode.SEND, sge=Sge(src, 0, len(payload)))
    )

    def saboteur(env):
        yield env.timeout(10e-6)  # mid-flight
        fabric.controller("left", "right").block()
        yield env.timeout(300e-6)
        fabric.heal_all()

    env.process(saboteur(env))
    wcs = run_until_cqe(env, rcq, deadline=0.5)
    assert wcs and wcs[0].status is WcStatus.SUCCESS
    assert bytes(dst.buffer) == payload
    assert fabric.total_dropped() > 0  # the blackout really bit


def test_permanent_blackout_errors_qp_after_retries():
    env, fabric, (left, lp, lcq, lqp), _right = faulty_rig(
        caps=QpCapabilities(retry_timeout=100e-6, retry_count=3)
    )
    fabric.controller("left", "right").block()
    src = left.reg_mr(lp, bytearray(b"into the void"))
    lqp.post_send(
        SendWorkRequest(wr_id=1, opcode=Opcode.SEND, sge=Sge(src, 0, 13))
    )
    env.run(until=env.now + 0.2)
    assert lqp.state is QpState.ERROR
    wcs = lcq.poll()
    assert wcs and wcs[0].status is WcStatus.RETRY_EXC_ERR


def test_sustained_loss_recovers_with_backoff():
    """20 % injected loss: the retry machinery converges, no avalanche."""
    env, fabric, (left, lp, lcq, lqp), (right, rp, rcq, rqp) = faulty_rig()
    fabric.controller("left", "right").set_loss(0.2, seed=42)
    payload = bytes((3 * i) % 256 for i in range(20_000))
    src = left.reg_mr(lp, bytearray(payload))
    dst = right.reg_mr(rp, bytearray(len(payload)))
    rqp.post_recv(RecvWorkRequest(wr_id=1, sge=Sge(dst)))
    lqp.post_send(
        SendWorkRequest(wr_id=2, opcode=Opcode.SEND, sge=Sge(src, 0, len(payload)))
    )
    wcs = run_until_cqe(env, rcq, deadline=2.0)
    assert wcs and wcs[0].status is WcStatus.SUCCESS
    assert bytes(dst.buffer) == payload
