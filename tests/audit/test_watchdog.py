"""Consensus watchdog: stall detection, re-arm, and pure observation."""

from repro.audit import AuditConfig, AuditManager, ConsensusWatchdog, install_audit
from repro.sim import Environment


def make_watchdog(outstanding, stall_timeout=0.1, interval=0.01):
    env = Environment()
    manager = AuditManager(
        config=AuditConfig(
            stall_timeout=stall_timeout, watchdog_interval=interval
        ),
        expect_violations=True,
    )
    install_audit(env, manager)
    watchdog = ConsensusWatchdog(manager, env, outstanding)
    watchdog.start()
    return env, manager, watchdog


class TestConsensusWatchdog:
    def test_no_alarm_when_nothing_outstanding(self):
        env, manager, watchdog = make_watchdog(lambda: 0)
        env.run(until=1.0)
        assert watchdog.stalls_detected == 0
        assert manager.violations == []

    def test_stall_fires_once_per_episode(self):
        env, manager, watchdog = make_watchdog(lambda: 3)
        env.run(until=1.0)  # 10x the stall timeout with zero progress
        assert watchdog.stalls_detected == 1
        assert [v.rule for v in manager.violations] == ["bft.consensus-stall"]
        detail = dict(manager.violations[0].detail)
        assert detail["outstanding_requests"] == 3
        assert manager.postmortems  # the stall dumped a post-mortem

    def test_progress_rearms_the_alarm(self):
        env, manager, watchdog = make_watchdog(lambda: 1)

        def make_progress():
            yield env.timeout(0.3)
            manager.on_execute("r0", 1, b"d")  # resets last_progress

        env.process(make_progress(), name="progress")
        env.run(until=1.0)
        # Episode one before the progress, episode two after it went
        # stale again: the alarm re-armed in between.
        assert watchdog.stalls_detected == 2

    def test_stop_halts_the_loop(self):
        env, manager, watchdog = make_watchdog(lambda: 1, stall_timeout=10.0)
        watchdog.stop()
        env.run(until=1.0)
        assert watchdog.stalls_detected == 0
