"""Shared-resource primitives built on the event kernel.

Two primitives cover everything the network and protocol layers need:

:class:`Store`
    An unbounded-or-bounded FIFO queue of Python objects with blocking
    ``put``/``get`` — the backbone of NIC queues, completion queues and
    mailbox-style inter-process communication.

:class:`Resource`
    A counted semaphore with FIFO fairness — used for CPU cores and DMA
    engines, where "holding" the resource for a simulated duration models
    the cost of an operation.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["Store", "Resource", "StorePut", "StoreGet", "ResourceRequest"]


class StorePut(Event):
    """Event for a pending :meth:`Store.put`; triggers when accepted."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any):
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Event for a pending :meth:`Store.get`; value is the item."""

    __slots__ = ("filter",)

    def __init__(
        self, env: "Environment", filter: Optional[Callable[[Any], bool]] = None
    ):
        super().__init__(env)
        self.filter = filter


class Store:
    """A FIFO queue of items with blocking put/get semantics.

    ``capacity`` bounds how many items the store holds; puts beyond the
    bound stay pending until a get frees space.  ``get`` optionally takes a
    filter predicate; the first *matching* item is removed (items before it
    stay queued), which the RDMA completion-queue model uses to poll for
    specific completion kinds in tests.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_getters(self) -> int:
        """Number of get() calls currently blocked."""
        return len(self._getters)

    @property
    def pending_putters(self) -> int:
        """Number of put() calls currently blocked."""
        return len(self._putters)

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the returned event triggers once it is stored."""
        event = StorePut(self.env, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the first (matching) item; event value is the item."""
        event = StoreGet(self.env, filter)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Any:
        """Non-blocking get: pop the head item or return None."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def _dispatch(self) -> None:
        """Match pending puts to capacity and pending gets to items."""
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve getters in FIFO order; a getter whose filter matches
            # nothing stays at the front (strict FIFO, like simpy's
            # FilterStore would *not* do — here blocked filters do not let
            # later getters overtake, keeping completion polling fair).
            while self._getters and self.items:
                get = self._getters[0]
                if get.filter is None:
                    item = self.items.popleft()
                else:
                    for index, candidate in enumerate(self.items):
                        if get.filter(candidate):
                            del self.items[index]
                            item = candidate
                            break
                    else:
                        break
                self._getters.popleft()
                get.succeed(item)
                progress = True


class ResourceRequest(Event):
    """Event for a pending :meth:`Resource.request`."""

    __slots__ = ("resource", "released")

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource
        self.released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        self.resource.release(self)

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """A counted, FIFO-fair semaphore over simulated time.

    Typical usage inside a process::

        req = cpu.request()
        yield req
        yield env.timeout(cost_seconds)
        req.release()

    or with the context-manager form ``with cpu.request() as req: yield req``.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._users: list[ResourceRequest] = []
        self._waiters: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting for a slot."""
        return len(self._waiters)

    def request(self) -> ResourceRequest:
        """Ask for a slot; the returned event triggers when granted."""
        event = ResourceRequest(self.env, self)
        if len(self._users) < self.capacity:
            self._users.append(event)
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self, request: ResourceRequest) -> None:
        """Return a previously granted slot (idempotent)."""
        if request.released:
            return
        request.released = True
        if request in self._users:
            self._users.remove(request)
        else:
            # Never granted: cancel the waiting request.
            try:
                self._waiters.remove(request)
            except ValueError:
                raise SimulationError(
                    "release() of a request unknown to this resource"
                ) from None
            return
        while self._waiters and len(self._users) < self.capacity:
            waiter = self._waiters.popleft()
            self._users.append(waiter)
            waiter.succeed()

    def run_task(self, duration: float) -> "Event":
        """Convenience process: hold one slot for ``duration`` and finish.

        Returns the :class:`~repro.sim.process.Process` so callers can yield
        it.  This is the standard way the network stacks charge CPU time.
        """

        def task() -> Generator[Event, Any, None]:
            req = self.request()
            yield req
            try:
                yield self.env.timeout(duration)
            finally:
                req.release()

        return self.env.process(task(), name=f"run_task({duration:.3g})")
