"""PBFT protocol core (the Reptor algorithm) over the Reptor comm stack.

Agreement (pre-prepare / prepare / commit with batching, checkpoints and
view changes), execution of a pluggable deterministic state machine, a
quorum-checking client, Byzantine/crash fault behaviours for testing, and
a one-call cluster builder.  Runs over either the NIO/TCP or the
RUBIN/RDMA transport — the comparison at the heart of the paper.
"""

from repro.bft.byzantine import (
    CompromisedRkeyReplica,
    CorruptingReplica,
    EquivocatingLeader,
    EquivocatingNewViewLeader,
    EquivocatingViewChangeReplica,
    PermissionRaceReplica,
    RogueOverwriteReplica,
    SilentReplica,
    StallingViewChangeLeader,
)
from repro.bft.client import BftClient
from repro.bft.cluster import REPLICA_PORT, BftCluster
from repro.bft.config import BftConfig
from repro.bft.cop import (
    AdaptiveBatcher,
    CopClient,
    CopGroupEquivocator,
    CopReplica,
    GroupPipeline,
    MergeStage,
    make_partitioner,
)
from repro.bft.log import MessageLog, Slot
from repro.bft.onesided import OneSidedLink, OneSidedReplica, wire_onesided
from repro.bft.messages import (
    Checkpoint,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    Reply,
    Request,
    StateTransferReply,
    StateTransferRequest,
    ViewChange,
    decode,
    encode,
)
from repro.bft.replica import Replica, batch_digest
from repro.bft.statemachine import CounterMachine, KeyValueStore, StateMachine

__all__ = [
    "AdaptiveBatcher",
    "BftCluster",
    "BftClient",
    "BftConfig",
    "CopClient",
    "CopGroupEquivocator",
    "CopReplica",
    "GroupPipeline",
    "MergeStage",
    "make_partitioner",
    "Replica",
    "OneSidedReplica",
    "OneSidedLink",
    "wire_onesided",
    "batch_digest",
    "MessageLog",
    "Slot",
    "StateMachine",
    "KeyValueStore",
    "CounterMachine",
    "SilentReplica",
    "EquivocatingLeader",
    "CorruptingReplica",
    "StallingViewChangeLeader",
    "EquivocatingViewChangeReplica",
    "EquivocatingNewViewLeader",
    "CompromisedRkeyReplica",
    "RogueOverwriteReplica",
    "PermissionRaceReplica",
    "Request",
    "Reply",
    "PrePrepare",
    "Prepare",
    "Commit",
    "Checkpoint",
    "ViewChange",
    "NewView",
    "StateTransferRequest",
    "StateTransferReply",
    "encode",
    "decode",
    "REPLICA_PORT",
]
