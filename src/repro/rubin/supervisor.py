"""Channel supervision: automatic reconnect with backoff.

A :class:`RubinChannel` enters a terminal error state when its queue pair
dies (peer crash, link blackout past the retry budget, rejected
handshake).  The NIO baseline the paper compares against simply
reconnects the socket; the :class:`ChannelSupervisor` gives RUBIN the
same behaviour: it watches channel error notifications, tears the dead
QP down and re-runs the CM handshake with seeded exponential backoff +
jitter, under a capped retry budget.

A re-established channel surfaces ``OP_ACCEPT`` readiness through the
selection-key machinery again (the same readiness an original active
open produces), so the application replays its ``finish_connect()`` flow
and observes the reconnect exactly as it would with NIO sockets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.audit import get_audit
from repro.errors import RubinError
from repro.rubin.channel import RubinChannel
from repro.sim.monitor import Counter, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rubin.selector import RubinSelector
    from repro.sim import Environment

__all__ = ["SupervisorPolicy", "ChannelSupervisor"]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Backoff and budget parameters for channel recovery.

    The delay before attempt ``k`` (0-based) is
    ``min(base_delay * multiplier**k, max_delay)`` scaled by a seeded
    jitter factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` —
    jitter desynchronises replicas that all lost the same peer, so the
    restarted host is not hammered by simultaneous handshakes.
    """

    base_delay: float = 500e-6
    max_delay: float = 20e-3
    multiplier: float = 2.0
    jitter: float = 0.25
    max_attempts: int = 20
    #: How long one CM handshake may stall before it is aborted and
    #: counted as a failed attempt (covers REQ/REP frames black-holed by
    #: a crashed peer).
    connect_timeout: float = 5e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise RubinError("need 0 < base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise RubinError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise RubinError("jitter must be in [0, 1)")
        if self.max_attempts < 1:
            raise RubinError("max_attempts must be >= 1")
        if self.connect_timeout <= 0:
            raise RubinError("connect_timeout must be > 0")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered backoff delay before ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class ChannelSupervisor:
    """Watches channels and re-establishes them after transport errors.

    Only actively opened channels (those with a ``remote_addr``) are
    eligible: the passive side of a connection recovers by accepting the
    fresh inbound handshake, not by re-dialing.
    """

    def __init__(
        self,
        env: "Environment",
        policy: Optional[SupervisorPolicy] = None,
        selector: Optional["RubinSelector"] = None,
        name: str = "supervisor",
    ):
        self.env = env
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.selector = selector
        self.name = name
        self._rng = random.Random(self.policy.seed)
        self._stopped = False
        self._recovering: Set[int] = set()
        self._abandoned: Set[int] = set()
        #: Waiter events poked by channel state changes, keyed by
        #: channel_id (one recovery process per channel at a time).
        self._waiters: Dict[int, object] = {}
        self.on_recovered: List[Callable[[RubinChannel], None]] = []
        self.on_abandoned: List[Callable[[RubinChannel], None]] = []
        # Metrics (ISSUE: reconnect attempts, successful recoveries).
        self.reconnect_attempts = Counter(f"{name}.reconnect_attempts")
        self.reconnects = Counter(f"{name}.reconnects")
        self.abandons = Counter(f"{name}.abandons")
        self.recovery_latency = TimeSeries(env, f"{name}.recovery_latency")

    def supervise(self, channel: RubinChannel) -> None:
        """Start watching ``channel``; recover it whenever it errors."""
        if channel.remote_addr is None:
            raise RubinError(f"{channel}: only dialed channels are supervised")
        channel.add_watcher(lambda ch=channel: self._on_change(ch))
        if channel.errored:
            self._maybe_recover(channel)

    def stop(self) -> None:
        """Stop supervising; in-flight recoveries abort at the next step."""
        self._stopped = True
        for waiter in list(self._waiters.values()):
            if not waiter.triggered:
                waiter.succeed()

    # ------------------------------------------------------------------

    def _on_change(self, channel: RubinChannel) -> None:
        waiter = self._waiters.get(channel.channel_id)
        if waiter is not None and not waiter.triggered:
            waiter.succeed()
        if channel.errored:
            self._maybe_recover(channel)

    def _maybe_recover(self, channel: RubinChannel) -> None:
        if self._stopped:
            return
        cid = channel.channel_id
        if cid in self._recovering or cid in self._abandoned:
            return
        self._recovering.add(cid)
        self.env.process(
            self._recover(channel), name=f"{self.name}.recover.ch{cid}"
        )

    def _recover(self, channel: RubinChannel):
        cid = channel.channel_id
        started = self.env.now
        try:
            for attempt in range(self.policy.max_attempts):
                yield self.env.timeout(self.policy.delay(attempt, self._rng))
                if self._stopped:
                    return
                self.reconnect_attempts.increment()
                audit = get_audit(self.env)
                if audit.enabled:
                    audit.on_reconnect(
                        self.name,
                        "attempt",
                        channel_id=cid,
                        attempt=attempt,
                        cause=channel.last_error,
                    )
                conn_id = channel.reconnect()
                deadline = self.env.now + self.policy.connect_timeout
                while True:
                    if channel.established:
                        break
                    if channel.errored or self._stopped:
                        break
                    remaining = deadline - self.env.now
                    if remaining <= 0:
                        break
                    waiter = self.env.event()
                    self._waiters[cid] = waiter
                    yield self.env.any_of(
                        [waiter, self.env.timeout(remaining)]
                    )
                    self._waiters.pop(cid, None)
                if self._stopped:
                    return
                if channel.established:
                    channel.reconnects += 1
                    self.reconnects.increment()
                    self.recovery_latency.record(self.env.now - started)
                    if audit.enabled:
                        audit.on_reconnect(
                            self.name,
                            "success",
                            channel_id=cid,
                            attempts=attempt + 1,
                            latency=self.env.now - started,
                        )
                    if self.selector is not None:
                        self.selector.wakeup()
                    for callback in list(self.on_recovered):
                        callback(channel)
                    return
                if not channel.errored:
                    # Handshake stalled: abort so a late REP is dropped.
                    channel.cm.abort_connect(conn_id)
            self._abandoned.add(cid)
            self.abandons.increment()
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_reconnect(
                    self.name,
                    "abandoned",
                    channel_id=cid,
                    attempts=self.policy.max_attempts,
                )
            for callback in list(self.on_abandoned):
                callback(channel)
        finally:
            self._waiters.pop(cid, None)
            self._recovering.discard(cid)

    def __repr__(self) -> str:
        return (
            f"<ChannelSupervisor {self.name} "
            f"recovering={len(self._recovering)} "
            f"reconnects={self.reconnects.value}>"
        )
