"""Execution-history safety oracle.

An audit observer (:meth:`repro.audit.AuditManager.add_observer`) that
rebuilds the agreed history from the hook stream and checks it against
the two properties every explored schedule must preserve on *correct*
(non-Byzantine) replicas:

* **prefix consistency** — the executed order is one shared sequence:
  per-replica executed positions in the *merged* total order are
  strictly increasing, and any two correct replicas that executed the
  same merged slot executed the same batch digest;
* **committed ⇒ durable** — a batch committed at a per-group sequence
  number stays the batch at that sequence number across view changes:
  correct replicas never commit conflicting digests for one
  ``(group, seq)``, and an execution never contradicts a commit
  certificate.

Under COP (``group_count > 1``) executions are group-tagged: each
``(group, seq)`` maps to one global slot of the round-robin merged
order, so prefix consistency is checked over merged slots while commit
durability stays per group — exactly the sharded-sequence-space
contract.

It deliberately overlaps the cross-replica tables in
:mod:`repro.audit.invariants`: the auditors fire *online* at hook time,
while the oracle keeps its own end-of-run verdict with per-failure
context, independent of ``expect_violations`` masking.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["HistoryOracle"]


class HistoryOracle:
    """Passive audit observer accumulating an end-of-run safety verdict."""

    def __init__(
        self,
        correct: Iterable[str],
        max_failures: int = 64,
        group_count: int = 1,
    ):
        #: Replicas whose history must agree (deliberately faulty ones
        #: are excluded — their lies are the auditors' business).
        self.correct: Set[str] = set(correct)
        self.max_failures = max_failures
        #: COP consensus groups; 1 keeps merged slot == sequence number.
        self.group_count = max(1, group_count)
        #: merged global slot -> (digest, first correct executor)
        self._canonical: Dict[int, Tuple[bytes, str]] = {}
        #: replica -> last executed merged slot
        self._last_seq: Dict[str, int] = {}
        #: (group, seq) -> digest -> correct replicas holding that
        #: commit certificate
        self._committed: Dict[Tuple[int, int], Dict[bytes, Set[str]]] = {}
        self.failures: List[Dict[str, object]] = []
        self.failures_dropped = 0
        self.executions = 0

    # -- verdict ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.failures and not self.failures_dropped

    def rules(self) -> Tuple[str, ...]:
        return tuple(sorted({str(f["rule"]) for f in self.failures}))

    def _fail(self, rule: str, **detail: object) -> None:
        if len(self.failures) >= self.max_failures:
            self.failures_dropped += 1
            return
        entry: Dict[str, object] = {"rule": rule}
        entry.update(detail)
        self.failures.append(entry)

    def _slot(
        self, group: int, seq: int, global_seq: Optional[int]
    ) -> Optional[int]:
        """Merged global slot of ``(group, seq)``.

        Trusts the reporter's explicit ``global_seq`` when given (the
        auditor's ``bft.merge-slot-conflict`` rule cross-checks it);
        otherwise derives it from the round-robin arithmetic.
        """
        if global_seq is not None:
            return global_seq
        if not 0 <= group < self.group_count or seq < 1:
            return None
        return (seq - 1) * self.group_count + group + 1

    # -- audit observer hooks -------------------------------------------

    def on_replica_restart(self, replica: str) -> None:
        # A fresh incarnation re-executes nothing, but its executed_seq
        # restarts from whatever state transfer gives it; only forward
        # progress from there is monotonic.
        self._last_seq.pop(replica, None)

    def on_execute(
        self,
        replica: str,
        seq: int,
        digest: bytes,
        group: int = 0,
        global_seq: Optional[int] = None,
    ) -> None:
        if replica not in self.correct:
            return
        self.executions += 1
        slot = self._slot(group, seq, global_seq)
        if slot is None:
            self._fail(
                "oracle.unknown-group",
                replica=replica,
                group=group,
                seq=seq,
                group_count=self.group_count,
            )
            return
        last = self._last_seq.get(replica)
        if last is not None and slot <= last:
            self._fail(
                "oracle.execution-order",
                replica=replica,
                seq=seq,
                group=group,
                global_seq=slot,
                last_seq=last,
            )
        self._last_seq[replica] = max(slot, last if last is not None else slot)
        known = self._canonical.get(slot)
        if known is None:
            self._canonical[slot] = (digest, replica)
        elif known[0] != digest:
            self._fail(
                "oracle.execution-divergence",
                replica=replica,
                seq=seq,
                group=group,
                global_seq=slot,
                digest=digest.hex()[:16],
                conflicting_digest=known[0].hex()[:16],
                first_executor=known[1],
            )
        committed = self._committed.get((group, seq))
        if committed and digest not in committed:
            self._fail(
                "oracle.committed-not-durable",
                replica=replica,
                seq=seq,
                group=group,
                executed_digest=digest.hex()[:16],
                committed_digests=sorted(d.hex()[:16] for d in committed),
            )

    def on_commit_quorum(
        self,
        replica: str,
        view: int,
        seq: int,
        digest: bytes,
        signers: Iterable[str],
        group: int = 0,
    ) -> None:
        if replica not in self.correct:
            return
        by_digest = self._committed.setdefault((group, seq), {})
        by_digest.setdefault(digest, set()).add(replica)
        if len(by_digest) > 1:
            self._fail(
                "oracle.conflicting-commit",
                replica=replica,
                view=view,
                seq=seq,
                group=group,
                digests=sorted(d.hex()[:16] for d in by_digest),
            )
        slot = self._slot(group, seq, None)
        executed = self._canonical.get(slot) if slot is not None else None
        if executed is not None and executed[0] != digest:
            self._fail(
                "oracle.committed-not-durable",
                replica=replica,
                seq=seq,
                group=group,
                committed_digest=digest.hex()[:16],
                executed_digest=executed[0].hex()[:16],
            )

    # -- summary ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "rules": list(self.rules()),
            "failures": list(self.failures),
            "failures_dropped": self.failures_dropped,
            "executions": self.executions,
            "max_executed_seq": max(self._last_seq.values(), default=0),
        }
