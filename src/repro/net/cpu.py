"""CPU cost model and scheduling.

The latency differences the paper measures between TCP and RDMA come almost
entirely from *where work happens*: TCP burns CPU on kernel crossings and
intermediate copies on both hosts, while RDMA offloads data movement to the
RNIC's DMA engines and the CPU merely posts work requests.  This module
makes those costs explicit and chargeable.

:class:`CpuCosts` holds the per-operation constants (see
``repro.bench.calibration`` for the calibrated defaults and their
provenance); :class:`Cpu` is the schedulable resource that charges them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.sim import Resource, UtilizationTracker
from repro.sim.resources import TimedHold

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment, Event

__all__ = ["CpuCosts", "Cpu"]


@dataclass(frozen=True)
class CpuCosts:
    """Per-operation CPU costs, all in seconds (or seconds per byte).

    Attributes
    ----------
    copy_per_byte:
        Single-core memcpy cost per byte, including cache effects.  This is
        *the* dominant term for TCP at large payloads (charged twice per
        direction) and for RUBIN's receive-side copy.
    syscall:
        One user/kernel boundary crossing (e.g. ``send``/``recv``/``epoll``).
    context_switch:
        Thread wake-up after blocking (scheduler latency).
    interrupt:
        Hardware interrupt plus softirq processing for an incoming frame.
    per_segment:
        Protocol processing (header build/parse, checksums with offload)
        per TCP segment.
    post_wr:
        Building and posting one RDMA work request (WQE write).
    doorbell:
        Ringing the RNIC doorbell (MMIO write); charged once per post batch.
    cqe_poll:
        Generating and reaping one completion-queue entry.
    """

    copy_per_byte: float = 0.25e-9
    syscall: float = 1.8e-6
    context_switch: float = 2.5e-6
    interrupt: float = 1.2e-6
    per_segment: float = 0.9e-6
    post_wr: float = 0.25e-6
    doorbell: float = 0.1e-6
    cqe_poll: float = 0.4e-6

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"CpuCosts.{name} must be >= 0")

    def copy_seconds(self, nbytes: int) -> float:
        """Seconds a single core spends copying ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"cannot copy negative bytes ({nbytes})")
        return self.copy_per_byte * nbytes


class Cpu:
    """A host CPU: ``cores`` schedulable execution slots plus a cost model.

    Stacks charge work with :meth:`execute`, which returns a process event
    the caller yields.  Utilization is tracked so benchmarks can report CPU
    efficiency (one of RDMA's headline wins in the paper's Section I: >50 %
    of TCP's cycles go to intermediate copies).
    """

    def __init__(
        self,
        env: "Environment",
        cores: int = 4,
        costs: CpuCosts | None = None,
        name: str = "cpu",
    ):
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        self.env = env
        self.cores = cores
        self.costs = costs if costs is not None else CpuCosts()
        self.name = name
        self._resource = Resource(env, capacity=cores)
        self.tracker = UtilizationTracker(env, name)

    def execute(self, duration: float) -> "Event":
        """Occupy one core for ``duration`` seconds; yield the returned event.

        Zero-duration work completes on the next kernel step without
        occupying a core — callers can charge optional costs unconditionally.
        """
        if duration < 0:
            raise ConfigurationError(f"negative CPU work ({duration})")
        if duration == 0.0:
            done = self.env.event()
            done.succeed()
            return done
        return TimedHold(self._resource, duration, tracker=self.tracker)

    def copy(self, nbytes: int) -> "Event":
        """Charge a single-core memory copy of ``nbytes``."""
        return self.execute(self.costs.copy_seconds(nbytes))

    @property
    def busy_cores(self) -> int:
        """Cores currently executing charged work."""
        return self._resource.count

    @property
    def run_queue_length(self) -> int:
        """Work items waiting for a free core."""
        return self._resource.queue_length

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time at least one core was busy since ``since``."""
        return self.tracker.utilization(since)

    def __repr__(self) -> str:
        return f"<Cpu {self.name!r} cores={self.cores} busy={self.busy_cores}>"
