"""End-to-end acceptance: one request, one causal trace, full coverage.

Pins the PR's acceptance criteria: a single traced BFT request yields a
single causal trace whose spans explain >= 95% of the measured
end-to-end latency, attributed to >= 6 distinct layers, exported as
valid Chrome trace-event JSON — and tracing changes nothing about what
the protocol does.
"""

import pytest

from repro.bft.cluster import BftCluster
from repro.trace import (
    Tracer,
    chrome_trace_events,
    latency_breakdown,
    validate_chrome_trace,
)


def run_request(tracer=None, operations=(b"PUT k=v",)):
    cluster = BftCluster(tracer=tracer)
    cluster.start()
    results = [cluster.invoke_and_wait(op) for op in operations]
    cluster.run_for(0.005)
    frames = sum(
        link.frames_sent.value
        for cable in cluster.fabric._cables.values()
        for link in (cable.forward, cable.backward)
    )
    return cluster, results, frames


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    cluster, results, frames = run_request(tracer=tracer)
    return tracer, cluster, results, frames


class TestSingleCausalTrace:
    def test_request_succeeds(self, traced):
        _, _, results, _ = traced
        assert results == [b"OK"]

    def test_one_trace_rooted_at_the_client(self, traced):
        tracer, _, _, _ = traced
        assert len(tracer.trace_ids()) == 1
        report = latency_breakdown(tracer)
        assert len(report.traces) == 1
        assert report.traces[0].root_name == "bft.request"

    def test_spans_cover_95_percent_of_latency(self, traced):
        tracer, _, _, _ = traced
        trace = latency_breakdown(tracer).traces[0]
        assert trace.end_to_end > 0
        assert trace.coverage >= 0.95

    def test_at_least_six_layers_attributed(self, traced):
        tracer, _, _, _ = traced
        trace = latency_breakdown(tracer).traces[0]
        contributing = {
            layer
            for layer in trace.layers
            if trace.layer_seconds[layer] > 0
        }
        assert {"nic", "link", "qp", "cq", "selector", "bft"} <= contributing
        assert len(contributing) >= 6

    def test_no_leaked_or_double_closed_spans(self, traced):
        tracer, _, _, _ = traced
        assert tracer.open_spans() == []
        assert tracer.double_ends == 0

    def test_chrome_export_is_valid(self, traced):
        tracer, _, _, _ = traced
        events = chrome_trace_events(tracer)
        validate_chrome_trace(events)
        span_events = [e for e in events if e["ph"] != "M"]
        assert len(span_events) == len(tracer.spans)
        assert len({e["args"]["trace_id"] for e in span_events}) == 1


class TestZeroInterference:
    def test_untraced_run_is_identical(self, traced):
        _, traced_cluster, traced_results, traced_frames = traced
        cluster, results, frames = run_request()
        assert cluster.env.tracer is None
        # Same protocol outcome, same message counts, same timing.
        assert results == traced_results
        assert frames == traced_frames
        assert cluster.executed_sequences() == (
            traced_cluster.executed_sequences()
        )
        assert cluster.state_digests() == traced_cluster.state_digests()
        assert cluster.env.now == traced_cluster.env.now
