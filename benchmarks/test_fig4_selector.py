"""Figure 4: RUBIN selector vs Java NIO selector through the Reptor stack.

Window 30, batching 10 (the paper's parameters); both panels regenerated
and checked against the Section-V claims.
"""

from repro.bench import check_fig4_shape
from benchmarks.conftest import table_from


def test_fig4a_latency(benchmark, fig4_results):
    def build():
        return table_from(
            fig4_results,
            "Figure 4a (reproduced)",
            "latency",
            "us",
            lambda r: r.mean_latency_us,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table.render())
    benchmark.extra_info["table"] = table.render()


def test_fig4b_throughput(benchmark, fig4_results):
    def build():
        return table_from(
            fig4_results,
            "Figure 4b (reproduced)",
            "throughput",
            "rps",
            lambda r: r.requests_per_second,
        )

    throughput = benchmark.pedantic(build, rounds=1, iterations=1)
    latency = table_from(
        fig4_results, "Figure 4a", "latency", "us", lambda r: r.mean_latency_us
    )
    facts = check_fig4_shape(latency, throughput)
    print()
    print(throughput.render(float_format="{:>12.0f}"))
    for fact in facts:
        print("  ", fact)
    benchmark.extra_info["table"] = throughput.render(float_format="{:>12.0f}")
    benchmark.extra_info["facts"] = facts
