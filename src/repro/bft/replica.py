"""The PBFT replica.

Implements the three-phase agreement protocol of Castro & Liskov's PBFT —
the algorithm Reptor runs — on top of the Reptor communication stack:

* **pre-prepare / prepare / commit** with batching and watermarks;
* **execution** in strict total order with client reply deduplication;
* **checkpoints** every ``checkpoint_interval`` sequence numbers, with log
  truncation at 2f+1 matching votes;
* **view changes** on request timeout, carrying prepared certificates so
  ordered-but-unexecuted requests survive a leader failure;
* **COP-style pipelines** (Section II-C): protocol messages are sharded by
  sequence number onto parallel handler processes that contend for the
  host's cores, while execution remains totally ordered.

Byzantine behaviours for tests and demos live in
:mod:`repro.bft.byzantine`, implemented as message-tampering hooks on this
class.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.bft.config import BftConfig
from repro.bft.log import MessageLog
from repro.bft.messages import (
    Busy,
    Checkpoint,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    Reply,
    Request,
    StateTransferReply,
    StateTransferRequest,
    ViewChange,
    decode,
    encode,
)
from repro.bft.statemachine import StateMachine
from repro.crypto import digest as sha256
from repro.errors import BftError
from repro.reptor import ReptorConnection, ReptorEndpoint
from repro.audit import get_audit
from repro.sim import Store
from repro.sim.monitor import Counter, TimeSeries
from repro.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment

__all__ = ["Replica", "batch_digest"]


def batch_digest(batch: Tuple[Request, ...]) -> bytes:
    """Deterministic digest of an ordered request batch."""
    blob = bytearray()
    for request in batch:
        blob.extend(encode(request))
    return sha256(bytes(blob))


class Replica:
    """One PBFT replica bound to a Reptor endpoint."""

    #: Subclasses that deliberately violate the protocol set this; the
    #: cluster marks its audit manager ``expect_violations`` when any
    #: member replica is Byzantine.
    BYZANTINE = False

    #: Consensus group this pipeline orders for (COP).  The sequential
    #: replica is its own (only) group 0; ``repro.bft.cop`` overrides
    #: this on per-group pipelines.
    group = 0

    def __init__(
        self,
        replica_id: str,
        endpoint: ReptorEndpoint,
        peer_ids: List[str],
        app: StateMachine,
        config: Optional[BftConfig] = None,
        recover: bool = False,
    ):
        self.config = config if config is not None else BftConfig()
        if len(peer_ids) != self.config.n:
            raise BftError(
                f"peer list has {len(peer_ids)} entries, config.n is "
                f"{self.config.n}"
            )
        if replica_id not in peer_ids:
            raise BftError(f"{replica_id!r} missing from peer list")
        self.replica_id = replica_id
        self.endpoint = endpoint
        self.env: "Environment" = endpoint.env
        self.all_ids = sorted(peer_ids)
        self.app = app

        self.view = 0
        self.log = MessageLog(self.config.f, window=self.config.log_window)
        self.executed_seq = 0
        self.next_seq = 1  # leader's sequence allocator

        self._replica_conns: Dict[str, ReptorConnection] = {}
        self._client_conns: Dict[str, ReptorConnection] = {}
        self._pending_requests: Deque[Request] = deque()
        self._batch_kick = None
        self._seen_requests: Set[Tuple[str, int]] = set()
        # Keys currently assigned to a live slot (proposed, unexecuted) and
        # keys waiting in the leader's batch queue.  Together with the
        # reply cache these decide whether a retransmission is a duplicate
        # or a request orphaned by a view change that must be re-proposed.
        self._proposed_keys: Set[Tuple[str, int]] = set()
        self._queued_keys: Set[Tuple[str, int]] = set()
        # Reply cache keyed by (client, timestamp): clients may pipeline
        # several outstanding requests (Reptor-style), so caching only the
        # latest reply per client would swallow retransmission answers.
        self._reply_cache: Dict[Tuple[str, int], Reply] = {}
        self._request_batches: Dict[int, Tuple[Request, ...]] = {}

        # View-change state.
        self.in_view_change = False
        self._voted_view = 0  # highest view this replica has voted for
        # Consecutive view changes without execution progress double the
        # timeout (capped), as in PBFT — without this, a view change that
        # takes longer than one timeout livelocks into endless churn.
        self._vc_backoff = 0
        self._view_change_votes: Dict[int, Dict[str, ViewChange]] = {}
        self._request_deadlines: Dict[Tuple[str, int], float] = {}

        # State-transfer state (crash recovery / lag catch-up).  The
        # snapshot table holds (state digest, snapshot blob) captured the
        # moment each checkpoint was taken; seq 0 holds the initial state
        # so a request can always be answered.  Machines without
        # snapshot support simply never serve (or install) checkpoints.
        self._st_active = False
        self._st_started = 0.0
        self._st_replies: Dict[str, StateTransferReply] = {}
        self._checkpoint_snapshots: Dict[int, Tuple[bytes, bytes]] = {}
        snapshot_fn = getattr(app, "snapshot", None)
        if snapshot_fn is not None:
            self._checkpoint_snapshots[0] = (app.digest(), snapshot_fn())

        # Tracing state: per-slot trace contexts (adopted from the first
        # traced request of the batch) and the open protocol-phase spans
        # keyed by sequence number, plus the leader's queue-to-propose
        # batching spans keyed by request key.
        self._slot_trace_ctx: Dict[int, object] = {}
        self._slot_spans: Dict[int, Dict[str, object]] = {}
        self._batch_spans: Dict[Tuple[str, int], object] = {}

        # Adaptive batching (COP): when enabled the proposer sizes each
        # batch from queue depth and outbox watermark pressure instead
        # of always filling to the fixed ceiling.
        self._batcher = None
        if self.config.adaptive_batching:
            from repro.bft.cop.batcher import AdaptiveBatcher

            self._batcher = AdaptiveBatcher(
                floor=self.config.batch_size_min,
                ceiling=self.config.batch_size,
                shrink_patience=self.config.batch_shrink_patience,
            )

        # COP pipelines: per-pipeline inbound queues and handler processes.
        self._pipelines: List[Store] = [
            Store(self.env) for _ in range(self.config.pipelines)
        ]
        self.running = True

        self._wire_endpoint()
        for index, queue in enumerate(self._pipelines):
            self.env.process(
                self._pipeline_loop(queue), name=f"{replica_id}.pipe{index}"
            )
        self.env.process(self._batch_loop(), name=f"{replica_id}.batcher")
        self.env.process(self._timer_loop(), name=f"{replica_id}.timer")

        # Metrics.
        self.committed_count = 0
        self.view_changes_completed = 0
        self.state_transfers_completed = 0
        self.state_transfers_served = Counter(f"{replica_id}.st_served")
        self.state_transfer_bytes = Counter(f"{replica_id}.st_bytes")
        self.shed_requests = Counter(f"{replica_id}.shed_requests")
        self.rejoin_latency = TimeSeries(self.env, f"{replica_id}.rejoin")

        if recover:
            # A restarted replica starts from a blank state machine:
            # fetch the group's stable checkpoint before doing anything
            # else (the request loop retries until peers are reachable).
            self.begin_state_transfer()

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Group size."""
        return self.config.n

    @property
    def f(self) -> int:
        """Faults tolerated."""
        return self.config.f

    def leader_of(self, view: int) -> str:
        """The leader (primary) of ``view``."""
        return self.all_ids[view % self.n]

    @property
    def is_leader(self) -> bool:
        """Whether this replica leads the current view."""
        return self.leader_of(self.view) == self.replica_id

    def _current_timeout(self) -> float:
        """View-change timeout with exponential backoff under churn."""
        return self.config.view_change_timeout * (2 ** self._vc_backoff)

    def group_children(self) -> Tuple["Replica", ...]:
        """Extra per-group pipelines owned by this replica (COP)."""
        return ()

    def group_pipelines(self) -> Tuple["Replica", ...]:
        """All ordering pipelines of this replica, indexed by group."""
        return (self,) + self.group_children()

    @property
    def global_executed_seq(self) -> int:
        """Position in the merged total execution order.

        For the sequential pipeline the merged order *is* the sequence
        order; COP replicas override this with the merge-stage position.
        """
        return self.executed_seq

    def _span_tags(self) -> Dict[str, int]:
        """Extra trace-span attributes (the group tag under COP)."""
        if self.config.group_count > 1:
            return {"group": self.group}
        return {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _wire_endpoint(self) -> None:
        """Subscribe to inbound connections on the shared endpoint.

        COP group pipelines skip this: their owning replica demultiplexes
        group-tagged traffic to them instead.
        """
        self.endpoint.on_connection(self._on_inbound_connection)

    def attach_peer(self, peer_id: str, connection: ReptorConnection) -> None:
        """Bind an outbound connection to a peer replica."""
        self._replica_conns[peer_id] = connection
        self.env.process(
            self._receive_loop(connection, peer_id),
            name=f"{self.replica_id}<-{peer_id}.rx",
        )

    def _on_inbound_connection(self, connection: ReptorConnection) -> None:
        peer = connection.peer_name
        if peer in self.all_ids:
            self._replica_conns[peer] = connection
            self.env.process(
                self._receive_loop(connection, peer),
                name=f"{self.replica_id}<-{peer}.rx",
            )
        else:
            # Map the client connection immediately: every replica must be
            # able to send replies even if the client only addresses its
            # requests to the leader (PBFT replies come from all replicas).
            self._client_conns[peer] = connection
            self.env.process(
                self._client_receive_loop(connection),
                name=f"{self.replica_id}<-client.rx",
            )

    def _receive_loop(self, connection: ReptorConnection, peer: str):
        while self.running and not connection.closed:
            try:
                raw = yield connection.receive()
            except BftError:
                return
            try:
                message = decode(raw)
            except BftError:
                # Malformed bytes from a peer: Byzantine; drop the link.
                connection.close()
                return
            self._route(message, peer)

    def _client_receive_loop(self, connection: ReptorConnection):
        while self.running and not connection.closed:
            try:
                raw = yield connection.receive()
            except BftError:
                return
            try:
                message = decode(raw)
            except BftError:
                connection.close()
                return
            if isinstance(message, Request):
                self._client_conns[message.client_id] = connection
                self._route(message, message.client_id)
            # Anything else from a client is ignored.

    def _route(self, message, sender: str) -> None:
        """Shard protocol messages across the COP pipelines."""
        seq = getattr(message, "seq", None)
        if seq is None:
            index = 0
        else:
            index = seq % len(self._pipelines)
        self._pipelines[index].put((message, sender))

    def _pipeline_loop(self, queue: Store):
        cpu = self.endpoint.host.cpu
        while self.running:
            message, sender = yield queue.get()
            span = None
            tracer = get_tracer(self.env)
            if tracer.enabled:
                ctx = self._message_trace_ctx(message)
                if ctx is not None:
                    span = tracer.start_span(
                        "bft.handle",
                        layer="bft",
                        parent=ctx,
                        track=self.replica_id,
                        message=type(message).__name__,
                        **self._span_tags(),
                    )
            # Handler CPU cost (configurable: MAC-based deployments are
            # cheap, signature-based ones are where COP's parallel
            # pipelines earn their keep).
            yield cpu.execute(self.config.handler_cost)
            try:
                self._dispatch(message, sender)
            except BftError:
                # A protocol violation from a Byzantine peer is tolerated
                # by ignoring the offending message.
                continue
            finally:
                if span is not None:
                    span.end()

    # ------------------------------------------------------------------
    # broadcast helpers
    # ------------------------------------------------------------------

    def _broadcast(self, message, trace_ctx=None) -> None:
        raw = encode(message)
        for peer_id in self.all_ids:
            if peer_id == self.replica_id:
                continue
            tampered = self._outbound_filter(message, raw, peer_id)
            if tampered is None:
                continue
            connection = self._replica_conns.get(peer_id)
            if connection is not None and not connection.closed:
                connection.send(tampered, trace_ctx=trace_ctx)

    def _send_to(self, peer_id: str, message, trace_ctx=None) -> None:
        raw = self._outbound_filter(message, encode(message), peer_id)
        if raw is None:
            return
        connection = self._replica_conns.get(peer_id)
        if connection is not None and not connection.closed:
            connection.send(raw, trace_ctx=trace_ctx)

    def _outbound_filter(self, message, raw: bytes, peer_id: str):
        """Hook for Byzantine subclasses: return bytes to send, or None
        to drop.  The honest replica sends faithfully."""
        return raw

    # ------------------------------------------------------------------
    # tracing helpers
    # ------------------------------------------------------------------

    def _message_trace_ctx(self, message):
        """Trace context of the request causally behind ``message``.

        Requests resolve through the client's correlation binding;
        seq-carrying protocol messages through the slot's adopted
        context (falling back to the batch for a pre-prepare whose slot
        has not adopted one yet)."""
        tracer = get_tracer(self.env)
        if not tracer.enabled:
            return None
        if isinstance(message, Request):
            return tracer.lookup(
                ("bft.request", message.client_id, message.timestamp)
            )
        seq = getattr(message, "seq", None)
        if seq is not None:
            ctx = self._slot_trace_ctx.get(seq)
            if ctx is not None:
                return ctx
        return self._batch_trace_ctx(getattr(message, "batch", ()))

    def _batch_trace_ctx(self, batch):
        """Context of the first traced request in ``batch`` (or None)."""
        tracer = get_tracer(self.env)
        if not tracer.enabled:
            return None
        for request in batch:
            ctx = tracer.lookup(
                ("bft.request", request.client_id, request.timestamp)
            )
            if ctx is not None:
                return ctx
        return None

    def _begin_phase(self, seq: int, phase: str, ctx) -> None:
        """Open a protocol-phase span for ``seq`` (no-op untraced)."""
        tracer = get_tracer(self.env)
        if not tracer.enabled or ctx is None:
            return
        spans = self._slot_spans.setdefault(seq, {})
        stale = spans.get(phase)
        if stale is not None:
            # A view change re-ran the phase for this slot; the old
            # window ended the moment it was superseded.
            stale.end(superseded=True)
        spans[phase] = tracer.start_span(
            f"bft.{phase}",
            layer="bft",
            parent=ctx,
            track=self.replica_id,
            seq=seq,
            **self._span_tags(),
        )

    def _end_phase(self, seq: int, phase: str, **attrs) -> None:
        spans = self._slot_spans.get(seq)
        if spans is None:
            return
        span = spans.pop(phase, None)
        if span is not None:
            span.end(**attrs)
        if not spans:
            self._slot_spans.pop(seq, None)

    def _finish_slot_trace(self, seq: int) -> None:
        """Close any phase spans still open for an executed slot."""
        for span in self._slot_spans.pop(seq, {}).values():
            span.end(aborted=True)
        self._slot_trace_ctx.pop(seq, None)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, message, sender: str) -> None:
        if isinstance(message, Request):
            self._on_request(message)
        elif isinstance(message, PrePrepare):
            self._on_pre_prepare(message, sender)
        elif isinstance(message, Prepare):
            self._on_prepare(message, sender)
        elif isinstance(message, Commit):
            self._on_commit(message, sender)
        elif isinstance(message, Checkpoint):
            self._on_checkpoint(message, sender)
        elif isinstance(message, ViewChange):
            self._on_view_change(message, sender)
        elif isinstance(message, NewView):
            self._on_new_view(message, sender)
        elif isinstance(message, StateTransferRequest):
            self._on_state_transfer_request(message, sender)
        elif isinstance(message, StateTransferReply):
            self._on_state_transfer_reply(message, sender)
        else:  # pragma: no cover - exhaustive
            raise BftError(f"unknown message {type(message).__name__}")

    # -- requests & batching -------------------------------------------------

    def _on_request(self, request: Request) -> None:
        key = request.key()
        cached = self._reply_cache.get(key)
        if cached is not None:
            # Duplicate of an executed request: re-send the cached reply.
            self._reply_to_client(cached)
            return
        budget = self.config.admission_budget
        if (
            budget
            and key not in self._seen_requests
            and len(self._request_deadlines) >= budget
        ):
            # Admission control: the outstanding-request budget is spent,
            # so shed this *new* request instead of queuing unboundedly.
            # Retransmissions of admitted requests always pass — shedding
            # them would stall work the group already owes an answer for.
            self._shed_request(request)
            return
        if key in self._seen_requests:
            # Retransmission.  If we are the leader and the request is not
            # assigned to any live slot (it was orphaned by a view change),
            # it must be (re-)proposed; otherwise it is a plain duplicate.
            orphaned = (
                self.is_leader
                and not self.in_view_change
                and key not in self._proposed_keys
                and key not in self._queued_keys
            )
            if not orphaned:
                return
        else:
            self._seen_requests.add(key)
        self._request_deadlines[key] = self.env.now + self._current_timeout()
        ctx = self._message_trace_ctx(request)
        if self.is_leader and not self.in_view_change:
            self._pending_requests.append(request)
            self._queued_keys.add(key)
            tracer = get_tracer(self.env)
            if ctx is not None and key not in self._batch_spans:
                # Queue-to-propose window: time the request spends
                # waiting for the leader's adaptive batcher.
                self._batch_spans[key] = tracer.start_span(
                    "bft.batching",
                    layer="bft",
                    parent=ctx,
                    track=self.replica_id,
                    **self._span_tags(),
                )
            self._kick_batcher()
        else:
            # Backups forward to the current leader (client may have sent
            # only to us, or to a stale leader).
            self._send_to(self.leader_of(self.view), request, trace_ctx=ctx)

    def _shed_request(self, request: Request) -> None:
        """Reject an over-budget request with a ``Busy`` reply.

        The client backs off and retries once f+1 replicas report busy;
        nothing is recorded locally (no deadline, no dedup entry), so a
        later retry is indistinguishable from a fresh request.
        """
        self.shed_requests.increment()
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_request_shed(
                self.replica_id,
                request.client_id,
                request.timestamp,
                outstanding=len(self._request_deadlines),
                budget=self.config.admission_budget,
            )
        connection = self._client_conns.get(request.client_id)
        if connection is not None and not connection.closed:
            busy = Busy(
                self.replica_id, request.client_id, request.timestamp, self.view
            )
            connection.send(encode(busy))

    def _kick_batcher(self) -> None:
        if self._batch_kick is not None and not self._batch_kick.triggered:
            self._batch_kick.succeed()

    def _batch_loop(self):
        while self.running:
            if not self._pending_requests or not self.is_leader or self.in_view_change:
                self._batch_kick = self.env.event()
                yield self._batch_kick
                continue
            limit = self._batch_limit()
            if (
                len(self._pending_requests) < limit
                and self.config.batch_delay > 0
            ):
                # Adaptive batching: wait briefly for more requests.
                yield self.env.timeout(self.config.batch_delay)
            if not self.is_leader or self.in_view_change:
                continue
            batch: List[Request] = []
            while self._pending_requests and len(batch) < limit:
                batch.append(self._pending_requests.popleft())
            if not batch:
                continue
            if not self.log.in_window(self.next_seq):
                # Watermark pressure: wait for a checkpoint to advance.
                self._pending_requests.extendleft(reversed(batch))
                yield self.env.timeout(self.config.batch_delay or 100e-6)
                continue
            try:
                self._propose(tuple(batch))
            except BftError:
                # A slot conflict (e.g. racing a concurrent view change)
                # must never kill the batcher; the requests return to the
                # queue and are re-proposed under the settled view.
                self._pending_requests.extendleft(reversed(batch))
                for request in batch:
                    self._queued_keys.add(request.key())
                    self._proposed_keys.discard(request.key())
                yield self.env.timeout(self.config.batch_delay or 100e-6)

    def _batch_limit(self) -> int:
        """Requests allowed in the next proposed batch.

        The fixed ``batch_size`` ceiling unless adaptive batching is on,
        in which case the controller grows the limit under queue-depth /
        outbox-watermark pressure and shrinks it when idle.
        """
        if self._batcher is None:
            return self.config.batch_size
        return self._batcher.observe(
            len(self._pending_requests), self._outbox_backpressure()
        )

    def _outbox_backpressure(self) -> bool:
        """Whether any replica connection sits above its high watermark."""
        for connection in self._replica_conns.values():
            if not connection.closed and getattr(
                connection, "_above_high", False
            ):
                return True
        return False

    def _propose(self, batch: Tuple[Request, ...]) -> None:
        # Skip sequence numbers already owned by this view or committed
        # (left behind by view changes); propose into the first free slot.
        while self.log.in_window(self.next_seq):
            existing = self.log.slots.get(self.next_seq)
            if existing is None or existing.pre_prepare is None:
                break
            if existing.committed or existing.pre_prepare.view >= self.view:
                self.next_seq += 1
                continue
            break
        if not self.log.in_window(self.next_seq):
            raise BftError("no free slot inside the watermarks")
        for request in batch:
            self._proposed_keys.add(request.key())
            self._queued_keys.discard(request.key())
            span = self._batch_spans.pop(request.key(), None)
            if span is not None:
                span.end(batch_size=len(batch))
        seq = self.next_seq
        self.next_seq += 1
        pre_prepare = PrePrepare(
            view=self.view,
            seq=seq,
            digest=batch_digest(batch),
            batch=batch,
            replica_id=self.replica_id,
        )
        slot = self.log.slot(seq)
        slot.record_pre_prepare(pre_prepare)
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_pre_prepare(
                self.replica_id, self.view, seq, pre_prepare.digest,
                self.replica_id, group=self.group,
            )
        self._request_batches[seq] = batch
        ctx = self._batch_trace_ctx(batch)
        if ctx is not None:
            self._slot_trace_ctx[seq] = ctx
            get_tracer(self.env).instant(
                "bft.pre_prepare",
                layer="bft",
                parent=ctx,
                track=self.replica_id,
                seq=seq,
                **self._span_tags(),
            )
            self._begin_phase(seq, "prepare", ctx)
        self._broadcast(pre_prepare, trace_ctx=ctx)
        # With f = 0 the pre-prepare alone is a prepared certificate.
        self._check_prepared(seq)

    # -- three-phase agreement ----------------------------------------------

    def _on_pre_prepare(self, message: PrePrepare, sender: str) -> None:
        if self.in_view_change or message.view != self.view:
            return
        if sender != self.leader_of(message.view):
            return  # only the leader may propose
        if not self.log.in_window(message.seq):
            return
        if batch_digest(message.batch) != message.digest:
            raise BftError("pre-prepare digest does not match batch")
        slot = self.log.slot(message.seq)
        slot.record_pre_prepare(message)  # raises on conflict
        audit = get_audit(self.env)
        if audit.enabled:
            # Report the digest *this* replica accepted: equivocation
            # surfaces when two correct replicas report different
            # digests for the same (view, seq) assignment.
            audit.on_pre_prepare(
                self.replica_id, message.view, message.seq, message.digest,
                sender, group=self.group,
            )
        self._request_batches[message.seq] = message.batch
        for request in message.batch:
            key = request.key()
            self._seen_requests.add(key)
            self._proposed_keys.add(key)
            self._request_deadlines.setdefault(
                key, self.env.now + self._current_timeout()
            )
        ctx = self._batch_trace_ctx(message.batch)
        if ctx is not None:
            self._slot_trace_ctx[message.seq] = ctx
            self._begin_phase(message.seq, "prepare", ctx)
        prepare = Prepare(
            view=message.view,
            seq=message.seq,
            digest=message.digest,
            replica_id=self.replica_id,
        )
        slot.record_prepare(prepare)
        self._broadcast(prepare, trace_ctx=ctx)
        self._check_prepared(message.seq)

    def _on_prepare(self, message: Prepare, sender: str) -> None:
        if message.replica_id != sender:
            return  # a replica may only vote as itself
        if message.view != self.view or not self.log.in_window(message.seq):
            return
        self.log.slot(message.seq).record_prepare(message)
        self._check_prepared(message.seq)

    def _check_prepared(self, seq: int) -> None:
        slot = self.log.slots.get(seq)
        if slot is None or slot.prepared or slot.pre_prepare is None:
            return
        if slot.pre_prepare.view != self.view:
            return
        prepares = slot.matching_prepares(self.view, slot.pre_prepare.digest)
        # The leader's pre-prepare substitutes for its prepare; backups'
        # own prepares are recorded when sent.
        if prepares >= self.log.prepared_quorum():
            slot.prepared = True
            ctx = self._slot_trace_ctx.get(seq)
            self._end_phase(seq, "prepare")
            self._begin_phase(seq, "commit", ctx)
            commit = Commit(
                view=self.view,
                seq=seq,
                digest=slot.pre_prepare.digest,
                replica_id=self.replica_id,
            )
            slot.record_commit(commit)
            self._broadcast(commit, trace_ctx=ctx)
            self._check_committed(seq)

    def _on_commit(self, message: Commit, sender: str) -> None:
        if message.replica_id != sender:
            return
        if message.view != self.view or not self.log.in_window(message.seq):
            return
        self.log.slot(message.seq).record_commit(message)
        self._check_committed(message.seq)

    def _check_committed(self, seq: int) -> None:
        slot = self.log.slots.get(seq)
        if slot is None or slot.committed or not slot.prepared:
            return
        if slot.pre_prepare is None:
            return
        commits = slot.matching_commits(self.view, slot.pre_prepare.digest)
        if commits >= self.log.committed_quorum():
            slot.committed = True
            audit = get_audit(self.env)
            if audit.enabled:
                digest = slot.pre_prepare.digest
                audit.on_commit_quorum(
                    self.replica_id,
                    self.view,
                    seq,
                    digest,
                    [
                        c.replica_id
                        for c in slot.commits.values()
                        if c.view == self.view and c.digest == digest
                    ],
                    group=self.group,
                )
            self.committed_count += 1
            self._end_phase(seq, "commit")
            self._execute_ready()

    # -- execution ---------------------------------------------------------

    def _execute_ready(self) -> None:
        """Execute committed slots strictly in sequence order."""
        while True:
            next_seq = self.executed_seq + 1
            slot = self.log.slots.get(next_seq)
            if slot is None or not slot.committed or slot.executed:
                break
            batch = self._request_batches.get(next_seq, slot.pre_prepare.batch)
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_execute(
                    self.replica_id, next_seq, batch_digest(batch),
                    group=self.group,
                )
            self.env.process(
                self._execute_batch(slot, batch),
                name=f"{self.replica_id}.exec{next_seq}",
            )
            slot.executed = True
            self.executed_seq = next_seq
            self._vc_backoff = 0  # execution progress calms the timers

    def _execute_batch(self, slot, batch: Tuple[Request, ...]):
        cpu = self.endpoint.host.cpu
        tracer = get_tracer(self.env)
        span = None
        ctx = self._slot_trace_ctx.get(slot.seq)
        if tracer.enabled and ctx is not None:
            span = tracer.start_span(
                "bft.execute",
                layer="bft",
                parent=ctx,
                track=self.replica_id,
                seq=slot.seq,
                batch_size=len(batch),
                **self._span_tags(),
            )
        try:
            for request in batch:
                yield cpu.execute(self.config.execution_cost)
                result = self.app.apply(request.operation)
                reply = Reply(
                    replica_id=self.replica_id,
                    client_id=request.client_id,
                    timestamp=request.timestamp,
                    view=self.view,
                    result=result,
                )
                self._reply_cache[request.key()] = reply
                self._request_deadlines.pop(request.key(), None)
                self._proposed_keys.discard(request.key())
                self._reply_to_client(
                    reply, trace_ctx=self._message_trace_ctx(request)
                )
        finally:
            if span is not None:
                span.end()
            self._finish_slot_trace(slot.seq)
        if slot.seq % self.config.checkpoint_interval == 0:
            self._take_checkpoint(slot.seq)

    def _take_checkpoint(self, seq: int) -> None:
        """Snapshot the state machine, vote, and broadcast the checkpoint.

        Runs at the exact point in execution order where ``seq`` has just
        been applied, so the snapshot is consistent with the digest the
        vote advertises.  Only the two newest snapshots are retained —
        enough to serve the current stable checkpoint plus the one being
        voted on.
        """
        state_digest = self.app.digest()
        snapshot_fn = getattr(self.app, "snapshot", None)
        if snapshot_fn is not None:
            self._checkpoint_snapshots[seq] = (state_digest, snapshot_fn())
            for old in sorted(self._checkpoint_snapshots)[:-2]:
                del self._checkpoint_snapshots[old]
        checkpoint = Checkpoint(
            seq=seq, state_digest=state_digest, replica_id=self.replica_id
        )
        stable = self.log.record_checkpoint_vote(
            seq, state_digest, self.replica_id
        )
        if stable:
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_stable_checkpoint(
                    self.replica_id, seq, state_digest, group=self.group
                )
        self._broadcast(checkpoint)

    def _reply_to_client(self, reply: Reply, trace_ctx=None) -> None:
        connection = self._client_conns.get(reply.client_id)
        if connection is not None and not connection.closed:
            connection.send(encode(reply), trace_ctx=trace_ctx)

    def _on_checkpoint(self, message: Checkpoint, sender: str) -> None:
        if message.replica_id != sender:
            return
        stable = self.log.record_checkpoint_vote(
            message.seq, message.state_digest, sender
        )
        if stable:
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_stable_checkpoint(
                    self.replica_id, message.seq, message.state_digest,
                    group=self.group,
                )
        # A checkpoint that became stable past our execution point means
        # the group truncated slots we never executed — they are gone
        # from every log and can never be replayed.  Fetch the checkpoint
        # state itself instead of waiting forever.
        if self.log.stable_seq > self.executed_seq:
            self.begin_state_transfer()

    # -- state transfer --------------------------------------------------------

    def begin_state_transfer(self) -> None:
        """Fetch the latest stable checkpoint + log suffix from peers.

        Idempotent: a transfer already in flight keeps running.  The
        request is re-broadcast every ``state_transfer_timeout`` until
        f+1 peers agree on a checkpoint that verifies and installs —
        one of f+1 matching replies must come from an honest replica.
        """
        if self._st_active:
            return
        self._st_active = True
        self._st_started = self.env.now
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_state_transfer(
                self.replica_id, "started", low_seq=self.executed_seq,
                group=self.group,
            )
        self._st_replies = {}
        self.env.process(
            self._state_transfer_loop(), name=f"{self.replica_id}.statex"
        )

    def _state_transfer_loop(self):
        while self.running and self._st_active:
            self._broadcast(
                StateTransferRequest(
                    low_seq=self.executed_seq, replica_id=self.replica_id
                )
            )
            yield self.env.timeout(self.config.state_transfer_timeout)

    def _on_state_transfer_request(
        self, message: StateTransferRequest, sender: str
    ) -> None:
        if message.replica_id != sender or sender not in self.all_ids:
            return
        seq = self.log.stable_seq
        entry = self._checkpoint_snapshots.get(seq)
        if entry is None:
            # Snapshots unsupported, or the stable checkpoint was itself
            # installed while we lagged: nothing trustworthy to serve.
            return
        state_digest, snapshot = entry
        suffix: List[Tuple[int, Tuple[Request, ...]]] = []
        for s in range(seq + 1, self.executed_seq + 1):
            batch = self._request_batches.get(s)
            if batch is None:
                break  # the suffix must stay contiguous
            suffix.append((s, batch))
        reply = StateTransferReply(
            checkpoint_seq=seq,
            state_digest=state_digest,
            snapshot=snapshot,
            suffix=tuple(suffix),
            view=self.view,
            replica_id=self.replica_id,
        )
        raw = self._outbound_filter(reply, encode(reply), sender)
        if raw is None:
            return
        connection = self._replica_conns.get(sender)
        if connection is not None and not connection.closed:
            self.state_transfers_served.increment()
            self.state_transfer_bytes.increment(len(raw))
            connection.send(raw)

    def _on_state_transfer_reply(
        self, message: StateTransferReply, sender: str
    ) -> None:
        if message.replica_id != sender or sender not in self.all_ids:
            return
        if not self._st_active:
            return
        self._st_replies[sender] = message
        self._try_install_state()

    def _st_candidate(
        self,
    ) -> Optional[Tuple[int, bytes, List[StateTransferReply]]]:
        """Highest f+1-agreed ``(checkpoint_seq, digest, replies)``.

        None until f+1 replies agree on a checkpoint at or past our own
        stable sequence number.
        """
        groups: Dict[
            Tuple[int, bytes], List[StateTransferReply]
        ] = {}
        for reply in self._st_replies.values():
            groups.setdefault(
                (reply.checkpoint_seq, reply.state_digest), []
            ).append(reply)
        candidates = [
            (seq, digest, replies)
            for (seq, digest), replies in groups.items()
            if len(replies) >= self.f + 1 and seq >= self.log.stable_seq
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda c: c[0])

    def _try_install_state(self) -> None:
        """Install a checkpoint once f+1 replies agree on its digest."""
        candidate = self._st_candidate()
        if candidate is None:
            return
        seq, state_digest, replies = candidate
        if seq > self.executed_seq:
            if not self._install_checkpoint(seq, state_digest, replies):
                return
        self._apply_suffix(replies)
        if self.executed_seq < seq:
            return  # nothing verified; the retry loop keeps asking
        self._adopt_reported_view(replies)
        # Requests executed before the checkpoint were answered by the
        # replicas that stayed up; stale deadlines for them would only
        # feed spurious view changes.  Live requests re-arm through
        # client retransmission (and the other replicas' timers).
        self._request_deadlines.clear()
        self._st_active = False
        self._st_replies = {}
        self.state_transfers_completed += 1
        self.rejoin_latency.record(self.env.now - self._st_started)
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_state_transfer(
                self.replica_id, "completed",
                checkpoint_seq=seq,
                executed_seq=self.executed_seq,
                group=self.group,
            )
        self._execute_ready()
        if self.is_leader:
            self._kick_batcher()

    def _install_checkpoint(
        self,
        seq: int,
        state_digest: bytes,
        replies: List[StateTransferReply],
    ) -> bool:
        """Verify one of the agreed snapshots and adopt it as our state."""
        restore = getattr(self.app, "restore", None)
        snapshot_fn = getattr(self.app, "snapshot", None)
        if restore is None or snapshot_fn is None:
            return False
        backup = snapshot_fn()
        for reply in replies:
            try:
                restore(reply.snapshot)
            except (BftError, ValueError):
                continue  # corrupt blob from one (Byzantine) sender
            if self.app.digest() == state_digest:
                break
        else:
            restore(backup)
            return False
        self.log.install_stable(seq)
        audit = get_audit(self.env)
        if audit.enabled:
            # An installed checkpoint joins the stability table too: it
            # must agree with what the voting replicas stabilised.
            audit.on_stable_checkpoint(
                self.replica_id, seq, state_digest, group=self.group
            )
        self.executed_seq = seq
        self.next_seq = max(self.next_seq, seq + 1)
        # The verified snapshot becomes servable: this replica can now
        # answer state-transfer requests for the checkpoint it installed.
        self._checkpoint_snapshots[seq] = (state_digest, self.app.snapshot())
        for old in sorted(self._checkpoint_snapshots)[:-2]:
            del self._checkpoint_snapshots[old]
        return True

    def _apply_suffix(self, replies: List[StateTransferReply]) -> None:
        """Apply post-checkpoint batches, each f+1-agreed per slot.

        The checkpoint digest quorum does not vouch for the suffixes, so
        every slot needs its own f+1 agreement on the batch digest;
        application stops at the first slot without one (anything beyond
        re-commits through the ordinary protocol).
        """
        while True:
            seq = self.executed_seq + 1
            chosen = self._st_suffix_batch(seq, replies)
            if chosen is None:
                return
            self._apply_transferred_batch(seq, chosen)

    def _st_suffix_batch(
        self,
        seq: int,
        replies: Optional[List[StateTransferReply]] = None,
    ) -> Optional[Tuple[Request, ...]]:
        """The f+1-agreed suffix batch for ``seq``, or None.

        Defaults to counting over every reply received so far (any f+1
        matching digests include one honest replica, independent of
        which checkpoint quorum they joined).
        """
        if replies is None:
            replies = list(self._st_replies.values())
        counts: Dict[bytes, int] = {}
        batches: Dict[bytes, Tuple[Request, ...]] = {}
        for reply in replies:
            for entry_seq, batch in reply.suffix:
                if entry_seq == seq:
                    d = batch_digest(batch)
                    counts[d] = counts.get(d, 0) + 1
                    batches[d] = batch
        for d, count in counts.items():
            if count >= self.f + 1:
                return batches[d]
        return None

    def _apply_transferred_batch(
        self, seq: int, batch: Tuple[Request, ...]
    ) -> None:
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_execute(
                self.replica_id, seq, batch_digest(batch), group=self.group
            )
        for request in batch:
            result = self.app.apply(request.operation)
            key = request.key()
            self._seen_requests.add(key)
            self._proposed_keys.discard(key)
            self._queued_keys.discard(key)
            self._request_deadlines.pop(key, None)
            # Cache but do not send the reply: the client already has
            # f+1 answers from the replicas that executed on time; the
            # cache only serves future retransmissions.
            self._reply_cache[key] = Reply(
                replica_id=self.replica_id,
                client_id=request.client_id,
                timestamp=request.timestamp,
                view=self.view,
                result=result,
            )
        self._request_batches[seq] = batch
        if self.log.in_window(seq):
            slot = self.log.slot(seq)
            slot.committed = True
            slot.executed = True
        self.executed_seq = seq
        self.next_seq = max(self.next_seq, seq + 1)
        if seq % self.config.checkpoint_interval == 0:
            self._take_checkpoint(seq)

    def _adopt_reported_view(
        self, replies: List[StateTransferReply]
    ) -> None:
        """Adopt the f+1-th highest reported view (one reporter of at
        least that view is honest), so the rejoined replica times out
        against the right leader."""
        views = sorted((reply.view for reply in replies), reverse=True)
        candidate = views[min(self.f, len(views) - 1)]
        if candidate > self.view:
            self.view = candidate
            self._voted_view = max(self._voted_view, candidate)
            self.in_view_change = False
            audit = get_audit(self.env)
            if audit.enabled:
                audit.on_view_adopted(
                    self.replica_id, candidate, group=self.group
                )

    # -- view changes ----------------------------------------------------------

    def _timer_loop(self):
        interval = self.config.view_change_timeout / 4
        while self.running:
            yield self.env.timeout(interval)
            now = self.env.now
            if any(deadline < now for deadline in self._request_deadlines.values()):
                # Escalate past views already voted for: the next view's
                # leader may itself be faulty, so repeated timeouts must
                # keep moving the target view forward or the group wedges.
                self._start_view_change(max(self.view, self._voted_view) + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view or new_view <= self._voted_view:
            return
        self._voted_view = new_view
        self._vc_backoff = min(self._vc_backoff + 1, 5)
        self.in_view_change = True
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_view_change_started(
                self.replica_id, new_view, group=self.group
            )
        vote = ViewChange(
            new_view=new_view,
            stable_seq=self.log.stable_seq,
            prepared=self.log.prepared_evidence(),
            replica_id=self.replica_id,
        )
        self._record_view_change_vote(vote)
        self._broadcast(vote)
        # Reset deadlines so the timer escalates further only after
        # another full (backed-off) timeout.
        now = self.env.now
        for key in self._request_deadlines:
            self._request_deadlines[key] = now + self._current_timeout()

    def _on_view_change(self, message: ViewChange, sender: str) -> None:
        if message.replica_id != sender or message.new_view <= self.view:
            return
        self._record_view_change_vote(message)

    def _record_view_change_vote(self, message: ViewChange) -> None:
        audit = get_audit(self.env)
        if audit.enabled:
            # Digest over the wire encoding: any semantic difference in
            # the vote (stable_seq, prepared evidence) changes it, which
            # is what the cross-replica equivocation check compares.
            audit.on_view_change_vote(
                self.replica_id,
                message.replica_id,
                message.new_view,
                sha256(encode(message)),
                group=self.group,
            )
        votes = self._view_change_votes.setdefault(message.new_view, {})
        votes[message.replica_id] = message
        # Join the view change once f+1 replicas vote (we cannot all be
        # honest-and-late), even if our own timer has not fired.
        if (
            len(votes) > self.f
            and not self.in_view_change
            and message.new_view > self.view
            and message.replica_id != self.replica_id
        ):
            self._start_view_change(message.new_view)
            return
        if (
            len(votes) >= 2 * self.f + 1
            and self.leader_of(message.new_view) == self.replica_id
        ):
            self._install_new_view(message.new_view, votes)

    def _install_new_view(self, new_view: int, votes: Dict[str, ViewChange]) -> None:
        if self.view >= new_view:
            return
        # Re-propose every prepared request from the union of the votes,
        # picking the highest-view certificate per sequence number.
        best: Dict[int, Tuple[int, bytes, Tuple[Request, ...]]] = {}
        max_stable = 0
        for vote in votes.values():
            max_stable = max(max_stable, vote.stable_seq)
            for seq, view, digest, batch in vote.prepared:
                current = best.get(seq)
                if current is None or view > current[0]:
                    best[seq] = (view, digest, batch)
        # Fill holes with null requests (PBFT): every sequence number up to
        # the highest re-proposed one must be assigned in the new view, or
        # in-order execution would stall at the gap forever.
        if best:
            for seq in range(max_stable + 1, max(best) + 1):
                if seq not in best:
                    best[seq] = (0, batch_digest(()), ())
        pre_prepares = tuple(
            PrePrepare(
                view=new_view,
                seq=seq,
                digest=batch_digest(batch),
                batch=batch,
                replica_id=self.replica_id,
            )
            for seq, (_view, _digest, batch) in sorted(best.items())
            if seq > max_stable
        )
        new_view_message = NewView(
            new_view=new_view,
            view_change_senders=tuple(sorted(votes)),
            pre_prepares=pre_prepares,
            replica_id=self.replica_id,
        )
        self._broadcast(new_view_message)
        self._adopt_new_view(new_view_message)

    def _on_new_view(self, message: NewView, sender: str) -> None:
        if message.replica_id != sender:
            return
        if sender != self.leader_of(message.new_view):
            return
        if message.new_view <= self.view:
            return
        if len(message.view_change_senders) < 2 * self.f + 1:
            return
        self._adopt_new_view(message)

    def _adopt_new_view(self, message: NewView) -> None:
        self.view = message.new_view
        self.in_view_change = False
        self._voted_view = max(self._voted_view, self.view)
        self.view_changes_completed += 1
        audit = get_audit(self.env)
        if audit.enabled:
            audit.on_view_adopted(
                self.replica_id, message.new_view, group=self.group
            )
        self._view_change_votes = {
            v: votes
            for v, votes in self._view_change_votes.items()
            if v > self.view
        }
        # Only requests re-proposed by the new leader remain assigned to a
        # live slot; anything else orphaned by the view change must be
        # proposable again when its retransmission arrives.
        self._proposed_keys = {
            request.key()
            for pre_prepare in message.pre_prepares
            for request in pre_prepare.batch
            if request.key() not in self._reply_cache
        }
        highest = self.executed_seq
        for pre_prepare in message.pre_prepares:
            highest = max(highest, pre_prepare.seq)
            if pre_prepare.seq <= self.executed_seq:
                continue
            if not self.log.in_window(pre_prepare.seq):
                continue
            slot = self.log.slot(pre_prepare.seq)
            # The new view's pre-prepare supersedes the old view's.
            slot.pre_prepare = pre_prepare
            slot.prepared = False
            slot.committed = slot.committed  # committed slots stay committed
            self._request_batches[pre_prepare.seq] = pre_prepare.batch
            if audit.enabled:
                # Report the adopted assignment like a direct pre-prepare
                # so a new leader sending conflicting NewView batches to
                # different replicas shows up as equivocation.
                audit.on_pre_prepare(
                    self.replica_id,
                    pre_prepare.view,
                    pre_prepare.seq,
                    pre_prepare.digest,
                    message.replica_id,
                    group=self.group,
                )
            if self.replica_id != message.replica_id:
                prepare = Prepare(
                    view=message.new_view,
                    seq=pre_prepare.seq,
                    digest=pre_prepare.digest,
                    replica_id=self.replica_id,
                )
                slot.record_prepare(prepare)
                self._broadcast(prepare)
            self._check_prepared(pre_prepare.seq)
        self.next_seq = max(self.next_seq, highest + 1)
        # Unexecuted requests we know about go back to the (new) leader.
        now = self.env.now
        for key in list(self._request_deadlines):
            self._request_deadlines[key] = now + self._current_timeout()
        if self.is_leader:
            self._kick_batcher()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop all replica processes (crash the replica)."""
        self.running = False
        self._kick_batcher()
        for connection in list(self._replica_conns.values()):
            connection.close()
        for connection in list(self._client_conns.values()):
            connection.close()
        self.endpoint.close()

    def __repr__(self) -> str:
        role = "leader" if self.is_leader else "backup"
        return (
            f"<Replica {self.replica_id} view={self.view} {role} "
            f"executed={self.executed_seq}>"
        )
