"""Leader crash *during* an in-progress view change.

The nastiest window in the view-change subprotocol: the next leader has
collected its ``2f + 1`` ViewChange quorum but has not yet broadcast
NewView.  If it dies right there, the group is mid-transition with no
leader announcing the new view — the timers must escalate to the view
after it, and nothing the dead leader learned may be lost or forked.
"""

from repro.bft import BftCluster, BftConfig, StallingViewChangeLeader

SAFETY_RULES = (
    "bft.pre-prepare-equivocation",
    "bft.execution-divergence",
    "bft.commit-quorum",
    "bft.view-regression",
    "bft.view-change-equivocation",
    "bft.checkpoint-divergence",
)


def test_leader_crash_between_vc_quorum_and_new_view():
    cluster = BftCluster(
        transport="nio",
        config=BftConfig(view_change_timeout=20e-3, batch_delay=50e-6),
        faulty_fabric=True,
        replica_classes={"r1": StallingViewChangeLeader},
    )
    cluster.start()
    assert cluster.invoke_and_wait(b"PUT before=partition") == b"OK"

    # Cut the current leader off and let request timeouts drive a view
    # change toward r1 — which is armed to die at the precise moment it
    # holds the ViewChange quorum and would broadcast NewView.
    cluster.replica("r1").arm_stall(crash_on_new_view=True)
    cluster.fabric.partition({"r0"}, {"r1", "r2", "r3", "c0"})
    pending = cluster.client().invoke(b"PUT during=viewchange")
    cluster.run_for(120e-3)

    r1 = cluster.replica("r1")
    assert r1.stalled_views, "r1 never reached the vc-quorum crash point"
    assert not r1.running, "r1 should have crashed at the NewView point"

    # Heal the old leader: r0 + r2 + r3 are 2f + 1 live replicas again,
    # so the escalated view change (past dead r1) must complete and the
    # pending request must still commit — exactly once.
    cluster.fabric.heal_all()
    cluster.run_for(400e-3)
    assert pending.triggered and pending.value == b"OK"
    assert cluster.invoke_and_wait(b"PUT after=recovery") == b"OK"

    # Liveness resumed under an honest leader (r1 is dead, so the group
    # settled past view 1), and the run stayed safe: live replicas agree
    # on state and no safety invariant tripped.
    live = [r for rid, r in cluster.replicas.items() if rid != "r1"]
    assert all(r.view >= 2 for r in live)
    digests = {rid: d for rid, d in cluster.state_digests().items() if rid != "r1"}
    assert len(set(digests.values())) == 1
    safety = [v for v in cluster.audit.violations if v.rule in SAFETY_RULES]
    assert not safety, f"safety violations during recovery: {safety}"
