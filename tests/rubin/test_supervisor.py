"""Channel supervision: backoff policy, reconnect, retry budget."""

import random

import pytest

from repro.errors import RubinError
from repro.rubin import ChannelSupervisor, SupervisorPolicy

from tests.rubin.conftest import RubinRig
from tests.rubin.test_channel import read_message, write_all


def auto_accept(rig, server, accepted):
    """Keep accepting inbound handshakes for the lifetime of the test."""

    def loop(env):
        while not server.closed:
            if server.connect_pending:
                accepted.append(server.accept())
            yield env.timeout(50e-6)

    rig.env.process(loop(rig.env), name="auto-accept")


def dial_established(rig, server_port=4791):
    """A dialed + accepted channel pair with a persistent acceptor."""
    server = rig.serve(server_port)
    accepted = []
    auto_accept(rig, server, accepted)
    client = rig.dial(server_port)
    rig.run_for(5e-3)
    assert client.established
    return server, client, accepted


class TestPolicy:
    def test_defaults_valid(self):
        SupervisorPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": 0.0},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"max_attempts": 0},
            {"connect_timeout": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(RubinError):
            SupervisorPolicy(**kwargs)

    def test_delay_is_jittered_exponential_with_cap(self):
        policy = SupervisorPolicy(
            base_delay=1e-3, max_delay=4e-3, multiplier=2.0, jitter=0.5
        )
        rng = random.Random(0)
        for attempt, raw in [(0, 1e-3), (1, 2e-3), (2, 4e-3), (7, 4e-3)]:
            for _ in range(25):
                delay = policy.delay(attempt, rng)
                assert raw * 0.5 <= delay <= raw * 1.5

    def test_delay_sequence_is_seeded(self):
        policy = SupervisorPolicy()
        a = [policy.delay(i, random.Random(9)) for i in range(5)]
        b = [policy.delay(i, random.Random(9)) for i in range(5)]
        assert a == b


class TestSupervision:
    def make_supervisor(self, rig, **overrides):
        defaults = dict(
            base_delay=100e-6,
            max_delay=1e-3,
            connect_timeout=1e-3,
            seed=1,
        )
        defaults.update(overrides)
        return ChannelSupervisor(rig.env, policy=SupervisorPolicy(**defaults))

    def test_accepted_channels_are_rejected(self, rig):
        _server, _client, accepted = dial_established(rig)
        supervisor = self.make_supervisor(rig)
        with pytest.raises(RubinError, match="dialed"):
            supervisor.supervise(accepted[0])

    def test_reconnects_after_qp_error(self, rig):
        _server, client, accepted = dial_established(rig)
        supervisor = self.make_supervisor(rig)
        recovered = []
        supervisor.on_recovered.append(recovered.append)
        supervisor.supervise(client)

        client.qp._enter_error()
        assert client.errored
        rig.run_for(20e-3)

        assert client.established
        assert client.reconnects == 1
        assert supervisor.reconnects.value == 1
        assert supervisor.reconnect_attempts.value >= 1
        assert len(supervisor.recovery_latency) == 1
        assert recovered == [client]
        # The reconnect surfaces the same readiness a fresh active open
        # does, so the application replays its finish_connect() flow.
        assert client.accept_pending
        assert client.finish_connect()

    def test_data_flows_after_reconnect(self, rig):
        _server, client, accepted = dial_established(rig)
        supervisor = self.make_supervisor(rig)
        supervisor.supervise(client)
        client.qp._enter_error()
        rig.run_for(20e-3)
        assert client.established and len(accepted) == 2

        payload = b"post-reconnect payload"
        write_all(rig, client, payload)
        reader = read_message(rig, accepted[1], len(payload))
        assert rig.env.run(until=reader) == payload

    def test_abandons_after_retry_budget(self, rig):
        server, client, _accepted = dial_established(rig)
        supervisor = self.make_supervisor(rig, max_attempts=2)
        abandoned = []
        supervisor.on_abandoned.append(abandoned.append)
        supervisor.supervise(client)

        server.close()  # every re-dial now gets a REJ
        client.qp._enter_error()
        rig.run_for(50e-3)

        assert not client.established
        assert supervisor.abandons.value == 1
        assert supervisor.reconnect_attempts.value == 2
        assert abandoned == [client]

    def test_retries_until_silent_peer_returns(self, rig):
        _server, client, _accepted = dial_established(rig)
        supervisor = self.make_supervisor(rig, connect_timeout=500e-6)
        supervisor.supervise(client)

        # Crash the peer host: handshakes black-hole (no REJ), so each
        # attempt must be cut off by the connect timeout.
        rig.fabric.host("server").nic.power_off()
        client.qp._enter_error()
        rig.run_for(10e-3)
        assert not client.established
        assert supervisor.reconnect_attempts.value >= 2

        rig.fabric.host("server").nic.power_on()
        rig.run_for(20e-3)
        assert client.established
        assert supervisor.reconnects.value == 1

    def test_stop_halts_recovery(self, rig):
        _server, client, _accepted = dial_established(rig)
        supervisor = self.make_supervisor(rig)
        supervisor.stop()
        supervisor.supervise(client)
        client.qp._enter_error()
        rig.run_for(20e-3)
        assert client.errored
        assert client.reconnects == 0
        assert supervisor.reconnect_attempts.value == 0
