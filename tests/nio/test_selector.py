"""Java-NIO selector semantics over simulated TCP."""

import pytest

from repro.errors import TcpError
from repro.nio import (
    OP_ACCEPT,
    OP_CONNECT,
    OP_READ,
    OP_WRITE,
    ByteBuffer,
    Selector,
    ServerSocketChannel,
    SocketChannel,
)

from tests.tcpstack.conftest import TcpPair


@pytest.fixture
def pair():
    return TcpPair()


def connected_channels(pair, port=9100):
    server = ServerSocketChannel.open(pair.server_host).bind(port)
    client = SocketChannel.open(pair.client_host)
    client.connect("server", port)
    pair.env.run(until=client.connection.established)
    pair.env.run(until=pair.env.now + 1e-3)
    client.finish_connect()
    accepted = server.accept()
    return client, accepted, server


def test_select_blocks_until_readable(pair):
    client, accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.server_host)
    key = selector.register(accepted, OP_READ)

    def selecting(env):
        n = yield selector.select()
        return n, selector.selected_keys()

    def sender(env):
        yield env.timeout(2e-3)
        yield client.connection.send(b"data!")

    p = pair.env.process(selecting(pair.env))
    pair.env.process(sender(pair.env))
    n, keys = pair.env.run(until=p)
    assert n == 1
    assert keys == [key]
    assert keys[0].is_readable()
    assert not keys[0].is_writable()


def test_select_sees_acceptable_server_channel(pair):
    server = ServerSocketChannel.open(pair.server_host).bind(9100)
    selector = Selector.open(pair.server_host)
    key = selector.register(server, OP_ACCEPT)

    def selecting(env):
        n = yield selector.select()
        return n

    p = pair.env.process(selecting(pair.env))
    SocketChannel.open(pair.client_host).connect("server", 9100)
    assert pair.env.run(until=p) == 1
    assert key.is_acceptable()


def test_select_reports_connectable_client(pair):
    ServerSocketChannel.open(pair.server_host).bind(9100)
    client = SocketChannel.open(pair.client_host)
    client.connect("server", 9100)
    selector = Selector.open(pair.client_host)
    key = selector.register(client, OP_CONNECT)

    def selecting(env):
        n = yield selector.select()
        return n

    p = pair.env.process(selecting(pair.env))
    assert pair.env.run(until=p) == 1
    assert key.is_connectable()
    assert client.finish_connect()


def test_write_interest_on_established_is_immediate(pair):
    client, _accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.client_host)
    key = selector.register(client, OP_WRITE)

    def selecting(env):
        n = yield selector.select()
        return n

    p = pair.env.process(selecting(pair.env))
    assert pair.env.run(until=p) == 1
    assert key.is_writable()


def test_select_timeout_returns_zero(pair):
    _client, accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.server_host)
    selector.register(accepted, OP_READ)

    def selecting(env):
        n = yield selector.select(timeout=1e-3)
        return n

    p = pair.env.process(selecting(pair.env))
    assert pair.env.run(until=p) == 0


def test_select_now_does_not_block(pair):
    _client, accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.server_host)
    selector.register(accepted, OP_READ)

    def selecting(env):
        n = yield selector.select_now()
        return n, env.now

    start = pair.env.now
    p = pair.env.process(selecting(pair.env))
    n, at = pair.env.run(until=p)
    assert n == 0
    assert at - start < 1e-4  # only syscall cost, no blocking


def test_selected_keys_cleared_after_read(pair):
    client, accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.server_host)
    selector.register(accepted, OP_READ)

    def scenario(env):
        yield client.connection.send(b"x")
        n = yield selector.select()
        first = selector.selected_keys()
        second = selector.selected_keys()
        return n, first, second

    p = pair.env.process(scenario(pair.env))
    n, first, second = pair.env.run(until=p)
    assert n == 1
    assert len(first) == 1
    assert second == []


def test_interest_ops_can_be_updated(pair):
    client, accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.server_host)
    key = selector.register(accepted, OP_READ)
    key.interest_ops = OP_READ | OP_WRITE

    def selecting(env):
        n = yield selector.select()
        return n

    p = pair.env.process(selecting(pair.env))
    assert pair.env.run(until=p) == 1  # writable immediately
    assert key.is_writable()


def test_cancel_removes_registration(pair):
    client, accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.server_host)
    key = selector.register(accepted, OP_READ)
    key.cancel()
    assert not key.valid
    assert selector.keys() == []
    with pytest.raises(TcpError, match="cancelled"):
        key.interest_ops = OP_WRITE


def test_double_register_same_channel_raises(pair):
    client, _accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.client_host)
    selector.register(client, OP_READ)
    with pytest.raises(TcpError, match="already registered"):
        selector.register(client, OP_WRITE)


def test_register_unconnected_channel_raises(pair):
    channel = SocketChannel.open(pair.client_host)
    selector = Selector.open(pair.client_host)
    with pytest.raises(TcpError, match="after connect"):
        selector.register(channel, OP_READ)


def test_server_channel_rejects_non_accept_ops(pair):
    server = ServerSocketChannel.open(pair.server_host).bind(9100)
    selector = Selector.open(pair.server_host)
    with pytest.raises(TcpError, match="only OP_ACCEPT"):
        selector.register(server, OP_READ)


def test_socket_channel_rejects_accept_op(pair):
    client, _accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.client_host)
    with pytest.raises(TcpError, match="do not support OP_ACCEPT"):
        selector.register(client, OP_ACCEPT)


def test_attachment_roundtrip(pair):
    client, _accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.client_host)
    key = selector.register(client, OP_READ)
    context = {"session": 42}
    key.attach(context)
    assert key.attachment is context


def test_closed_selector_rejects_operations(pair):
    client, _accepted, _ = connected_channels(pair)
    selector = Selector.open(pair.client_host)
    key = selector.register(client, OP_READ)
    selector.close()
    assert not key.valid
    with pytest.raises(TcpError, match="closed"):
        selector.select()


def test_echo_server_loop_with_selector(pair):
    """End-to-end: single-threaded selector-driven echo server."""
    client, accepted, server_chan = connected_channels(pair)
    selector = Selector.open(pair.server_host)
    selector.register(accepted, OP_READ)
    echoed = []

    def server_loop(env):
        buf = ByteBuffer.allocate(4096)
        while len(echoed) < 3:
            n = yield selector.select()
            for key in selector.selected_keys():
                if key.is_readable():
                    buf.clear()
                    count = yield key.channel.read(buf)
                    if count > 0:
                        buf.flip()
                        data = buf.get()
                        echoed.append(data)
                        out = ByteBuffer.wrap(data)
                        while out.has_remaining():
                            yield key.channel.write(out)

    def client_loop(env):
        replies = []
        for i in range(3):
            msg = f"echo-{i}".encode()
            yield client.connection.send(msg)
            reply = yield client.connection.receive(min_bytes=len(msg))
            replies.append(reply)
        return replies

    pair.env.process(server_loop(pair.env))
    p = pair.env.process(client_loop(pair.env))
    replies = pair.env.run(until=p)
    assert replies == [b"echo-0", b"echo-1", b"echo-2"]
