"""CLI for the schedule explorer.

Modes (mutually exclusive):

- ``--smoke``            budgeted sweep over the scenario catalog plus
                         the seeded-mutant self-test (CI entry point);
- ``--scenario NAME``    explore one scenario (repeatable);
- ``--replay TRACE``     re-execute a recorded failing trace;
- ``--selftest``         only the find → shrink → replay self-test;
- ``--list``             print the scenario and mutant catalogs.

Exit status is 0 only when every explored schedule satisfied the audit
invariants and the history oracle (and, for ``--smoke``/``--selftest``,
the self-test passed).  Failing traces and flight-recorder post-mortems
land under ``--out`` for offline replay.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.explore.engine import ExploreBudget, Explorer
from repro.explore.mutants import MUTANTS
from repro.explore.scenario import SCENARIOS, ScenarioSpec, get_scenario
from repro.explore.selftest import run_selftest, selftest_spec
from repro.explore.trace import DecisionTrace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="systematic schedule exploration with fault injection",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="budgeted sweep over all scenarios + seeded-mutant self-test",
    )
    mode.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="explore one scenario from the catalog (repeatable)",
    )
    mode.add_argument(
        "--replay",
        metavar="TRACE",
        help="re-execute a recorded decision trace (JSON file)",
    )
    mode.add_argument(
        "--selftest",
        action="store_true",
        help="run only the seeded-mutant find/shrink/replay self-test",
    )
    mode.add_argument(
        "--list",
        action="store_true",
        help="print the scenario and mutant catalogs and exit",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=3_000_000,
        metavar="EVENTS",
        help="total kernel-event budget per scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=60,
        metavar="N",
        help="max schedules per scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for fuzz schedules (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="explore-out",
        metavar="DIR",
        help="directory for failing traces / post-mortems / report",
    )
    return parser


def _resolve_spec(
    name: str, mutant_name: Optional[str] = None
) -> ScenarioSpec:
    if name.startswith("selftest:"):
        # The stripped spec depends on which mutant the trace was
        # recorded against (guard-off runs use the one-sided scenario).
        if mutant_name:
            return selftest_spec(mutant_name)
        return selftest_spec()
    return get_scenario(name)


def _dump_failures(explorer: Explorer, out_dir: Path) -> List[str]:
    paths: List[str] = []
    for index, record in enumerate(explorer.report.failures):
        path = out_dir / f"{explorer.spec.name}-failure-{index}.trace.json"
        record.trace.save(path)
        paths.append(str(path))
        for pm_index, postmortem in enumerate(record.outcome.postmortems):
            pm_path = (
                out_dir
                / f"{explorer.spec.name}-failure-{index}-pm{pm_index}.json"
            )
            pm_path.write_text(json.dumps(postmortem, indent=2, default=str))
            paths.append(str(pm_path))
    return paths


def _explore(
    names: List[str], args: argparse.Namespace, out_dir: Path
) -> Dict[str, Any]:
    report: Dict[str, Any] = {"scenarios": [], "artifacts": []}
    total_distinct = 0
    ok = True
    for name in names:
        explorer = Explorer(
            _resolve_spec(name),
            seed=args.seed,
            budget=ExploreBudget(max_events=args.budget, max_runs=args.runs),
        )
        result = explorer.explore()
        summary = result.summary()
        report["scenarios"].append(summary)
        total_distinct += result.distinct_schedules
        ok = ok and result.ok
        report["artifacts"].extend(_dump_failures(explorer, out_dir))
        status = "ok" if result.ok else "VIOLATIONS"
        print(
            f"[{name}] {status}: {result.runs} runs, "
            f"{result.distinct_schedules} distinct schedules, "
            f"{result.events_used} events"
            + (f" (budget exhausted: {result.exhausted})"
               if result.exhausted else "")
        )
    report["distinct_schedules_total"] = total_distinct
    report["ok"] = ok
    return report


def _replay(path: str, out_dir: Path) -> Dict[str, Any]:
    trace = DecisionTrace.load(path)
    mutant = MUTANTS[trace.mutant] if trace.mutant else None
    spec = _resolve_spec(trace.scenario, trace.mutant)
    explorer = Explorer(spec, mutant=mutant, mutant_name=trace.mutant)
    record = explorer.replay(trace)
    outcome = record.outcome
    report = {
        "trace": trace.to_dict(),
        "ok": outcome.ok,
        "rules": list(outcome.rules),
        "fingerprint": outcome.fingerprint,
        "events": outcome.events,
    }
    recorded = trace.meta.get("fingerprint")
    if recorded:
        report["fingerprint_matches_recording"] = (
            recorded == outcome.fingerprint
        )
    status = "ok (no violation)" if outcome.ok else "VIOLATION reproduced"
    print(f"[replay {trace.scenario}] {status}: rules={sorted(outcome.rules)}")
    if recorded:
        match = "matches" if report["fingerprint_matches_recording"] else \
            "DIFFERS FROM"
        print(f"  fingerprint {match} recording")
    report["artifacts"] = _dump_failures(explorer, out_dir)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list:
        print("scenarios:")
        for name, spec in SCENARIOS.items():
            byz = ", ".join(kind for _, kind in spec.byzantine) or "none"
            print(
                f"  {name}: transport={spec.transport} "
                f"byzantine=[{byz}] faults={len(spec.faults)}"
            )
        print("mutants:")
        for name in MUTANTS:
            print(f"  {name}")
        return 0

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    report: Dict[str, Any]

    if args.replay:
        report = _replay(args.replay, out_dir)
        # Replaying a failing trace SHOULD fail — reproducing the
        # violation is success.  Exit 0 when the verdict matches the
        # recording (or no verdict was recorded).
        recorded_rules = set(
            DecisionTrace.load(args.replay).meta.get("rules", [])
        )
        reproduced = (
            set(report["rules"]) == recorded_rules
            if recorded_rules
            else report["ok"]
        )
        report["reproduced"] = reproduced
        exit_code = 0 if reproduced else 1
    elif args.selftest:
        report = {
            "selftests": {
                name: run_selftest(name, seed=args.seed) for name in MUTANTS
            }
        }
        ok = all(r["ok"] for r in report["selftests"].values())
        for name, result in report["selftests"].items():
            print(f"[selftest:{name}] {'ok' if result['ok'] else 'FAILED'}")
        exit_code = 0 if ok else 1
    elif args.scenario:
        report = _explore(args.scenario, args, out_dir)
        exit_code = 0 if report["ok"] else 1
    else:
        # --smoke (also the default mode): full catalog + one
        # find/shrink/replay self-test per registered mutant.
        report = _explore(list(SCENARIOS), args, out_dir)
        report["selftests"] = {}
        selftest_ok = True
        for mutant_name in MUTANTS:
            result = run_selftest(mutant_name, seed=args.seed)
            report["selftests"][mutant_name] = result
            selftest_ok = selftest_ok and result["ok"]
            print(
                f"[selftest:{mutant_name}] "
                f"{'ok' if result['ok'] else 'FAILED'}: "
                f"mutant found={result['found']} "
                f"shrink={result.get('shrink')}"
            )
        print(
            f"[smoke] scenarios={len(report['scenarios'])} "
            f"distinct_schedules={report['distinct_schedules_total']} "
            f"clean={report['ok']}"
        )
        report["ok"] = report["ok"] and selftest_ok
        exit_code = 0 if report["ok"] else 1

    report_path = out_dir / "report.json"
    report_path.write_text(json.dumps(report, indent=2, default=str))
    print(f"report: {report_path}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
