"""RDMA selection keys.

"The RDMA selection key is the result of an RDMA channel registration with
the selector and has a unique ID characterizing the connection" (paper,
Section III-B).  A key holds the *interest set* chosen at registration and
a *ready set* updated when I/O events occur on the related channel.

The four interests match the paper exactly:

* ``OP_CONNECT`` — an incoming connection request arrived (servers);
* ``OP_ACCEPT``  — a connection finished establishing (both sides);
* ``OP_RECEIVE`` — a received message is ready to be read;
* ``OP_SEND``    — the channel can accept another send.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import RubinError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rubin.selector import RubinSelector

__all__ = [
    "RubinSelectionKey",
    "OP_CONNECT",
    "OP_ACCEPT",
    "OP_RECEIVE",
    "OP_SEND",
]

OP_CONNECT = 1 << 0
OP_ACCEPT = 1 << 1
OP_RECEIVE = 1 << 2
OP_SEND = 1 << 3


class RubinSelectionKey:
    """One channel's registration with the RUBIN selector."""

    def __init__(self, selector: "RubinSelector", channel: Any, interest: int):
        self.selector = selector
        self.channel = channel
        self._interest = interest
        #: Updated "when an I/O event occurred in the related channel".
        self.ready_ops = 0
        self.attachment: Any = None
        self.valid = True

    @property
    def key_id(self) -> Any:
        """The unique connection identifier (the channel's id)."""
        return self.channel.channel_id

    @property
    def interest_ops(self) -> int:
        """The ops this key watches for."""
        return self._interest

    @interest_ops.setter
    def interest_ops(self, ops: int) -> None:
        if not self.valid:
            raise RubinError("selection key is cancelled")
        if ops == 0:
            raise RubinError("empty interest set")
        self._interest = ops

    def attach(self, attachment: Any) -> None:
        """Attach arbitrary application context."""
        self.attachment = attachment

    def is_connectable(self) -> bool:
        """A connection request is pending (OP_CONNECT)."""
        return bool(self.ready_ops & OP_CONNECT)

    def is_acceptable(self) -> bool:
        """A connection finished establishing (OP_ACCEPT)."""
        return bool(self.ready_ops & OP_ACCEPT)

    def is_receivable(self) -> bool:
        """A message is ready to read (OP_RECEIVE)."""
        return bool(self.ready_ops & OP_RECEIVE)

    def is_sendable(self) -> bool:
        """The channel can take another send (OP_SEND)."""
        return bool(self.ready_ops & OP_SEND)

    def cancel(self) -> None:
        """Deregister from the selector."""
        if self.valid:
            self.valid = False
            self.selector._cancel(self)

    def __repr__(self) -> str:
        return (
            f"<RubinSelectionKey id={self.key_id} "
            f"interest={self._interest:#x} ready={self.ready_ops:#x}>"
        )
