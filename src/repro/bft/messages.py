"""PBFT protocol messages and their binary codec.

Messages are encoded with an explicit, length-prefixed binary format (no
pickle: a Byzantine peer controls these bytes, so decoding must be strict
and bounded).  Every decoder validates lengths and rejects trailing
garbage; malformed input raises :class:`~repro.errors.BftError`, which a
replica treats as a faulty peer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import BftError

__all__ = [
    "Request",
    "Reply",
    "PrePrepare",
    "Prepare",
    "Commit",
    "Checkpoint",
    "ViewChange",
    "NewView",
    "StateTransferRequest",
    "StateTransferReply",
    "Busy",
    "encode",
    "decode",
]

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


def _pack_bytes(out: bytearray, data: bytes) -> None:
    out.extend(_U32.pack(len(data)))
    out.extend(data)


def _pack_str(out: bytearray, text: str) -> None:
    _pack_bytes(out, text.encode())


class _Reader:
    """Bounded, strict reader over an encoded message."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def _unpack(self, fmt: struct.Struct) -> int:
        end = self.pos + fmt.size
        if end > len(self.data):
            raise BftError("truncated message")
        (value,) = fmt.unpack_from(self.data, self.pos)
        self.pos = end
        return value

    def bytes_(self) -> bytes:
        length = self.u32()
        end = self.pos + length
        if end > len(self.data):
            raise BftError("truncated byte field")
        out = self.data[self.pos : end]
        self.pos = end
        return out

    def str_(self) -> str:
        return self.bytes_().decode()

    def finish(self) -> None:
        if self.pos != len(self.data):
            raise BftError(
                f"{len(self.data) - self.pos} trailing bytes after message"
            )


@dataclass(frozen=True)
class Request:
    """A client operation submitted for total ordering."""

    client_id: str
    timestamp: int  # client-local, monotonically increasing
    operation: bytes

    def key(self) -> Tuple[str, int]:
        """Deduplication key."""
        return (self.client_id, self.timestamp)


@dataclass(frozen=True)
class Reply:
    """A replica's response to an executed request."""

    replica_id: str
    client_id: str
    timestamp: int
    view: int
    result: bytes


@dataclass(frozen=True)
class PrePrepare:
    """Leader's ordering proposal for a batch of requests."""

    view: int
    seq: int
    digest: bytes  # digest of the encoded batch
    batch: Tuple[Request, ...]
    replica_id: str


@dataclass(frozen=True)
class Prepare:
    """Backup's agreement to the leader's proposal."""

    view: int
    seq: int
    digest: bytes
    replica_id: str


@dataclass(frozen=True)
class Commit:
    """Replica's commitment after collecting a prepared certificate."""

    view: int
    seq: int
    digest: bytes
    replica_id: str


@dataclass(frozen=True)
class Checkpoint:
    """Periodic state digest for log truncation."""

    seq: int
    state_digest: bytes
    replica_id: str


@dataclass(frozen=True)
class ViewChange:
    """Vote to move to ``new_view`` carrying prepared evidence.

    ``prepared`` maps seq -> (view, digest, batch) for every request this
    replica holds a prepared certificate for above its stable checkpoint.
    """

    new_view: int
    stable_seq: int
    prepared: Tuple[Tuple[int, int, bytes, Tuple[Request, ...]], ...]
    replica_id: str


@dataclass(frozen=True)
class NewView:
    """New leader's proof-backed view installation."""

    new_view: int
    view_change_senders: Tuple[str, ...]
    pre_prepares: Tuple[PrePrepare, ...]
    replica_id: str


@dataclass(frozen=True)
class StateTransferRequest:
    """A lagging/restarted replica asking peers for catch-up state.

    ``low_seq`` is the sender's current executed sequence number; peers
    answer with their stable checkpoint (if newer) plus the executed log
    suffix above it.
    """

    low_seq: int
    replica_id: str


@dataclass(frozen=True)
class StateTransferReply:
    """One peer's catch-up answer: stable checkpoint + executed suffix.

    ``snapshot`` is an opaque state-machine snapshot at ``checkpoint_seq``
    whose digest is ``state_digest``; ``suffix`` carries the batches this
    peer executed after the checkpoint, as (seq, batch) pairs.  The
    requester installs a checkpoint only once f+1 replies agree on
    (checkpoint_seq, state_digest) — at least one of them is honest —
    and verifies the snapshot by restoring it and re-digesting.
    """

    checkpoint_seq: int
    state_digest: bytes
    snapshot: bytes
    suffix: Tuple[Tuple[int, Tuple[Request, ...]], ...]
    view: int
    replica_id: str


@dataclass(frozen=True)
class Busy:
    """Admission-control rejection: the replica shed this request.

    Sent instead of processing when a replica's outstanding-request
    budget (``BftConfig.admission_budget``) is exhausted.  Carries the
    request's deduplication key back so the client can match it to the
    pending invocation; clients retry with exponential backoff once
    ``f + 1`` replicas report busy for the same timestamp (at least one
    of them is honest, so the overload signal is genuine).
    """

    replica_id: str
    client_id: str
    timestamp: int
    view: int


_TYPE_IDS = {
    Request: 1,
    Reply: 2,
    PrePrepare: 3,
    Prepare: 4,
    Commit: 5,
    Checkpoint: 6,
    ViewChange: 7,
    NewView: 8,
    StateTransferRequest: 9,
    StateTransferReply: 10,
    Busy: 11,
}
_TYPES = {v: k for k, v in _TYPE_IDS.items()}


def _encode_request_body(out: bytearray, message: Request) -> None:
    _pack_str(out, message.client_id)
    out.extend(_U64.pack(message.timestamp))
    _pack_bytes(out, message.operation)


def _decode_request_body(reader: _Reader) -> Request:
    return Request(reader.str_(), reader.u64(), reader.bytes_())


def _encode_preprepare_body(out: bytearray, message: PrePrepare) -> None:
    out.extend(_U64.pack(message.view))
    out.extend(_U64.pack(message.seq))
    _pack_bytes(out, message.digest)
    out.extend(_U32.pack(len(message.batch)))
    for request in message.batch:
        _encode_request_body(out, request)
    _pack_str(out, message.replica_id)


def _decode_preprepare_body(reader: _Reader) -> PrePrepare:
    view = reader.u64()
    seq = reader.u64()
    digest = reader.bytes_()
    count = reader.u32()
    if count > 100_000:
        raise BftError(f"absurd batch size {count}")
    batch = tuple(_decode_request_body(reader) for _ in range(count))
    return PrePrepare(view, seq, digest, batch, reader.str_())


def encode(message) -> bytes:
    """Serialize any protocol message to bytes."""
    type_id = _TYPE_IDS.get(type(message))
    if type_id is None:
        raise BftError(f"cannot encode {type(message).__name__}")
    out = bytearray([type_id])
    if isinstance(message, Request):
        _encode_request_body(out, message)
    elif isinstance(message, Reply):
        _pack_str(out, message.replica_id)
        _pack_str(out, message.client_id)
        out.extend(_U64.pack(message.timestamp))
        out.extend(_U64.pack(message.view))
        _pack_bytes(out, message.result)
    elif isinstance(message, PrePrepare):
        _encode_preprepare_body(out, message)
    elif isinstance(message, (Prepare, Commit)):
        out.extend(_U64.pack(message.view))
        out.extend(_U64.pack(message.seq))
        _pack_bytes(out, message.digest)
        _pack_str(out, message.replica_id)
    elif isinstance(message, Checkpoint):
        out.extend(_U64.pack(message.seq))
        _pack_bytes(out, message.state_digest)
        _pack_str(out, message.replica_id)
    elif isinstance(message, ViewChange):
        out.extend(_U64.pack(message.new_view))
        out.extend(_U64.pack(message.stable_seq))
        out.extend(_U32.pack(len(message.prepared)))
        for seq, view, digest, batch in message.prepared:
            out.extend(_U64.pack(seq))
            out.extend(_U64.pack(view))
            _pack_bytes(out, digest)
            out.extend(_U32.pack(len(batch)))
            for request in batch:
                _encode_request_body(out, request)
        _pack_str(out, message.replica_id)
    elif isinstance(message, StateTransferRequest):
        out.extend(_U64.pack(message.low_seq))
        _pack_str(out, message.replica_id)
    elif isinstance(message, Busy):
        _pack_str(out, message.replica_id)
        _pack_str(out, message.client_id)
        out.extend(_U64.pack(message.timestamp))
        out.extend(_U64.pack(message.view))
    elif isinstance(message, StateTransferReply):
        out.extend(_U64.pack(message.checkpoint_seq))
        _pack_bytes(out, message.state_digest)
        _pack_bytes(out, message.snapshot)
        out.extend(_U32.pack(len(message.suffix)))
        for seq, batch in message.suffix:
            out.extend(_U64.pack(seq))
            out.extend(_U32.pack(len(batch)))
            for request in batch:
                _encode_request_body(out, request)
        out.extend(_U64.pack(message.view))
        _pack_str(out, message.replica_id)
    elif isinstance(message, NewView):
        out.extend(_U64.pack(message.new_view))
        out.extend(_U32.pack(len(message.view_change_senders)))
        for sender in message.view_change_senders:
            _pack_str(out, sender)
        out.extend(_U32.pack(len(message.pre_prepares)))
        for pre_prepare in message.pre_prepares:
            body = bytearray()
            _encode_preprepare_body(body, pre_prepare)
            _pack_bytes(out, bytes(body))
        _pack_str(out, message.replica_id)
    return bytes(out)


def decode(data: bytes):
    """Parse bytes back into a protocol message (strict)."""
    if not data:
        raise BftError("empty message")
    type_id = data[0]
    cls = _TYPES.get(type_id)
    if cls is None:
        raise BftError(f"unknown message type {type_id}")
    reader = _Reader(data)
    reader.pos = 1
    if cls is Request:
        message = _decode_request_body(reader)
    elif cls is Reply:
        message = Reply(
            reader.str_(), reader.str_(), reader.u64(), reader.u64(), reader.bytes_()
        )
    elif cls is PrePrepare:
        message = _decode_preprepare_body(reader)
    elif cls in (Prepare, Commit):
        message = cls(reader.u64(), reader.u64(), reader.bytes_(), reader.str_())
    elif cls is Checkpoint:
        message = Checkpoint(reader.u64(), reader.bytes_(), reader.str_())
    elif cls is ViewChange:
        new_view = reader.u64()
        stable_seq = reader.u64()
        count = reader.u32()
        if count > 100_000:
            raise BftError(f"absurd prepared-set size {count}")
        prepared = []
        for _ in range(count):
            seq = reader.u64()
            view = reader.u64()
            digest = reader.bytes_()
            batch_len = reader.u32()
            if batch_len > 100_000:
                raise BftError(f"absurd batch size {batch_len}")
            batch = tuple(_decode_request_body(reader) for _ in range(batch_len))
            prepared.append((seq, view, digest, batch))
        message = ViewChange(new_view, stable_seq, tuple(prepared), reader.str_())
    elif cls is StateTransferRequest:
        message = StateTransferRequest(reader.u64(), reader.str_())
    elif cls is Busy:
        message = Busy(reader.str_(), reader.str_(), reader.u64(), reader.u64())
    elif cls is StateTransferReply:
        checkpoint_seq = reader.u64()
        state_digest = reader.bytes_()
        snapshot = reader.bytes_()
        count = reader.u32()
        if count > 100_000:
            raise BftError(f"absurd suffix size {count}")
        suffix = []
        for _ in range(count):
            seq = reader.u64()
            batch_len = reader.u32()
            if batch_len > 100_000:
                raise BftError(f"absurd batch size {batch_len}")
            batch = tuple(_decode_request_body(reader) for _ in range(batch_len))
            suffix.append((seq, batch))
        message = StateTransferReply(
            checkpoint_seq,
            state_digest,
            snapshot,
            tuple(suffix),
            reader.u64(),
            reader.str_(),
        )
    elif cls is NewView:
        new_view = reader.u64()
        sender_count = reader.u32()
        if sender_count > 10_000:
            raise BftError(f"absurd sender count {sender_count}")
        senders = tuple(reader.str_() for _ in range(sender_count))
        pp_count = reader.u32()
        if pp_count > 100_000:
            raise BftError(f"absurd pre-prepare count {pp_count}")
        pre_prepares = []
        for _ in range(pp_count):
            body = reader.bytes_()
            inner = _Reader(body)
            pre_prepares.append(_decode_preprepare_body(inner))
            inner.finish()
        message = NewView(new_view, senders, tuple(pre_prepares), reader.str_())
    else:  # pragma: no cover - exhaustive
        raise BftError(f"unhandled type {cls}")
    reader.finish()
    return message
