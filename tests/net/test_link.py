"""Unit tests for the link model: serialization, propagation, loss."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.net import Frame, Link, TEN_GIGABIT
from repro.net.link import DuplexLink
from repro.sim import Environment


def make_frame(size=1000, dst="b"):
    return Frame(src="a", dst=dst, protocol="test", wire_bytes=size, payload=None)


def test_transmission_time_matches_bandwidth():
    env = Environment()
    link = Link(env, bandwidth_bps=TEN_GIGABIT)
    # 10 Gbps -> 1250 bytes per microsecond
    assert link.transmission_time(1250) == pytest.approx(1e-6)


def test_frame_arrives_after_serialization_plus_propagation():
    env = Environment()
    link = Link(env, bandwidth_bps=8e9, propagation_delay=2e-6)
    arrivals = []
    link.attach_receiver(lambda f: arrivals.append((env.now, f)))
    frame = make_frame(size=1000)  # 1000B at 8Gbps = 1 us serialize
    link.send(frame)
    env.run()
    assert len(arrivals) == 1
    assert arrivals[0][0] == pytest.approx(3e-6)
    assert arrivals[0][1] is frame


def test_frames_serialize_fifo():
    env = Environment()
    link = Link(env, bandwidth_bps=8e9, propagation_delay=0.0)
    arrivals = []
    link.attach_receiver(lambda f: arrivals.append((env.now, f.frame_id)))
    f1, f2 = make_frame(1000), make_frame(1000)
    link.send(f1)
    link.send(f2)
    env.run()
    assert arrivals == [
        (pytest.approx(1e-6), f1.frame_id),
        (pytest.approx(2e-6), f2.frame_id),
    ]


def test_serialization_and_propagation_pipeline():
    """Second frame starts clocking out while the first is propagating."""
    env = Environment()
    link = Link(env, bandwidth_bps=8e9, propagation_delay=10e-6)
    arrivals = []
    link.attach_receiver(lambda f: arrivals.append(env.now))
    link.send(make_frame(1000))
    link.send(make_frame(1000))
    env.run()
    # Arrivals at 11us and 12us — NOT 11us and 22us.
    assert arrivals[0] == pytest.approx(11e-6)
    assert arrivals[1] == pytest.approx(12e-6)


def test_send_without_receiver_raises():
    env = Environment()
    link = Link(env)
    with pytest.raises(NetworkError):
        link.send(make_frame())


def test_double_receiver_attach_raises():
    env = Environment()
    link = Link(env)
    link.attach_receiver(lambda f: None)
    with pytest.raises(NetworkError):
        link.attach_receiver(lambda f: None)


def test_deterministic_drop_hook():
    env = Environment()
    dropped_ids = set()

    def drop_every_other(frame):
        return frame.frame_id % 2 == 0

    link = Link(env, bandwidth_bps=8e9, drop_fn=drop_every_other)
    arrivals = []
    link.attach_receiver(lambda f: arrivals.append(f.frame_id))
    frames = [make_frame() for _ in range(6)]
    for f in frames:
        link.send(f)
        if f.frame_id % 2 == 0:
            dropped_ids.add(f.frame_id)
    env.run()
    assert set(arrivals).isdisjoint(dropped_ids)
    assert len(arrivals) + link.frames_dropped.value == 6


def test_counters_track_traffic():
    env = Environment()
    link = Link(env, bandwidth_bps=8e9)
    link.attach_receiver(lambda f: None)
    link.send(make_frame(500))
    link.send(make_frame(700))
    env.run()
    assert link.frames_sent.value == 2
    assert link.bytes_sent.value == 1200


def test_invalid_bandwidth_raises():
    env = Environment()
    with pytest.raises(ConfigurationError):
        Link(env, bandwidth_bps=0)


def test_negative_propagation_raises():
    env = Environment()
    with pytest.raises(ConfigurationError):
        Link(env, propagation_delay=-1e-6)


def test_utilization_reflects_tx_busy_time():
    env = Environment()
    link = Link(env, bandwidth_bps=8e9, propagation_delay=0.0)
    link.attach_receiver(lambda f: None)
    link.send(make_frame(1000))  # 1 us busy
    env.run()
    env.timeout(1e-6)
    env.run()  # 1 us idle
    assert link.utilization() == pytest.approx(0.5)


def test_duplex_link_directions_are_independent():
    env = Environment()
    duplex = DuplexLink(env, bandwidth_bps=8e9, propagation_delay=0.0)
    fwd_got, bwd_got = [], []
    duplex.forward.attach_receiver(lambda f: fwd_got.append(env.now))
    duplex.backward.attach_receiver(lambda f: bwd_got.append(env.now))
    duplex.forward.send(make_frame(1000))
    duplex.backward.send(make_frame(1000))
    env.run()
    # Full duplex: both complete at 1us, no serialization between directions.
    assert fwd_got == [pytest.approx(1e-6)]
    assert bwd_got == [pytest.approx(1e-6)]


def test_frame_requires_positive_wire_bytes():
    with pytest.raises(NetworkError):
        Frame(src="a", dst="b", protocol="t", wire_bytes=0, payload=None)


def test_frame_ids_are_unique_and_increasing():
    a, b = make_frame(), make_frame()
    assert b.frame_id > a.frame_id
