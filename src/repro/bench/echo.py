"""Figure 3 micro-benchmark workloads.

"A simple client-server echo application between two machines... We
compare the throughput and the latency of TCP, RDMA Read/Write, and RDMA
Send/Receive with our implementation of an RDMA channel including the
optimizations" (paper, Section V).

Four workloads, one per curve:

* :func:`tcp_echo` — blocking sockets over the simulated TCP stack;
* :func:`rdma_send_recv_echo` — raw two-sided verbs, one signaled CQE per
  message, no intermediate copies (the application consumes the
  registered receive buffer in place);
* :func:`rdma_read_write_echo` — one-sided RDMA WRITE: "only the client
  writes messages to the server without waiting for a response", so one
  message = one write completion;
* :func:`rubin_channel_echo` — the RUBIN channel with all Section-IV
  optimizations (inline sends, selective signaling, zero-copy send,
  batched receive posting) and its receive-side copy.

Raw-verbs workloads charge the host-software costs (posting, doorbells,
completion reaping) explicitly, since the verbs layer models only the
RNIC; the RUBIN channel charges its own costs internally.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.calibration import (
    TESTBED_DEVICE_ATTRS,
    Testbed,
    build_testbed,
    testbed_registry,
)
from repro.bench.results import EchoResult
from repro.errors import ReproError
from repro.nio import ByteBuffer
from repro.rdma import (
    Access,
    ConnectionManager,
    Opcode,
    QpCapabilities,
    RecvWorkRequest,
    SendWorkRequest,
    Sge,
)
from repro.rubin import RubinChannel, RubinConfig, RubinServerChannel

__all__ = [
    "tcp_echo",
    "rdma_send_recv_echo",
    "rdma_read_write_echo",
    "rubin_channel_echo",
    "run_echo",
]

#: Port used by the echo servers.
ECHO_PORT = 7777


def run_echo(
    transport: str,
    payload_bytes: int,
    messages: int,
    tracer=None,
    sampler=None,
) -> EchoResult:
    """Dispatch one echo run by transport name.

    ``tracer``/``sampler`` (observability hooks, see :mod:`repro.obs`)
    are only wired through the RUBIN channel workload — the raw-verbs
    and TCP baselines are comparison points, not the profiled system.
    """
    workloads = {
        "tcp": tcp_echo,
        "rdma_send_recv": rdma_send_recv_echo,
        "rdma_read_write": rdma_read_write_echo,
        "rdma_channel": rubin_channel_echo,
    }
    workload = workloads.get(transport)
    if workload is None:
        raise ReproError(
            f"unknown transport {transport!r} (have {sorted(workloads)})"
        )
    if transport == "rdma_channel":
        return workload(
            payload_bytes, messages, tracer=tracer, sampler=sampler
        )
    if tracer is not None or sampler is not None:
        raise ReproError(
            f"tracer/sampler hooks are only supported on rdma_channel, "
            f"not {transport!r}"
        )
    return workload(payload_bytes, messages)


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------


def tcp_echo(payload_bytes: int, messages: int) -> EchoResult:
    """Sequential request-response echo over the TCP stack.

    Models the paper's plain Java socket echo: application data lives in
    heap arrays, so every send pays one extra heap-to-direct-buffer copy
    inside the JDK before the kernel copy (the DiSNI/RDMA paths use
    direct buffers end-to-end and skip this).
    """
    bed = build_testbed()
    env = bed.env
    result = EchoResult("tcp", payload_bytes, messages)
    payload = b"\xa5" * payload_bytes

    listener = bed.server.stack("tcp").listen(ECHO_PORT)

    def server(env):
        connection = yield listener.accept()
        for _ in range(messages):
            data = yield connection.receive(min_bytes=payload_bytes)
            yield bed.server.cpu.copy(len(data))  # heap -> direct buffer
            yield connection.send(data)

    def client(env):
        connection = bed.client.stack("tcp").connect("server", ECHO_PORT)
        yield connection.established
        start = env.now
        for _ in range(messages):
            t0 = env.now
            yield bed.client.cpu.copy(payload_bytes)  # heap -> direct buffer
            yield connection.send(payload)
            received = 0
            while received < payload_bytes:
                data = yield connection.receive(
                    max_bytes=payload_bytes - received
                )
                received += len(data)
            result.latencies_us.append((env.now - t0) * 1e6)
        result.duration_s = env.now - start

    env.process(server(env), name="echo.server")
    done = env.process(client(env), name="echo.client")
    env.run(until=done)
    result.messages = len(result.latencies_us)
    result.sim_events = env._eid
    return result


# ---------------------------------------------------------------------------
# raw verbs rigging
# ---------------------------------------------------------------------------


class _VerbsRig:
    """Connected QP pair on the calibrated testbed, with cost charging."""

    def __init__(self, payload_bytes: int, caps: Optional[QpCapabilities] = None):
        self.bed = build_testbed()
        self.env = self.bed.env
        client_dev = self.bed.client.stack("rdma")
        server_dev = self.bed.server.stack("rdma")
        self.client_pd = client_dev.alloc_pd()
        self.server_pd = server_dev.alloc_pd()
        self.client_send_cq = client_dev.create_cq(name="c.send")
        self.client_recv_cq = client_dev.create_cq(name="c.recv")
        self.server_send_cq = server_dev.create_cq(name="s.send")
        self.server_recv_cq = server_dev.create_cq(name="s.recv")
        caps = caps or QpCapabilities(max_send_wr=256, max_recv_wr=256)
        self.client_qp = client_dev.create_qp(
            self.client_pd, self.client_send_cq, self.client_recv_cq, caps
        )
        self.server_qp = server_dev.create_qp(
            self.server_pd, self.server_send_cq, self.server_recv_cq, caps
        )
        self.client_qp.connect("server", self.server_qp.qp_num)
        self.server_qp.connect("client", self.client_qp.qp_num)
        self.client_dev = client_dev
        self.server_dev = server_dev

    def charge_post(self, host, count: int = 1):
        """CPU cost of posting ``count`` WRs with one doorbell."""
        costs = host.cpu.costs
        return host.cpu.execute(costs.post_wr * count + costs.doorbell)

    def charge_poll(self, host, count: int = 1):
        """CPU cost of reaping ``count`` CQEs."""
        return host.cpu.execute(host.cpu.costs.cqe_poll * count)

    def charge_blocking_wake(self, host):
        """Cost of waking from a blocking completion-channel wait.

        The *unoptimized* verbs pattern (DiSNI default endpoints) blocks
        on the completion channel: the RNIC raises an interrupt, the
        kernel wakes the thread, and the ``get_cq_event`` read is a
        syscall.  This per-notification overhead is exactly what RUBIN's
        selective signaling and user-space hybrid event queue avoid.
        """
        costs = host.cpu.costs
        return host.cpu.execute(
            costs.interrupt + costs.context_switch + costs.syscall
        )

    def wait_cqe(self, cq):
        """Event for the next completion on ``cq`` (busy-poll model)."""
        channel = cq.channel
        if channel is None:
            from repro.rdma import CompletionChannel

            channel = CompletionChannel(self.env)
            cq.channel = channel
        cq.request_notify()
        return channel.get_cq_event()


def rdma_send_recv_echo(payload_bytes: int, messages: int) -> EchoResult:
    """Two-sided echo: every message is a SEND consumed by a posted RECV.

    No intermediate copies — applications use the registered buffers in
    place — and every send is signaled (no selective signaling): this is
    the plain Send/Receive baseline the RUBIN channel is compared to.
    """
    rig = _VerbsRig(payload_bytes)
    env = rig.env
    result = EchoResult("rdma_send_recv", payload_bytes, messages)

    size = max(payload_bytes, 1)
    client_send = rig.client_dev.reg_mr(rig.client_pd, bytearray(size))
    client_recv = rig.client_dev.reg_mr(rig.client_pd, bytearray(size))
    server_send = rig.server_dev.reg_mr(rig.server_pd, bytearray(size))
    server_recv = rig.server_dev.reg_mr(rig.server_pd, bytearray(size))
    client_send.buffer[:payload_bytes] = b"\xa5" * payload_bytes

    def server(env):
        host = rig.bed.server
        for i in range(messages):
            yield rig.charge_post(host)
            rig.server_qp.post_recv(RecvWorkRequest(wr_id=i, sge=Sge(server_recv)))
            yield rig.wait_cqe(rig.server_recv_cq)
            # Blocking completion-channel wait: interrupt + wake + syscall.
            yield rig.charge_blocking_wake(host)
            yield rig.charge_poll(host)
            wc = rig.server_recv_cq.poll(1)[0]
            assert wc.ok
            # Echo straight out of the receive buffer (zero copy).
            server_send.buffer[:payload_bytes] = server_recv.buffer[:payload_bytes]
            yield rig.charge_post(host)
            rig.server_qp.post_send(
                SendWorkRequest(
                    wr_id=1000 + i,
                    opcode=Opcode.SEND,
                    sge=Sge(server_send, 0, payload_bytes),
                )
            )
            # Send completions (signaled on every message — no selective
            # signaling in the baseline) are reaped lazily when present.
            if len(rig.server_send_cq):
                yield rig.charge_poll(host)
                rig.server_send_cq.poll(1)

    def client(env):
        host = rig.bed.client
        start = env.now
        for i in range(messages):
            t0 = env.now
            yield rig.charge_post(host)
            rig.client_qp.post_recv(RecvWorkRequest(wr_id=i, sge=Sge(client_recv)))
            yield rig.charge_post(host)
            rig.client_qp.post_send(
                SendWorkRequest(
                    wr_id=2000 + i,
                    opcode=Opcode.SEND,
                    sge=Sge(client_send, 0, payload_bytes),
                )
            )
            yield rig.wait_cqe(rig.client_recv_cq)
            yield rig.charge_blocking_wake(host)
            yield rig.charge_poll(host)
            wc = rig.client_recv_cq.poll(1)[0]
            assert wc.ok
            result.latencies_us.append((env.now - t0) * 1e6)
            # Drain the per-message send CQE (lazy, non-blocking).
            if len(rig.client_send_cq):
                yield rig.charge_poll(host)
                rig.client_send_cq.poll(1)
        result.duration_s = env.now - start

    env.process(server(env), name="sr.server")
    done = env.process(client(env), name="sr.client")
    env.run(until=done)
    result.messages = len(result.latencies_us)
    result.sim_events = env._eid
    return result


def rdma_read_write_echo(payload_bytes: int, messages: int) -> EchoResult:
    """One-sided workload: the client WRITEs each message into the
    server's memory; the server CPU is never involved.  Latency is the
    time from posting the write to its completion (transport ACK)."""
    rig = _VerbsRig(payload_bytes)
    env = rig.env
    result = EchoResult("rdma_read_write", payload_bytes, messages)

    size = max(payload_bytes, 1)
    client_src = rig.client_dev.reg_mr(rig.client_pd, bytearray(size))
    client_src.buffer[:payload_bytes] = b"\xa5" * payload_bytes
    server_dst = rig.server_dev.reg_mr(
        rig.server_pd,
        bytearray(size),
        Access.LOCAL_WRITE | Access.REMOTE_WRITE,
    )

    def client(env):
        host = rig.bed.client
        start = env.now
        for i in range(messages):
            t0 = env.now
            yield rig.charge_post(host)
            rig.client_qp.post_send(
                SendWorkRequest(
                    wr_id=i,
                    opcode=Opcode.RDMA_WRITE,
                    sge=Sge(client_src, 0, payload_bytes),
                    remote=server_dst.remote_address(),
                )
            )
            yield rig.wait_cqe(rig.client_send_cq)
            # Blocking wait for the write completion (the client must know
            # the buffer is reusable before overwriting it).
            yield rig.charge_blocking_wake(host)
            yield rig.charge_poll(host)
            wc = rig.client_send_cq.poll(1)[0]
            assert wc.ok
            result.latencies_us.append((env.now - t0) * 1e6)
        result.duration_s = env.now - start

    done = env.process(client(env), name="rw.client")
    env.run(until=done)
    result.messages = len(result.latencies_us)
    result.sim_events = env._eid
    return result


def rubin_channel_echo(
    payload_bytes: int,
    messages: int,
    config: Optional[RubinConfig] = None,
    tracer=None,
    sampler=None,
) -> EchoResult:
    """Echo over the RUBIN channel with the Section-IV optimizations.

    With ``tracer`` each message becomes one causal trace (root span
    ``echo.request``) whose context rides the channel writes in both
    directions; with ``sampler`` (a bound-free
    :class:`~repro.obs.MetricsSampler`) the testbed's CPU/NIC/link
    probes are sampled on the sim clock for the duration of the run.
    Both default off and leave the schedule untouched.
    """
    bed = build_testbed()
    env = bed.env
    result = EchoResult("rdma_channel", payload_bytes, messages)
    if config is None:
        config = RubinConfig()
    if tracer is not None:
        from repro.trace import install_tracer

        install_tracer(env, tracer)
    if sampler is not None:
        sampler.bind(env, testbed_registry(bed))

    client_cm = ConnectionManager(bed.client.stack("rdma"))
    server_cm = ConnectionManager(bed.server.stack("rdma"))
    server_chan = RubinServerChannel(
        bed.server.stack("rdma"), server_cm, ECHO_PORT, config
    )
    client_chan = RubinChannel.connect(
        bed.client.stack("rdma"), client_cm, "server", ECHO_PORT, config
    )

    wake_cost = bed.client.cpu.costs.context_switch

    def read_exactly(channel, host, buffer, nbytes):
        """Read a whole message, charging one event-queue wake per block.

        The channel application blocks on RUBIN's user-space hybrid event
        queue — a thread wake-up, but no interrupt and no syscall (the
        notification arrived via the event manager, and selective
        signaling keeps send completions off this path entirely).
        """
        got = 0
        blocked = False
        while got < nbytes:
            n = yield channel.read(buffer)
            if n is None:
                raise ReproError("channel closed mid-message")
            if n == 0:
                blocked = True
                yield env.timeout(0.2e-6)  # wait for the event notification
            else:
                if blocked:
                    yield host.cpu.execute(wake_cost)
                    blocked = False
                got += n
        return got

    def write_all(channel, host, buffer, trace_ctx=None):
        """Write one message from a *reused* application buffer.

        Reuse is the point of the zero-copy send path: the buffer is
        registered on first use and every later write gathers from it
        directly (paper, Section IV).
        """
        while buffer.has_remaining():
            n = yield channel.write(buffer, trace_ctx=trace_ctx)
            if n == 0:
                yield env.timeout(0.2e-6)

    def server(env):
        host = bed.server
        while not server_chan.connect_pending:
            yield env.timeout(1e-6)
        accepted = server_chan.accept(config)
        while not accepted.established:
            yield env.timeout(1e-6)
        inbuf = ByteBuffer.allocate(max(payload_bytes, 1))
        for _ in range(messages):
            inbuf.clear()
            yield from read_exactly(accepted, host, inbuf, payload_bytes)
            # Echo straight from the same application buffer: it was
            # registered on the first write and reused ever since.
            inbuf.flip()
            yield from write_all(
                accepted, host, inbuf,
                trace_ctx=accepted.last_read_trace_ctx,
            )

    def client(env):
        host = bed.client
        while not client_chan.established:
            yield env.timeout(1e-6)
        if sampler is not None:
            sampler.start()
        outbuf = ByteBuffer.allocate(max(payload_bytes, 1))
        outbuf.put(b"\xa5" * payload_bytes)
        scratch = ByteBuffer.allocate(max(payload_bytes, 1))
        start = env.now
        for i in range(messages):
            t0 = env.now
            root = None
            if tracer is not None and tracer.enabled:
                root = tracer.start_trace(
                    "echo.request", layer="client", track="client", msg=i
                )
            outbuf.rewind()
            yield from write_all(
                client_chan, host, outbuf,
                trace_ctx=root.context if root is not None else None,
            )
            scratch.clear()
            yield from read_exactly(client_chan, host, scratch, payload_bytes)
            result.latencies_us.append((env.now - t0) * 1e6)
            if root is not None:
                root.end()
        result.duration_s = env.now - start
        if sampler is not None:
            sampler.sample_now()
            sampler.stop()

    env.process(server(env), name="rubin.server")
    done = env.process(client(env), name="rubin.client")
    env.run(until=done)
    result.messages = len(result.latencies_us)
    result.sim_events = env._eid
    return result
