"""Aliasing safety of the zero-copy data path.

The send path gathers views of stable (pool/staging) memory and pins
non-stable application buffers with a single owned snapshot at post time;
the receive path hands ``read_view`` callers a window into the pooled
receive buffer.  These tests prove the sharp edges are fenced: a sender
mutating its buffer the instant ``write()`` returns can never corrupt
in-flight or delivered data, and a receive view observes exactly the bytes
the wire delivered.
"""

from repro.nio import ByteBuffer
from repro.rubin import RubinConfig

from tests.rubin.conftest import RubinRig
from tests.rubin.test_channel import read_message


def _write_then_mutate(rig, channel, payload, fill):
    """Write ``payload`` from an app buffer, then clobber the buffer
    in the same simulated instant the last write() returns."""

    def writer(env):
        buf = ByteBuffer.wrap(bytearray(payload))
        while buf.has_remaining():
            n = yield channel.write(buf)
            if n == 0:
                yield env.timeout(20e-6)
        backing = buf.array()
        backing[:] = fill * len(backing)
        return True

    return rig.env.process(writer(rig.env))


def test_sender_mutation_after_write_does_not_corrupt_delivery():
    """Zero-copy send path: post-write() mutation must not reach the wire."""
    rig = RubinRig()
    client, server = rig.establish()
    payload = bytes(range(256)) * 16  # 4 KiB, above the inline threshold
    p = _write_then_mutate(rig, client, payload, b"Z")
    rig.env.run(until=p)
    q = read_message(rig, server, len(payload))
    assert rig.env.run(until=q) == payload


def test_sender_mutation_with_copy_send_path():
    """The pooled copy-send path gives the same guarantee."""
    rig = RubinRig(config=RubinConfig(zero_copy_send=False))
    client, server = rig.establish()
    payload = b"\xa5" * 4096
    p = _write_then_mutate(rig, client, payload, b"Q")
    rig.env.run(until=p)
    q = read_message(rig, server, len(payload))
    assert rig.env.run(until=q) == payload


def test_sender_mutation_survives_lossy_fabric_retransmits():
    """Retransmitted packets carry the post-time snapshot, not live memory."""
    rig = RubinRig()
    client, server = rig.establish()
    # Drop a couple of data frames deterministically so the QP's
    # retransmit path re-emits packets long after the app mutated its
    # buffer.
    drops = iter([True, False, True, False])
    link = rig.fabric.host("client").nic.link_to("server")
    link.drop_fn = lambda frame: next(drops, False)
    payload = b"\x5a" * 8192
    p = _write_then_mutate(rig, client, payload, b"W")
    rig.env.run(until=p)
    q = read_message(rig, server, len(payload))
    assert rig.env.run(until=q) == payload


def test_read_view_sees_delivered_bytes_and_back_to_back_messages():
    """read_view hands back exactly the delivered bytes, message by message,
    even with further traffic arriving behind it."""
    rig = RubinRig()
    client, server = rig.establish()
    first = b"1" * 2048
    second = b"2" * 2048

    def writer(env):
        for payload in (first, second):
            buf = ByteBuffer.wrap(payload)
            while buf.has_remaining():
                n = yield client.write(buf)
                if n == 0:
                    yield env.timeout(20e-6)
        return True

    def reader(env):
        got = []
        deadline = env.now + 0.5
        while len(got) < 2 and env.now < deadline:
            view = yield server.read_view(4096)
            if view is None:
                break
            if isinstance(view, memoryview):
                if len(view) == 0:
                    yield env.timeout(10e-6)
                else:
                    got.append(bytes(view))
                    view.release()
            elif view == 0:
                yield env.timeout(10e-6)
        return got

    rig.env.process(writer(rig.env))
    q = rig.env.process(reader(rig.env))
    got = rig.env.run(until=q)
    assert b"".join(got) == first + second
