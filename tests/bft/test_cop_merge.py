"""MergeStage: deterministic round-robin merge under out-of-order commits."""

import pytest

from repro.bft.cop import MergeStage


class TestSlotArithmetic:
    def test_round_robin_layout(self):
        m = MergeStage(4)
        # slot = (seq-1)*G + group + 1
        assert m.global_slot(0, 1) == 1
        assert m.global_slot(3, 1) == 4
        assert m.global_slot(0, 2) == 5
        assert m.global_slot(2, 3) == 11

    def test_inverse_mapping(self):
        m = MergeStage(4)
        for slot in range(1, 50):
            group, seq = m.group_of(slot), m.group_seq(slot)
            assert m.global_slot(group, seq) == slot

    def test_degenerate_single_group_is_identity(self):
        m = MergeStage(1)
        for seq in range(1, 10):
            assert m.global_slot(0, seq) == seq
            assert m.group_of(seq) == 0
            assert m.group_seq(seq) == seq

    def test_bounds_checked(self):
        m = MergeStage(2)
        with pytest.raises(ValueError):
            m.global_slot(2, 1)
        with pytest.raises(ValueError):
            m.global_slot(0, 0)
        with pytest.raises(ValueError):
            MergeStage(0)


class TestOutOfOrderMerge:
    def test_in_order_commits_stream_through(self):
        m = MergeStage(2)
        assert m.offer(0, 1, "a")
        assert m.pop_ready() == (1, "a")
        assert m.offer(1, 1, "b")
        assert m.pop_ready() == (2, "b")
        assert m.position == 2

    def test_head_of_line_gap_blocks_later_slots(self):
        m = MergeStage(3)
        # Groups 1 and 2 commit seq 1 before group 0 does.
        assert m.offer(1, 1, "b")
        assert m.offer(2, 1, "c")
        assert m.pop_ready() is None
        assert m.has_gap()
        assert m.stalled_group() == 0
        # The straggler lands: the whole prefix drains in merge order.
        assert m.offer(0, 1, "a")
        drained = []
        while True:
            item = m.pop_ready()
            if item is None:
                break
            drained.append(item)
        assert drained == [(1, "a"), (2, "b"), (3, "c")]
        assert not m.has_gap()

    def test_merge_order_is_permutation_invariant(self):
        # Whatever order commits arrive in, the merged order is the
        # same pure function of the committed (group, seq) entries.
        import itertools

        offers = [(g, k) for k in (1, 2) for g in range(3)]
        expected = None
        for perm in itertools.permutations(offers):
            m = MergeStage(3)
            drained = []
            for group, seq in perm:
                m.offer(group, seq, (group, seq))
                while True:
                    item = m.pop_ready()
                    if item is None:
                        break
                    drained.append(item)
            if expected is None:
                expected = drained
            assert drained == expected
        assert [slot for slot, _ in expected] == list(range(1, 7))

    def test_stale_and_duplicate_offers_rejected(self):
        m = MergeStage(2)
        assert m.offer(0, 1, "a")
        assert not m.offer(0, 1, "dup")  # still buffered
        m.pop_ready()
        assert not m.offer(0, 1, "stale")  # already merged
        assert m.pending() == 0

    def test_pending_counts_buffered_entries(self):
        m = MergeStage(4)
        m.offer(1, 1, "b")
        m.offer(3, 2, "h")
        assert m.pending() == 2

    def test_reset_drops_covered_entries_keeps_future(self):
        # State-transfer install: jump past the checkpoint, keep
        # commits beyond it buffered.
        m = MergeStage(2)
        m.offer(0, 1, "a")
        m.offer(1, 2, "d")  # slot 4
        m.reset(3)
        assert m.position == 3
        assert m.pending() == 1
        assert m.pop_ready() == (4, "d")

    def test_reset_backwards_rejected(self):
        m = MergeStage(2)
        with pytest.raises(ValueError):
            m.reset(-1)
