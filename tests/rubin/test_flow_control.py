"""End-to-end flow control: credit stalls, RNR handling, pool exhaustion.

The ISSUE-5 overload model at the transport layer: a receiver that stops
reading must *stall* a flow-controlled sender (write() returns 0, no
error), while the same scenario without flow control exhausts the RNR
retry budget and hard-fails the channel — the contrast the graceful
degradation work exists to fix.
"""

import pytest

from repro.errors import RubinError
from repro.rubin import ChannelSupervisor, RubinConfig, SupervisorPolicy
from repro.rubin.buffer_pool import BufferPool

from repro.nio import ByteBuffer

from tests.rubin.conftest import RubinRig
from tests.rubin.test_channel import read_message, write_all
from tests.rubin.test_supervisor import auto_accept


def tolerant_writer(rig, channel, payload):
    """Like ``write_all`` but survives the channel hard-failing mid-way."""

    def writer(env):
        buf = ByteBuffer.wrap(payload)
        while buf.has_remaining():
            if channel.errored or channel.closed:
                return "error"
            try:
                n = yield channel.write(buf)
            except RubinError:
                return "error"
            if n == 0:
                yield env.timeout(20e-6)
        return "done"

    return rig.env.process(writer(rig.env))


def sequential_drain(rig, channel, count, size, results):
    """Read ``count`` messages one after the other (reads must not be
    issued concurrently: like the Reptor endpoint, one loop owns the
    receive side of a channel)."""

    def drain(env):
        for _ in range(count):
            data = yield read_message(rig, channel, size)
            results.append(data)

    return rig.env.process(drain(rig.env))


def flow_rig(**overrides):
    """A rig with few receive buffers so credit exhausts quickly."""
    defaults = dict(
        buffer_size=4096,
        num_recv_buffers=4,
        num_send_buffers=8,
        post_batch=2,
    )
    defaults.update(overrides)
    return RubinRig(config=RubinConfig(**defaults))


class TestCreditStall:
    def test_slow_consumer_stalls_sender_without_error(self):
        rig = flow_rig()
        client, server = rig.establish()
        payload = b"\xbe" * 1024
        writers = [write_all(rig, client, payload) for _ in range(8)]

        # Nobody reads: the sender burns its advertised credit (one per
        # posted receive buffer) and then stalls gracefully.
        rig.run_for(20e-3)
        assert not client.errored
        assert not server.errored
        assert client.credit_stalls.value > 0
        # Flow control kept the sender inside the receiver's provisioning:
        # the RNR machinery never fired.
        assert rig.fabric.host("server").nic.rnr_naks.value == 0
        assert any(not w.triggered for w in writers)

        # Draining the receiver reposts buffers, re-advertises credit and
        # unblocks the writers.
        received = []
        drained = sequential_drain(rig, server, 8, len(payload), received)
        rig.run_for(50e-3)
        assert all(w.triggered for w in writers)
        assert drained.triggered
        assert received == [payload] * 8
        assert len(client.credit_stall_time) >= 1

    def test_unblock_watcher_fires_on_credit_grant(self):
        rig = flow_rig()
        client, server = rig.establish()
        fired = []
        client.add_unblock_watcher(lambda: fired.append(rig.env.now))
        payload = b"\x11" * 512
        writers = [write_all(rig, client, payload) for _ in range(6)]
        rig.run_for(10e-3)
        assert client.credit_stalls.value > 0
        assert not fired
        received = []
        drained = sequential_drain(rig, server, 6, len(payload), received)
        rig.run_for(50e-3)
        assert fired, "credit grant must wake registered watchers"
        assert all(w.triggered for w in writers)
        assert drained.triggered

    def test_default_window_never_stalls(self):
        # The default provisioning (Figure-4 regime: window smaller than
        # the buffer count) never exhausts credit — the fast path is
        # untouched by flow control.
        rig = RubinRig()
        client, server = rig.establish()
        payload = b"\x77" * 2048
        writer = write_all(rig, client, payload)
        reader = read_message(rig, server, len(payload))
        rig.run_for(10e-3)
        assert writer.triggered and reader.triggered
        assert client.credit_stalls.value == 0
        assert client.pool_stalls.value == 0


class TestRnr:
    def test_rnr_retry_then_recover(self):
        # Without flow control a temporarily slow reader triggers RNR
        # NAKs; the retry budget absorbs them and the transfer completes.
        # Every NAKed packet in the backlog burns one budget unit per
        # retransmit round, so over-subscribe the 4 receive buffers by
        # just one message to stay comfortably inside rnr_retry=7.
        rig = flow_rig(
            flow_control=False, rnr_retry=7, min_rnr_timer=500e-6
        )
        client, server = rig.establish()
        payload = b"\xab" * 1024
        writers = [write_all(rig, client, payload) for _ in range(5)]
        received = []

        def late_reader(env):
            yield env.timeout(1e-3)
            for _ in range(5):
                data = yield read_message(rig, server, len(payload))
                received.append(data)

        rig.env.process(late_reader(rig.env))
        rig.run_for(100e-3)
        assert all(w.triggered for w in writers)
        assert received == [payload] * 5
        assert rig.fabric.host("server").nic.rnr_naks.value > 0
        assert rig.fabric.host("client").nic.rnr_retries.value > 0
        assert rig.fabric.host("client").nic.rnr_exhausted.value == 0
        assert not client.errored

    def test_rnr_exhaustion_hard_fails_channel(self):
        # The contrast scenario: no flow control, no reader, a small RNR
        # budget — the legacy failure mode the tentpole guards against.
        rig = flow_rig(
            flow_control=False, rnr_retry=2, min_rnr_timer=200e-6
        )
        client, server = rig.establish()
        payload = b"\xcd" * 1024
        for _ in range(8):
            tolerant_writer(rig, client, payload)
        rig.run_for(50e-3)
        assert client.errored
        assert client.last_error == "RNR_RETRY_EXC_ERR"
        assert rig.fabric.host("client").nic.rnr_exhausted.value >= 1
        assert rig.fabric.host("server").nic.rnr_naks.value >= 3

    def test_rnr_exhaustion_triggers_supervisor_redial(self):
        rig = flow_rig(
            flow_control=False, rnr_retry=2, min_rnr_timer=200e-6
        )
        server = rig.serve()
        accepted = []
        auto_accept(rig, server, accepted)
        client = rig.dial()
        rig.run_for(5e-3)
        assert client.established
        supervisor = ChannelSupervisor(
            rig.env,
            policy=SupervisorPolicy(
                base_delay=100e-6, max_delay=1e-3, connect_timeout=2e-3, seed=1
            ),
        )
        supervisor.supervise(client)
        payload = b"\xef" * 1024
        for _ in range(8):
            tolerant_writer(rig, client, payload)
        rig.run_for(100e-3)
        # The channel died of RNR exhaustion and was re-dialed.
        assert supervisor.reconnects.value >= 1
        assert client.established
        assert client.reconnects >= 1
        assert len(accepted) >= 2


class TestBufferPoolTryAcquire:
    def test_try_acquire_returns_none_without_raising(self):
        rig = flow_rig()
        device = rig.client_dev
        pool = BufferPool(device, device.alloc_pd(), 2, 1024, name="t")
        first = pool.try_acquire()
        second = pool.try_acquire()
        assert first is not None and second is not None
        # Exhausted: the non-raising probe reports None — it must never
        # surface the RubinError the raising acquire() throws.
        assert pool.try_acquire() is None
        first.release()
        assert pool.try_acquire() is first

    def test_acquire_still_raises_when_exhausted(self):
        rig = flow_rig()
        device = rig.client_dev
        pool = BufferPool(device, device.alloc_pd(), 1, 1024, name="t")
        pool.acquire()
        with pytest.raises(RubinError, match="exhausted"):
            pool.acquire()
