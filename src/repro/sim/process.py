"""Simulation processes: generators driven by the event kernel.

A process wraps a generator that yields :class:`~repro.sim.events.Event`
objects.  Whenever a yielded event is processed, the kernel resumes the
generator, sending in the event's value (or throwing its exception).  A
process is itself an event that triggers when the generator finishes, so
processes can wait for each other, be composed with ``AllOf``/``AnyOf`` and
be interrupted.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import PENDING, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["Process", "Drive", "ProcessGenerator"]

#: Type alias for the generators that implement process bodies.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process (and the event of its termination)."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ):
        if type(generator) is not GeneratorType and (
            not hasattr(generator, "throw") or not hasattr(generator, "send")
        ):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if running
        #: right now or finished).
        self._target: Optional[Event] = None
        #: Human-readable name used in reprs and error messages.
        self.name = name or getattr(generator, "__name__", "process")

        # Kick the generator off on the next kernel step at the current
        # time.  URGENT priority guarantees the bootstrap runs before any
        # interrupt scheduled later in the same instant, so the generator
        # has started before an Interrupt can be thrown into it.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._value = None
        # Inlined env.schedule(bootstrap, priority=URGENT): process creation
        # is on the hot path (every cpu.execute spawns one).  Urgent
        # entries go to the kernel's far lane.
        env._eid += 1
        env._far.push((env._now, 0, env._eid, bootstrap))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process stops waiting on its current target (the target stays
        subscribed but resuming is suppressed) and is resumed with the
        interrupt on the next kernel step.  Interrupting a finished process
        is an error; interrupting a process twice before it runs delivers
        both interrupts in order.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        env = self.env
        env._eid += 1
        env._far.push((env._now, 0, env._eid, interrupt_event))

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self._value is not PENDING:
            # The process already finished (e.g. an interrupt raced with the
            # target event).  Nothing to deliver.
            return
        if event is not self._target:
            if isinstance(event._value, Interrupt):
                # Detach from the current target so its later processing
                # does not resume us a second time.
                if self._target is not None and self._target.callbacks is not None:
                    try:
                        self._target.callbacks.remove(self._resume)
                    except ValueError:  # pragma: no cover - defensive
                        pass
            elif self._target is not None:
                # Stale callback from an event we stopped waiting on.
                return

        self._target = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event._defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if isinstance(next_target, Event) and next_target.env is env:
            self._target = next_target
            callbacks = next_target.callbacks
            if callbacks is not None:
                # Inlined Event.subscribe fast path: pending or
                # triggered-but-unprocessed target.
                callbacks.append(self._resume)
            else:
                # Already processed: subscribe() schedules a proxy event.
                next_target.subscribe(self._resume)
            return

        if not isinstance(next_target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {next_target!r}, "
                "which is not an Event"
            )
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return

        self.fail(
            SimulationError(
                f"process {self.name!r} yielded an event from a "
                "different environment"
            )
        )

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state} at {id(self):#x}>"


class Drive(Event):
    """A stripped-down generator driver for hot internal loops.

    Pushes exactly the agenda entries a :class:`Process` would — one
    URGENT bootstrap at creation, one NORMAL completion when the
    generator returns — so swapping a Process for a Drive never changes a
    schedule.  What it drops is everything those loops never use:
    interrupt delivery, target tracking, ``active_process`` bookkeeping
    and the yielded-value type checks.  Use it only for generators that

    * are never interrupted,
    * only yield fresh (pending, same-environment) events, and
    * let exceptions propagate (a raising generator surfaces through the
      kernel immediately instead of failing the process event).
    """

    __slots__ = ("_generator",)

    def __init__(self, env: "Environment", generator: ProcessGenerator):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._advance)
        bootstrap._ok = True
        bootstrap._value = None
        env._eid += 1
        env._far.push((env._now, 0, env._eid, bootstrap))

    def _advance(self, event: Event) -> None:
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            # Inlined Event.succeed — the completion event a finished
            # Process pushes.
            self._value = stop.value
            env = self.env
            env._eid += 1
            env._dq.append((env._now, 1, env._eid, self))
            return
        target.callbacks.append(self._advance)
