"""The BFT client.

Submits operations to the replica group and accepts a result once ``f+1``
replicas sent matching replies (at least one of them is honest).  Follows
PBFT's client protocol: send to the suspected leader first; on timeout,
retransmit to *all* replicas, which forward to the leader and — if the
leader is faulty — eventually trigger a view change.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.bft.messages import Busy, Reply, Request, decode, encode
from repro.errors import BftError
from repro.reptor import ReptorConnection, ReptorEndpoint
from repro.rubin import SupervisorPolicy
from repro.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Environment, Event

__all__ = ["BftClient"]


class BftClient:
    """A client of the replicated service."""

    def __init__(
        self,
        client_id: str,
        endpoint: ReptorEndpoint,
        replica_ids: List[str],
        f: int,
        retry_timeout: float = 20e-3,
        backoff_policy: Optional[SupervisorPolicy] = None,
    ):
        if f < 0:
            raise BftError("f must be >= 0")
        self.client_id = client_id
        self.endpoint = endpoint
        self.env: "Environment" = endpoint.env
        self.replica_ids = sorted(replica_ids)
        self.f = f
        self.retry_timeout = retry_timeout
        self._connections: Dict[str, ReptorConnection] = {}
        self._next_timestamp = 1
        self._reply_votes: Dict[int, Dict[bytes, set]] = {}
        self._accepted: Dict[int, "Event"] = {}
        self._view_hint = 0
        # Overload handling: the supervisor's backoff policy doubles as
        # the client retry policy (same jittered exponential shape, same
        # seeded determinism).  The per-client seed string desynchronises
        # clients that were all shed by the same overloaded replica.
        self._backoff = (
            backoff_policy if backoff_policy is not None else SupervisorPolicy()
        )
        self._backoff_rng = random.Random(f"{self._backoff.seed}:{client_id}")
        #: Sticky: set the first time f+1 replicas shed one of our
        #: requests.  Until then the invoke loop waits on exactly the
        #: same event set as a build without admission control, so
        #: default (never-overloaded) schedules are bit-identical.
        self._saw_busy = False
        self._busy_votes: Dict[int, set] = {}
        self._busy_signal: Dict[int, "Event"] = {}
        self.running = True

        # Metrics.
        self.invocations = 0
        self.retransmissions = 0
        self.busy_backoffs = 0

    # -- wiring ------------------------------------------------------------

    def connect_all(self, port: int) -> "Event":
        """Dial every replica; event triggers when all links are up."""

        def dialing():
            for replica_id in self.replica_ids:
                connection = yield self.endpoint.connect(
                    replica_id, port, peer_name=replica_id
                )
                self._connections[replica_id] = connection
                self.env.process(
                    self._receive_loop(connection),
                    name=f"{self.client_id}<-{replica_id}.rx",
                )
            return self

        return self.env.process(dialing(), name=f"{self.client_id}.dial")

    def _receive_loop(self, connection: ReptorConnection):
        while self.running and not connection.closed:
            try:
                raw = yield connection.receive()
            except BftError:
                return
            try:
                message = decode(raw)
            except BftError:
                connection.close()
                return
            if isinstance(message, Reply):
                self._on_reply(message)
            elif isinstance(message, Busy):
                self._on_busy(message)

    # -- invocation ---------------------------------------------------------

    def _leader_hint(self, timestamp: int) -> str:
        """Replica addressed first for a request stamped ``timestamp``.

        The suspected leader of the view we last heard about; the COP
        client overrides this with the partition-aware per-group hint.
        """
        return self.replica_ids[self._view_hint % len(self.replica_ids)]

    def invoke(self, operation: bytes) -> "Event":
        """Submit ``operation``; event value is the accepted result."""
        return self.env.process(
            self._invoke_proc(operation), name=f"{self.client_id}.invoke"
        )

    def _invoke_proc(self, operation: bytes):
        timestamp = self._next_timestamp
        self._next_timestamp += 1
        self.invocations += 1
        request = Request(
            client_id=self.client_id, timestamp=timestamp, operation=operation
        )
        raw = encode(request)
        accepted = self.env.event()
        self._accepted[timestamp] = accepted
        self._reply_votes[timestamp] = {}

        # Root span of the request's causal trace.  The binding lets the
        # replicas re-associate the decoded Request (framing loses object
        # identity) with this trace.
        tracer = get_tracer(self.env)
        root = None
        ctx = None
        if tracer.enabled:
            root = tracer.start_trace(
                "bft.request",
                layer="client",
                track=self.client_id,
                client_id=self.client_id,
                timestamp=timestamp,
                nbytes=len(operation),
            )
            ctx = root.context
            tracer.bind(("bft.request", self.client_id, timestamp), ctx)

        leader = self._leader_hint(timestamp)
        connection = self._connections.get(leader)
        if connection is not None and not connection.closed:
            yield connection.send(raw, trace_ctx=ctx)

        backoff_attempt = 0
        while not accepted.triggered:
            timer = self.env.timeout(self.retry_timeout)
            waiters = [accepted, timer]
            if self._saw_busy:
                # Only once overload has ever been observed does the
                # busy waiter join the event set (see _saw_busy above).
                busy_signal = self._busy_signal.get(timestamp)
                if busy_signal is None or busy_signal.triggered:
                    busy_signal = self.env.event()
                    self._busy_signal[timestamp] = busy_signal
                waiters.append(busy_signal)
            yield self.env.any_of(waiters)
            if accepted.triggered:
                break
            busy_signal = self._busy_signal.get(timestamp)
            if busy_signal is not None and busy_signal.triggered:
                # f+1 replicas shed this request: the group really is
                # overloaded.  Back off (jittered exponential) and retry
                # to the leader only — broadcasting would add load.
                self.busy_backoffs += 1
                self._busy_votes.pop(timestamp, None)
                yield self.env.timeout(
                    self._backoff.delay(backoff_attempt, self._backoff_rng)
                )
                backoff_attempt += 1
                if accepted.triggered:
                    break
                leader = self._leader_hint(timestamp)
                connection = self._connections.get(leader)
                if connection is not None and not connection.closed:
                    yield connection.send(raw, trace_ctx=ctx)
                continue
            # Timeout: broadcast to all replicas (PBFT client fallback).
            self.retransmissions += 1
            for connection in self._connections.values():
                if not connection.closed:
                    yield connection.send(raw, trace_ctx=ctx)
        result = accepted.value
        del self._accepted[timestamp]
        del self._reply_votes[timestamp]
        self._busy_votes.pop(timestamp, None)
        self._busy_signal.pop(timestamp, None)
        if root is not None:
            root.end(result_bytes=len(result) if result is not None else 0)
            tracer.unbind(("bft.request", self.client_id, timestamp))
        return result

    def _on_reply(self, reply: Reply) -> None:
        if reply.client_id != self.client_id:
            return
        votes = self._reply_votes.get(reply.timestamp)
        accepted = self._accepted.get(reply.timestamp)
        if votes is None or accepted is None or accepted.triggered:
            return
        voters = votes.setdefault(reply.result, set())
        voters.add(reply.replica_id)
        self._view_hint = max(self._view_hint, reply.view)
        if len(voters) >= self.f + 1:
            accepted.succeed(reply.result)

    def _on_busy(self, busy: Busy) -> None:
        if busy.client_id != self.client_id:
            return
        accepted = self._accepted.get(busy.timestamp)
        if accepted is None or accepted.triggered:
            return
        voters = self._busy_votes.setdefault(busy.timestamp, set())
        voters.add(busy.replica_id)
        self._view_hint = max(self._view_hint, busy.view)
        if len(voters) >= self.f + 1:
            # At least one honest replica shed the request: genuine
            # overload, not a Byzantine replica crying wolf.
            self._saw_busy = True
            signal = self._busy_signal.get(busy.timestamp)
            if signal is not None and not signal.triggered:
                signal.succeed()

    def close(self) -> None:
        """Close all replica connections."""
        self.running = False
        for connection in self._connections.values():
            connection.close()

    def __repr__(self) -> str:
        return f"<BftClient {self.client_id} invocations={self.invocations}>"
