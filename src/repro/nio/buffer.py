"""A Java-NIO-style ``ByteBuffer``.

RUBIN "recreates the behavior of the non-blocking Java NIO" (paper,
Section III), and both the NIO baseline and the RUBIN channels exchange
data through these buffers, so the read/write call sites look exactly like
the Java code they model.

The semantics follow ``java.nio.ByteBuffer``: a buffer has a *capacity*, a
*position* (next index to read/write) and a *limit* (first index that must
not be touched).  ``flip()`` switches from filling to draining,
``compact()`` switches back preserving unread bytes.
"""

from __future__ import annotations

from repro.errors import RubinError
from repro.sim.copystats import COPYSTATS

__all__ = ["ByteBuffer", "BufferOverflow", "BufferUnderflow"]


class BufferOverflow(RubinError):
    """Write past the buffer's limit."""


class BufferUnderflow(RubinError):
    """Read past the buffer's limit."""


class ByteBuffer:
    """Fixed-capacity byte buffer with position/limit bookkeeping."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise RubinError(f"negative capacity {capacity}")
        self._data = bytearray(capacity)
        self._capacity = capacity
        self._position = 0
        self._limit = capacity
        #: Owner's promise that the bytes between position and limit stay
        #: unchanged until the transport signals completion for any write
        #: that gathered them (staging rings set this; see
        #: ``MemoryRegion.stable``).  Channels use it to decide between a
        #: zero-copy gather view and an owned snapshot.
        self.stable_until_completion = False

    # -- factories ----------------------------------------------------------

    @classmethod
    def allocate(cls, capacity: int) -> "ByteBuffer":
        """A zeroed buffer of ``capacity`` bytes, ready for filling."""
        return cls(capacity)

    @classmethod
    def wrap(cls, data: bytes) -> "ByteBuffer":
        """A buffer containing ``data``, ready for draining."""
        buf = cls(len(data))
        if COPYSTATS.enabled:
            COPYSTATS.copy(len(data))
        buf._data[:] = data
        buf._position = 0
        buf._limit = len(data)
        return buf

    # -- bookkeeping ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total byte capacity (immutable)."""
        return self._capacity

    @property
    def position(self) -> int:
        """Index of the next byte to read or write."""
        return self._position

    @position.setter
    def position(self, value: int) -> None:
        if not 0 <= value <= self._limit:
            raise RubinError(
                f"position {value} outside [0, limit={self._limit}]"
            )
        self._position = value

    @property
    def limit(self) -> int:
        """First index that must not be read or written."""
        return self._limit

    @limit.setter
    def limit(self, value: int) -> None:
        if not 0 <= value <= self._capacity:
            raise RubinError(f"limit {value} outside [0, capacity={self._capacity}]")
        self._limit = value
        self._position = min(self._position, value)

    def remaining(self) -> int:
        """Bytes between position and limit."""
        return self._limit - self._position

    def has_remaining(self) -> bool:
        """Whether any bytes remain between position and limit."""
        return self._position < self._limit

    # -- mode switches ---------------------------------------------------------

    def clear(self) -> "ByteBuffer":
        """Reset for filling: position 0, limit = capacity."""
        self._position = 0
        self._limit = self._capacity
        return self

    def flip(self) -> "ByteBuffer":
        """Switch from filling to draining: limit = position, position 0."""
        self._limit = self._position
        self._position = 0
        return self

    def rewind(self) -> "ByteBuffer":
        """Re-read from the start without changing the limit."""
        self._position = 0
        return self

    def compact(self) -> "ByteBuffer":
        """Move unread bytes to the front and switch to filling mode."""
        unread = self._data[self._position : self._limit]
        self._data[: len(unread)] = unread
        self._position = len(unread)
        self._limit = self._capacity
        return self

    # -- data access -----------------------------------------------------------

    def put(self, data: bytes) -> "ByteBuffer":
        """Write ``data`` at the position, advancing it."""
        if len(data) > self.remaining():
            raise BufferOverflow(
                f"put of {len(data)} bytes exceeds remaining {self.remaining()}"
            )
        if COPYSTATS.enabled:
            COPYSTATS.copy(len(data))
        self._data[self._position : self._position + len(data)] = data
        self._position += len(data)
        return self

    def get(self, nbytes: int | None = None) -> bytes:
        """Read ``nbytes`` (default: all remaining) from the position."""
        if nbytes is None:
            nbytes = self.remaining()
        if nbytes > self.remaining():
            raise BufferUnderflow(
                f"get of {nbytes} bytes exceeds remaining {self.remaining()}"
            )
        if COPYSTATS.enabled:
            COPYSTATS.copy(nbytes)
        # Single copy: slicing a memoryview is free; bytes() owns the copy.
        out = bytes(memoryview(self._data)[self._position : self._position + nbytes])
        self._position += nbytes
        return out

    def peek(self, nbytes: int | None = None) -> bytes:
        """Like :meth:`get` but without advancing the position."""
        if nbytes is None:
            nbytes = self.remaining()
        if nbytes > self.remaining():
            raise BufferUnderflow(
                f"peek of {nbytes} bytes exceeds remaining {self.remaining()}"
            )
        if COPYSTATS.enabled:
            COPYSTATS.copy(nbytes)
        return bytes(memoryview(self._data)[self._position : self._position + nbytes])

    def peek_view(self, nbytes: int | None = None) -> memoryview:
        """Zero-copy window over the next ``nbytes`` (position unchanged).

        The view aliases the backing array: it is only valid until the
        buffer is next mutated, and the caller must release it (or let it
        go) before the buffer is compacted or resized.
        """
        if nbytes is None:
            nbytes = self.remaining()
        if nbytes > self.remaining():
            raise BufferUnderflow(
                f"peek_view of {nbytes} bytes exceeds remaining {self.remaining()}"
            )
        return memoryview(self._data)[self._position : self._position + nbytes]

    def array(self) -> bytearray:
        """The backing array (shared, like Java's ``array()``)."""
        return self._data

    def __len__(self) -> int:
        return self._capacity

    def __repr__(self) -> str:
        return (
            f"<ByteBuffer pos={self._position} lim={self._limit} "
            f"cap={self._capacity}>"
        )
