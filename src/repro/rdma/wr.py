"""Work requests: the descriptors posted to queue pairs.

"These WRs provide information about the data to be sent (send request) or
received (receive requests)" (paper, Section II-A).  A scatter/gather
element (:class:`Sge`) names a slice of a registered memory region by its
lkey; an inline send instead embeds the payload in the WQE itself, which
is the paper's low-latency optimization for small messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RdmaError
from repro.rdma.mr import MemoryRegion, RemoteAddress
from repro.rdma.verbs import Opcode

__all__ = ["Sge", "SendWorkRequest", "RecvWorkRequest"]


@dataclass(slots=True)
class Sge:
    """A scatter/gather element: (memory region, offset, length)."""

    mr: MemoryRegion
    offset: int = 0
    length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length is None:
            self.length = self.mr.length - self.offset
        if self.offset < 0 or self.length < 0:
            raise RdmaError(f"negative SGE geometry ({self.offset}, {self.length})")


@dataclass(slots=True)
class SendWorkRequest:
    """A work request for the send queue (SEND / RDMA_WRITE / RDMA_READ).

    Attributes
    ----------
    wr_id:
        Application cookie returned in the matching work completion.
    opcode:
        :attr:`Opcode.SEND`, :attr:`Opcode.RDMA_WRITE` or
        :attr:`Opcode.RDMA_READ`.
    sge:
        Local buffer slice — the gather source for SEND/WRITE, the scatter
        destination for READ.  ``None`` only for inline sends.
    inline_data:
        Payload embedded in the WQE (SEND/WRITE only, bounded by the
        device's ``max_inline``).  The buffer is reusable immediately
        after posting and the RNIC skips the gather DMA — the latency
        optimization of the paper's Section IV.
    remote:
        (rkey, offset) for one-sided opcodes.
    signaled:
        Whether a successful completion generates a CQE.  Unsignaled sends
        (selective signaling) reduce completion overhead but their SQ slot
        is only recycled when a *later signaled* WR completes — posting
        unsignaled forever wedges the queue, the misconfiguration trap the
        paper warns about ("RDMA performance can easily decrease... with
        ill-advised configuration").
    """

    wr_id: int
    opcode: Opcode
    sge: Optional[Sge] = None
    inline_data: Optional[bytes] = None
    remote: Optional[RemoteAddress] = None
    signaled: bool = True
    #: Out-of-band trace context: copied onto every packet this WR emits
    #: and into its work completion.  Purely observational.
    trace_ctx: Optional[object] = None
    #: Owned copy of the gather source taken at post time for non-stable
    #: memory regions.  Application buffers may be mutated the moment
    #: post_send returns; the snapshot pins the bytes the wire carries so
    #: in-flight and retransmitted packets can never observe the mutation.
    #: Stable regions (pool/staging memory recycled only on completion)
    #: skip it and gather zero-copy views instead.
    snapshot: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.opcode is Opcode.RECV:
            raise RdmaError("RECV is not a send-queue opcode")
        if self.inline_data is not None and self.sge is not None:
            raise RdmaError("use either inline_data or an SGE, not both")
        if self.inline_data is None and self.sge is None:
            raise RdmaError("a send WR needs a payload source")
        if self.opcode in (Opcode.RDMA_WRITE, Opcode.RDMA_READ):
            if self.remote is None:
                raise RdmaError(f"{self.opcode.value} needs a remote address")
        if self.opcode is Opcode.RDMA_READ and self.inline_data is not None:
            raise RdmaError("RDMA_READ cannot be inline")

    @property
    def length(self) -> int:
        """Payload byte count."""
        if self.inline_data is not None:
            return len(self.inline_data)
        assert self.sge is not None and self.sge.length is not None
        return self.sge.length


@dataclass(slots=True)
class RecvWorkRequest:
    """A work request for the receive queue.

    The receiver "decides in which buffer to place the data" — each
    incoming SEND consumes exactly one posted receive WR, which is why the
    paper stresses allocating enough receive requests (RUBIN posts them in
    pre-registered batches).
    """

    wr_id: int
    sge: Sge = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.sge is None:
            raise RdmaError("a recv WR needs a destination SGE")
