"""Chrome trace-event export: schema validity and mapping details."""

import json

import pytest

from repro.trace import (
    TraceError,
    Tracer,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)


class FakeEnv:
    def __init__(self):
        self.now = 0.0


def small_tracer():
    env = FakeEnv()
    tracer = Tracer(env)
    root = tracer.start_trace("request", layer="client", track="c0")
    env.now = 1e-6
    child = tracer.start_span("qp.send", layer="qp", parent=root, track="r0")
    env.now = 3e-6
    child.end()
    tracer.instant("mark", layer="bft", parent=root, track="r0")
    env.now = 5e-6
    root.end()
    return tracer


class TestExport:
    def test_validates_against_schema(self):
        events = chrome_trace_events(small_tracer())
        validate_chrome_trace(events)

    def test_metadata_announces_process_and_threads(self):
        events = chrome_trace_events(small_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert thread_names == {"c0", "r0"}

    def test_complete_event_microsecond_units(self):
        events = chrome_trace_events(small_tracer())
        qp = next(e for e in events if e["name"] == "qp.send")
        assert qp["ph"] == "X"
        assert qp["ts"] == pytest.approx(1.0)  # 1e-6 s -> 1 us
        assert qp["dur"] == pytest.approx(2.0)

    def test_zero_duration_becomes_instant(self):
        events = chrome_trace_events(small_tracer())
        mark = next(e for e in events if e["name"] == "mark")
        assert mark["ph"] == "i"
        assert mark["s"] == "t"

    def test_trace_and_span_ids_ride_in_args(self):
        events = chrome_trace_events(small_tracer())
        qp = next(e for e in events if e["name"] == "qp.send")
        root = next(e for e in events if e["name"] == "request")
        assert qp["args"]["trace_id"] == root["args"]["trace_id"]
        assert qp["args"]["parent_id"] == root["args"]["span_id"]
        assert qp["args"]["layer"] == "qp"

    def test_timestamps_sorted(self):
        events = chrome_trace_events(small_tracer())
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_open_spans_skipped_by_default(self):
        env = FakeEnv()
        tracer = Tracer(env)
        tracer.start_span("dangling", layer="qp")
        assert chrome_trace_events(tracer) == [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro simulation"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": "qp"},
            },
        ]

    def test_include_open_marks_them(self):
        tracer = Tracer(FakeEnv())
        tracer.start_span("dangling", layer="qp")
        events = chrome_trace_events(tracer, include_open=True)
        dangling = next(e for e in events if e["name"] == "dangling")
        assert dangling["ph"] == "i"
        assert dangling["args"]["open"] is True

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        events = write_chrome_trace(small_tracer(), str(path))
        document = json.loads(path.read_text())
        assert document["traceEvents"] == events
        validate_chrome_trace(document["traceEvents"])


class TestHostGrouping:
    def hosted_tracer(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client", track="client")
        env.now = 1e-6
        link = tracer.start_span(
            "frame", layer="link", parent=root, track="client->server"
        )
        env.now = 2e-6
        link.end()
        nic = tracer.start_span(
            "rnr", layer="nic", parent=root, track="server.nic"
        )
        env.now = 3e-6
        nic.end()
        other = tracer.start_span(
            "misc", layer="misc", parent=root, track="supervisor"
        )
        env.now = 4e-6
        other.end()
        env.now = 5e-6
        root.end()
        return tracer

    def events(self):
        return chrome_trace_events(
            self.hosted_tracer(), hosts=("client", "server")
        )

    def test_one_process_per_host(self):
        events = self.events()
        processes = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert processes["repro simulation"] == 1
        assert processes["client"] == 2
        assert processes["server"] == 3

    def test_tracks_grouped_under_their_hosts(self):
        events = self.events()
        pid_of_track = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert pid_of_track["client"] == 2  # exact host match
        assert pid_of_track["client->server"] == 2  # link -> sender
        assert pid_of_track["server.nic"] == 3  # host.suffix
        assert pid_of_track["supervisor"] == 1  # unmatched -> default

    def test_span_events_carry_host_pid(self):
        events = self.events()
        frame = next(e for e in events if e["name"] == "frame")
        assert frame["pid"] == 2

    def test_hosted_export_validates(self):
        validate_chrome_trace(self.events())

    def test_without_hosts_everything_is_default_process(self):
        events = chrome_trace_events(self.hosted_tracer())
        assert {e["pid"] for e in events} == {1}


class TestValidator:
    def test_rejects_missing_keys(self):
        with pytest.raises(TraceError, match="missing"):
            validate_chrome_trace([{"name": "x", "ph": "X", "pid": 1}])

    def test_rejects_unmatched_duration_events(self):
        event = {"name": "x", "ph": "B", "pid": 1, "tid": 1, "ts": 0}
        with pytest.raises(TraceError, match="unmatched"):
            validate_chrome_trace([event])

    def test_rejects_unknown_phase(self):
        event = {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0}
        with pytest.raises(TraceError, match="unknown phase"):
            validate_chrome_trace([event])

    def test_rejects_negative_timestamps(self):
        event = {"name": "x", "ph": "i", "pid": 1, "tid": 1, "ts": -1.0}
        with pytest.raises(TraceError, match="bad ts"):
            validate_chrome_trace([event])

    def test_rejects_missing_duration(self):
        event = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0}
        with pytest.raises(TraceError, match="bad dur"):
            validate_chrome_trace([event])

    def test_rejects_unsorted_timestamps(self):
        events = [
            {"name": "a", "ph": "i", "pid": 1, "tid": 1, "ts": 2.0},
            {"name": "b", "ph": "i", "pid": 1, "tid": 1, "ts": 1.0},
        ]
        with pytest.raises(TraceError, match="not sorted"):
            validate_chrome_trace(events)

    def test_accepts_counter_events(self):
        validate_chrome_trace(
            [
                {
                    "name": "cpu", "ph": "C", "pid": 1, "tid": 0,
                    "ts": 0.0, "args": {"value": 0.5},
                }
            ]
        )

    def test_rejects_counter_without_numeric_value(self):
        for args in ({}, {"value": "high"}, {"value": True}):
            event = {
                "name": "cpu", "ph": "C", "pid": 1, "tid": 0,
                "ts": 0.0, "args": args,
            }
            with pytest.raises(TraceError, match="counter"):
                validate_chrome_trace([event])

    def test_rejects_metadata_without_name(self):
        event = {
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {},
        }
        with pytest.raises(TraceError, match="args.name"):
            validate_chrome_trace([event])
