#!/usr/bin/env python3
"""Figure 2, narrated: the five-step event flow of the RUBIN selector.

Walks through exactly the interaction the paper's Figure 2 diagrams —
channel registration, selection keys, the blocking select(), the hybrid
event queue, and event-to-channel matching — printing each step as it
happens in simulated time.

Run:  python examples/selector_walkthrough.py
"""

from repro.bench.calibration import build_testbed
from repro.nio import ByteBuffer
from repro.rdma import ConnectionManager
from repro.rubin import (
    OP_CONNECT,
    OP_RECEIVE,
    RubinChannel,
    RubinSelector,
    RubinServerChannel,
)


def main() -> None:
    bed = build_testbed()
    env = bed.env
    server_cm = ConnectionManager(bed.server.stack("rdma"))
    client_cm = ConnectionManager(bed.client.stack("rdma"))

    server_channel = RubinServerChannel(bed.server.stack("rdma"), server_cm, 4791)
    selector = RubinSelector.open(bed.server)

    def stamp(text):
        print(f"  t={env.now * 1e6:7.2f}us  {text}")

    def server(env):
        # (1) Accepted RDMA channels register with the selector, stating
        #     the events they are interested in.
        key = selector.register(server_channel, OP_CONNECT)
        stamp(f"step 1: registered server channel, interest=OP_CONNECT")
        # (2) The registration result is a selection key holding the
        #     interest set — the channel is now 'selectable'.
        stamp(f"step 2: got selection key id={key.key_id}")
        # (3) select() blocks indefinitely while there is no I/O event.
        stamp("step 3: select() blocks waiting for events...")
        n = yield selector.select()
        # (4) A connection event was copied onto the hybrid event queue
        #     and the event manager notified the selector.
        stamp(f"step 4: selector woke up, {n} channel(s) ready")
        # (5) The selector matched the event's ID against its keys and
        #     updated the matching key's ready set.
        ready = selector.selected_keys()[0]
        stamp(
            f"step 5: key id={ready.key_id} ready "
            f"(is_connectable={ready.is_connectable()})"
        )

        accepted = server_channel.accept()
        data_key = selector.register(accepted, OP_RECEIVE)
        stamp(f"accepted -> new channel id={accepted.channel_id}, "
              "interest=OP_RECEIVE")

        yield selector.select()
        ready = selector.selected_keys()[0]
        stamp(
            f"completion event matched key id={ready.key_id} "
            f"(is_receivable={ready.is_receivable()})"
        )
        buffer = ByteBuffer.allocate(256)
        n = yield accepted.read(buffer)
        buffer.flip()
        stamp(f"read {n}B: {buffer.get()!r}")

    def client(env):
        channel = RubinChannel.connect(
            bed.client.stack("rdma"), client_cm, "server", 4791
        )
        while not channel.established:
            yield env.timeout(1e-6)
        stamp("client connected; sending a message")
        out = ByteBuffer.wrap(b"event for the hybrid queue")
        while out.has_remaining():
            yield channel.write(out)

    print("RUBIN selector walkthrough (paper, Figure 2):")
    done = env.process(server(env))
    env.process(client(env))
    env.run(until=done)
    print("done: connection and completion events both flowed through the")
    print("hybrid event queue to the single selector thread.")


if __name__ == "__main__":
    main()
