"""Consensus-oriented parallelization throughput benchmark (``--fig cop``).

One sweep point runs an open-loop request burst against a BFT cluster
with ``group_count`` independent ordering pipelines and reports
committed-request throughput plus client-observed latency.  The sweep
holds everything else fixed — transport, payload, batch ceiling, the
adaptive-batching controller — so the only variable is how many
consensus groups shard the sequence space.

The regime is deliberately signature-like: ``handler_cost`` is two
orders of magnitude above the MAC-authenticator default, which makes
protocol-message processing the bottleneck.  A single group serializes
every handler through one pipeline process; ``G`` groups spread the
same message load over ``G`` processes (one core each, CPU permitting),
which is exactly the parallelization the COP design argues for.  The
shape check asserts the headline claim: at four groups the cluster
commits at least twice the single-group request rate without giving up
median latency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.bft import BftCluster, BftConfig
from repro.errors import ReproError
from repro.rubin import RubinConfig
from repro.sim import SummaryStats

__all__ = [
    "COP_GROUP_COUNTS",
    "run_cop_point",
    "run_cop",
    "check_cop_shape",
]

#: The default sweep: sequential baseline, then doubling group counts.
COP_GROUP_COUNTS = (1, 2, 4)

#: Signature-regime handler cost (seconds of CPU per protocol message).
#: The MAC default is 0.3us; authenticating with signatures costs tens
#: of microseconds — the regime where ordering CPU dominates and COP's
#: per-group pipelines pay off (paper Section II-C).
SIGNATURE_HANDLER_COST = 50e-6


def run_cop_point(
    group_count: int,
    transport: str = "rubin",
    payload_bytes: int = 64,
    messages: int = 256,
    num_clients: int = 4,
    batch_size: int = 8,
    handler_cost: float = SIGNATURE_HANDLER_COST,
    rubin_config: Optional[RubinConfig] = None,
    tracer=None,
    sampler=None,
) -> Dict[str, Any]:
    """One COP sweep point; returns a JSON-ready baseline record.

    ``tracer``/``sampler`` hook the run up to ``repro.obs`` (per-request
    span trees with group-tagged phases, metrics time series); both
    default off.
    """
    if messages % num_clients:
        raise ReproError("messages must divide evenly across clients")
    config = BftConfig(
        group_count=group_count,
        batch_size=batch_size,
        adaptive_batching=True,
        batch_size_min=1,
        handler_cost=handler_cost,
        view_change_timeout=400e-3,
        checkpoint_interval=8,
        log_window=16,
        merge_fill_interval=200e-6,
    )
    cluster = BftCluster(
        transport=transport,
        config=config,
        num_clients=num_clients,
        rubin_config=rubin_config,
        tracer=tracer,
    )
    cluster.start()
    env = cluster.env
    if sampler is not None:
        sampler.bind(env, cluster.metrics_registry())
        sampler.start()

    per_client = messages // num_clients
    payload = b"\x5a" * payload_bytes
    latencies_us: List[float] = []
    pending = []
    start = env.now

    def submit(client, index):
        submitted = env.now
        result = yield client.invoke(b"PUT k%d=" % index + payload)
        if result is None:
            raise ReproError("invocation returned no result")
        latencies_us.append((env.now - submitted) * 1e6)

    for c in range(num_clients):
        client = cluster.client(c)
        for i in range(per_client):
            pending.append(
                env.process(
                    submit(client, c * per_client + i),
                    name=f"cop.c{c}.{i}",
                )
            )
    env.run(until=env.all_of(pending))
    duration = env.now - start
    if sampler is not None:
        sampler.sample_now()
        sampler.stop()

    snapshot = cluster.metrics_registry().snapshot()
    per_group_committed = {
        str(g): snapshot[f"bft.group.{g}.committed"]
        for g in range(group_count)
    }
    batch_limits = [
        pipeline._batcher.limit
        for replica in cluster.replicas.values()
        for pipeline in replica.group_pipelines()
        if getattr(pipeline, "_batcher", None) is not None
    ]
    violations = (
        len(cluster.audit.violations) if cluster.audit.enabled else 0
    )
    return {
        "figure_point": "cop",
        "transport": transport,
        "group_count": group_count,
        "payload_bytes": payload_bytes,
        "messages": messages,
        "num_clients": num_clients,
        "batch_size": batch_size,
        "handler_cost": handler_cost,
        "latency_us": SummaryStats(latencies_us).to_dict(),
        "committed_rps": messages / duration if duration > 0 else 0.0,
        "duration_s": duration,
        "per_group_committed": per_group_committed,
        "max_batch_limit": max(batch_limits) if batch_limits else 0,
        "audit_violations": violations,
    }


def run_cop(
    group_counts: Sequence[int] = COP_GROUP_COUNTS,
    messages: int = 256,
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """The COP sweep: one point per group count, all else equal."""
    return [
        run_cop_point(group_count, messages=messages, **kwargs)
        for group_count in group_counts
    ]


def check_cop_shape(points: Sequence[Dict[str, Any]]) -> List[str]:
    """Assert the sweep reproduces the COP headline claims.

    Returns human-readable facts; raises :class:`ReproError` when the
    shape is wrong.  Requires a G=1 and a G=4 point measured at the
    same batch ceiling.
    """
    by_group = {point["group_count"]: point for point in points}
    if 1 not in by_group or 4 not in by_group:
        raise ReproError("cop sweep needs both G=1 and G=4 points")
    base, parallel = by_group[1], by_group[4]
    if base["batch_size"] != parallel["batch_size"]:
        raise ReproError(
            "cop shape check compares unequal batch ceilings: "
            f"{base['batch_size']} vs {parallel['batch_size']}"
        )
    speedup = parallel["committed_rps"] / base["committed_rps"]
    p50_base = base["latency_us"]["p50"]
    p50_parallel = parallel["latency_us"]["p50"]
    facts = [
        f"G=1 committed {base['committed_rps']:,.0f} req/s "
        f"(p50 {p50_base:,.0f} us)",
        f"G=4 committed {parallel['committed_rps']:,.0f} req/s "
        f"(p50 {p50_parallel:,.0f} us)",
        f"throughput speedup {speedup:.2f}x at equal batch ceiling",
    ]
    if speedup < 2.0:
        raise ReproError(
            f"G=4 speedup {speedup:.2f}x is below the required 2x"
        )
    if p50_parallel > 1.25 * p50_base:
        raise ReproError(
            f"G=4 median latency {p50_parallel:,.0f} us exceeds "
            f"1.25x the G=1 median {p50_base:,.0f} us"
        )
    for point in points:
        if point["audit_violations"]:
            raise ReproError(
                f"G={point['group_count']} run recorded "
                f"{point['audit_violations']} audit violations"
            )
    return facts
