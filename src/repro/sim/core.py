"""The discrete-event kernel: agenda, clock, and run loop.

:class:`Environment` owns simulated time.  Everything else in this library —
links, NICs, TCP stacks, RDMA devices, BFT replicas — is a set of processes
and events scheduled on one environment.

Determinism
-----------

The agenda is a binary heap ordered by ``(time, priority, sequence)``.  The
monotonically increasing sequence number makes event processing order fully
deterministic for identical inputs, which the benchmark harness relies on:
every figure in EXPERIMENTS.md reproduces bit-for-bit.
"""

from __future__ import annotations

import gc as _gc
import heapq
from typing import Any, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

__all__ = ["Environment", "Infinity", "TieBreakPolicy"]

#: Convenience alias used for "run forever" bounds.
Infinity = float("inf")


class TieBreakPolicy:
    """Chooses which of several same-instant agenda entries runs next.

    The kernel orders its agenda by ``(time, priority, sequence)``; the
    sequence number is a pure tie-break and any permutation of entries
    that share ``(time, priority)`` is a legal schedule.  Installing a
    policy via :meth:`Environment.set_tiebreak` exposes exactly those
    choice points: whenever two or more entries are tied on
    ``(time, priority)``, the kernel collects them in sequence order and
    asks the policy which one to dispatch.

    ``choose`` receives the current time and the tied entries (each a
    ``(time, priority, sequence, event)`` tuple, sequence-ordered) and
    returns the index of the entry to dispatch; the rest are pushed back
    with their original sequence numbers, so index ``0`` everywhere
    reproduces the kernel's native order bit-for-bit.  Out-of-range
    indices fall back to ``0``.

    With no policy installed the kernel never materializes ready sets
    and runs the original fast loop untouched.
    """

    def choose(self, now: float, entries: list) -> int:
        return 0


class Environment:
    """A simulation environment: clock, agenda, and factory methods.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.  The library uses seconds
        as the unit convention throughout (latencies are reported in
        microseconds by dividing at the edges).
    """

    #: Priority for ordinary events.
    NORMAL = 1
    #: Priority for urgent events (interrupts), processed before normal
    #: events scheduled for the same time.
    URGENT = 0

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Optional TieBreakPolicy consulted on equal-(time, priority)
        # ready sets; None selects the untouched fast run loop.
        self._tiebreak: Optional[TieBreakPolicy] = None
        # Observational tracing hook: ``repro.trace.install_tracer`` sets
        # this; ``repro.trace.get_tracer`` falls back to a no-op tracer
        # while it is None.  The kernel itself never reads it.
        self.tracer = None

    # -- clock & agenda -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Put ``event`` on the agenda ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``Infinity`` if none."""
        return self._queue[0][0] if self._queue else Infinity

    def set_tiebreak(self, policy: Optional[TieBreakPolicy]) -> None:
        """Install (or clear) the equal-timestamp tie-break policy."""
        self._tiebreak = policy

    def _pop_choice(self) -> tuple[float, int, int, Event]:
        """Pop the next agenda entry, letting the policy break ties.

        Entries tied on ``(time, priority)`` are collected in sequence
        order and the installed policy picks one; the others go back on
        the heap with their original sequence numbers so a policy that
        always answers 0 is indistinguishable from no policy at all.
        """
        queue = self._queue
        entry = heapq.heappop(queue)
        if queue and queue[0][0] == entry[0] and queue[0][1] == entry[1]:
            when, prio = entry[0], entry[1]
            tied = [entry]
            while queue and queue[0][0] == when and queue[0][1] == prio:
                tied.append(heapq.heappop(queue))
            index = self._tiebreak.choose(when, tied)
            if not 0 <= index < len(tied):
                index = 0
            entry = tied.pop(index)
            for other in tied:
                heapq.heappush(queue, other)
        return entry

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if self._tiebreak is not None:
            if not self._queue:
                raise SimulationError("agenda is empty")
            when, _prio, _eid, event = self._pop_choice()
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else SimulationError(
                    repr(exc)
                )
            return
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("agenda is empty") from None

        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface it loudly.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the agenda empties;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        if until is None:
            stop_at = Infinity
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = Infinity
            stop_event = until
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
        else:
            stop_at = float(until)
            if stop_at <= self._now:
                raise SimulationError(
                    f"until={stop_at} is not in the future (now={self._now})"
                )
            stop_event = None

        # Merged run loop: the step() body is inlined with the queue and
        # heappop held in locals.  The loop retires hundreds of thousands
        # of events per sweep, so attribute lookups and the extra frame per
        # step dominate host time; semantics are identical to
        # ``while self._queue: ... self.step() ...`` above.  Two copies of
        # the loop so the common cases pay neither the stop_event nor the
        # stop_at comparison per event.
        queue = self._queue
        heappop = heapq.heappop
        # The loop allocates a handful of small objects per event and
        # frees nearly all of them by reference counting — the event
        # graph is deliberately acyclic (holds point at requests and
        # timeouts, never back), so generation-0 passes triggered every
        # ~2000 allocations find almost nothing cyclic to reclaim.  At
        # sweep scale those passes cost more host time than the event
        # callbacks themselves.  Pause cyclic collection while the loop
        # runs; the previous state is restored on every exit path, and
        # anything the loop leaked in a cycle is picked up by the next
        # threshold-triggered collection after re-enable.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            if self._tiebreak is not None:
                return self._run_loop_policy(stop_event, stop_at)
            return self._run_loop(queue, heappop, stop_event, stop_at)
        finally:
            if gc_was_enabled:
                _gc.enable()

    def _run_loop(
        self,
        queue: list,
        heappop: Any,
        stop_event: Optional[Event],
        stop_at: float,
    ) -> Any:
        if stop_event is not None:
            while queue:
                entry = heappop(queue)
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                # Single-callback events are the overwhelmingly common
                # case; calling directly skips the iterator setup.
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface it loudly.
                    exc = event._value
                    raise exc if isinstance(
                        exc, BaseException
                    ) else SimulationError(repr(exc))
                if stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    stop_event._defused = True
                    raise stop_event._value
        else:
            while queue:
                if queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                entry = heappop(queue)
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface it loudly.
                    exc = event._value
                    raise exc if isinstance(
                        exc, BaseException
                    ) else SimulationError(repr(exc))

        if stop_event is not None:
            raise SimulationError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered"
            )
        if stop_at is not Infinity:
            self._now = stop_at
        return None

    def _run_loop_policy(
        self, stop_event: Optional[Event], stop_at: float
    ) -> Any:
        """Run loop variant used when a tie-break policy is installed.

        Mirrors :meth:`_run_loop` exactly, except every pop goes through
        :meth:`_pop_choice`.  Kept separate so the no-policy fast path
        stays byte-identical to the pinned fingerprints.
        """
        queue = self._queue
        while queue:
            if stop_event is None and queue[0][0] > stop_at:
                self._now = stop_at
                return None
            entry = self._pop_choice()
            self._now = entry[0]
            event = entry[3]
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else SimulationError(
                    repr(exc)
                )
            if stop_event is not None and stop_event.callbacks is None:
                if stop_event._ok:
                    return stop_event._value
                stop_event._defused = True
                raise stop_event._value

        if stop_event is not None:
            raise SimulationError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered"
            )
        if stop_at is not Infinity:
            self._now = stop_at
        return None

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return (
            f"<Environment now={self._now!r} pending={len(self._queue)} "
            f"at {id(self):#x}>"
        )
