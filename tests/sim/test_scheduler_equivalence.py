"""Heap and calendar schedulers must dispatch identical schedules.

The calendar queue replaces the kernel's binary heap as a *pure*
performance substitution: the agenda's total order ``(when, priority,
event id)`` is part of the reproduction's determinism contract (every
pinned schedule fingerprint depends on it), so the two schedulers must
pop exactly the same sequence for any workload.  These property tests
drive both modes with randomized ``(delay, priority)`` mixes — including
zero-delay NORMAL pushes (the deque fast lane), URGENT entries, and
events scheduled from inside callbacks (which land below the calendar's
current bucket boundary and take the insort slow path) — and require
bit-identical dispatch traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.events import Event

_DELAYS = st.floats(min_value=0.0, max_value=2e-3, allow_nan=False)
_OPS = st.lists(
    st.tuples(_DELAYS, st.integers(min_value=0, max_value=1)),
    min_size=1,
    max_size=80,
)


def _run_schedule(mode, ops, cascade):
    """Dispatch ``ops`` under ``mode``; return the (time, id) trace."""
    env = Environment(scheduler=mode)
    trace = []

    def fire(event, index):
        trace.append((env.now, index))
        if cascade and index % 3 == 0:
            # Schedule children from inside a callback: a short-delay
            # child lands in the calendar's *current* bucket (insort
            # path), a zero-delay NORMAL child rides the deque lane.
            child = Event(env)
            child._ok = True
            child._value = None
            child.subscribe(
                lambda e, i=index: trace.append((env.now, ("child", i)))
            )
            env.schedule(child, delay=(index % 5) * 1e-7, priority=1)
    for index, (delay, priority) in enumerate(ops):
        event = Event(env)
        event._ok = True
        event._value = None
        event.subscribe(lambda e, i=index: fire(e, i))
        env.schedule(event, delay=delay, priority=priority)
    env.run()
    return trace


@given(ops=_OPS)
@settings(max_examples=60, deadline=None)
def test_heap_and_calendar_pop_identical_order(ops):
    assert _run_schedule("heap", ops, False) == _run_schedule(
        "calendar", ops, False
    )


@given(ops=_OPS)
@settings(max_examples=60, deadline=None)
def test_schedulers_agree_with_callback_scheduled_children(ops):
    assert _run_schedule("heap", ops, True) == _run_schedule(
        "calendar", ops, True
    )


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=5e-4), min_size=1, max_size=40
    )
)
@settings(max_examples=40, deadline=None)
def test_timeout_fast_path_matches_heap(delays):
    """Timeout's inlined calendar push must agree with the heap path."""

    def run(mode):
        env = Environment(scheduler=mode)
        fired = []

        def proc(env):
            for i, delay in enumerate(delays):
                t = env.timeout(delay, value=i)
                t.subscribe(lambda e: fired.append((env.now, e.value)))
                if i % 4 == 0:
                    yield env.timeout(delay / 2)
        env.process(proc(env))
        env.run()
        return fired

    assert run("heap") == run("calendar")
