"""Client-request partitioning across consensus groups.

Every request carries a stable identity ``(client_id, timestamp)`` —
the same key the replicas use for dedup and reply caching — so a
partitioner that is a pure function of that key can be evaluated
independently by clients (to pick the right group leader) and by
replicas (to route inbound requests), with no extra wire metadata.

Partitioners are pluggable by name via ``BftConfig.partitioner``; the
default is a deterministic SHA-256 hash of the request id, which is
hash-seed independent (``PYTHONHASHSEED`` never leaks into schedules).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

__all__ = [
    "HashPartitioner",
    "ClientAffinityPartitioner",
    "PARTITIONERS",
    "make_partitioner",
]


class HashPartitioner:
    """Deterministic hash of the full request id ``(client_id, timestamp)``.

    Spreads even a single client's stream across all groups, which is
    what maximizes ordering parallelism for few-client workloads.
    """

    name = "hash"

    def __init__(self, group_count: int) -> None:
        if group_count < 1:
            raise ValueError(f"group_count must be >= 1, got {group_count}")
        self.group_count = group_count

    def group_of(self, client_id: str, timestamp: int) -> int:
        if self.group_count == 1:
            return 0
        digest = hashlib.sha256(
            f"{client_id}:{timestamp}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") % self.group_count


class ClientAffinityPartitioner:
    """All requests of one client land in the same group.

    Preserves per-client FIFO execution order across the merge (a
    client's requests stay in one group's sequence), trading ordering
    parallelism for session affinity — useful when the application
    relies on per-client operation order.
    """

    name = "client"

    def __init__(self, group_count: int) -> None:
        if group_count < 1:
            raise ValueError(f"group_count must be >= 1, got {group_count}")
        self.group_count = group_count

    def group_of(self, client_id: str, timestamp: int) -> int:
        if self.group_count == 1:
            return 0
        digest = hashlib.sha256(client_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.group_count


PARTITIONERS: Dict[str, Callable[[int], object]] = {
    HashPartitioner.name: HashPartitioner,
    ClientAffinityPartitioner.name: ClientAffinityPartitioner,
}


def make_partitioner(name: str, group_count: int):
    """Instantiate the partitioner registered under ``name``."""
    try:
        factory = PARTITIONERS[name]
    except KeyError:
        known = ", ".join(sorted(PARTITIONERS))
        raise ValueError(
            f"unknown partitioner {name!r} (known: {known})"
        ) from None
    return factory(group_count)
