"""Suite-wide audit conformance.

Any test that installs an audit manager (every ``BftCluster`` with the
default ``audit=True`` does) is also an invariant check: after the test
body passes, the fixture below drains the managers it installed and
fails the test if any reported a violation it did not declare via
``expect_violations``.
"""

import pytest

from repro.audit import drain_active_audits, unexpected_violations


@pytest.fixture(autouse=True)
def _audit_conformance():
    drain_active_audits()  # isolate from any leftovers
    yield
    for manager in drain_active_audits():
        violations = unexpected_violations(manager)
        assert not violations, (
            "audit violations in a test not marked expect_violations:\n"
            + "\n".join(f"  {v}" for v in violations)
        )
