"""The flight recorder: a bounded ring of structured events per layer.

Every audited subsystem appends small structured events (simulated time,
layer, event name, subject, key fields) to one :class:`FlightRecorder`.
The ring is bounded, so an arbitrarily long run costs constant memory;
when an auditor fires — or the consensus watchdog detects a stall — the
recent history is dumped as a self-contained JSON *post-mortem* that can
be read without the simulation, and replayed against the seed.

The post-mortem document format is versioned
(:data:`POSTMORTEM_SCHEMA`) and checkable with
:func:`validate_postmortem`, so tests pin the schema and tooling can
rely on it.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ReproError

__all__ = [
    "AuditError",
    "FlightEvent",
    "FlightRecorder",
    "POSTMORTEM_SCHEMA",
    "postmortem_document",
    "validate_postmortem",
    "write_postmortem",
]

#: Version tag carried by every post-mortem dump.
POSTMORTEM_SCHEMA = "repro.audit/postmortem/v1"


class AuditError(ReproError):
    """Misuse of the audit subsystem (bad configs, malformed dumps...)."""


def _jsonable(value: Any) -> Any:
    """Render one event field JSON-ready (bytes become short hex)."""
    if isinstance(value, bytes):
        return value.hex()[:32]
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class FlightEvent:
    """One recorded observation: who did what, where, and when."""

    __slots__ = ("index", "time", "layer", "event", "subject", "fields")

    def __init__(
        self,
        index: int,
        time: float,
        layer: str,
        event: str,
        subject: Optional[str],
        fields: Dict[str, Any],
    ):
        self.index = index
        self.time = time
        self.layer = layer
        self.event = event
        self.subject = subject
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "time": self.time,
            "layer": self.layer,
            "event": self.event,
            "subject": self.subject,
            "fields": {k: _jsonable(v) for k, v in self.fields.items()},
        }

    def __repr__(self) -> str:
        return (
            f"<FlightEvent #{self.index} t={self.time:.6f} "
            f"{self.layer}.{self.event} {self.subject or ''}>"
        )


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightEvent`.

    Purely observational and allocation-light: recording never touches
    the simulation.  ``total`` counts every event ever recorded, so
    ``dropped`` exposes how much history the ring has already shed.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise AuditError(f"ring capacity must be >= 1 ({capacity})")
        self.capacity = capacity
        self._ring: Deque[FlightEvent] = deque(maxlen=capacity)
        self.total = 0

    def record(
        self,
        time: float,
        layer: str,
        event: str,
        subject: Optional[str] = None,
        **fields: Any,
    ) -> FlightEvent:
        entry = FlightEvent(self.total, time, layer, event, subject, fields)
        self.total += 1
        self._ring.append(entry)
        return entry

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound so far."""
        return self.total - len(self._ring)

    def events(self, layer: Optional[str] = None) -> List[FlightEvent]:
        """Retained events, oldest first (optionally one layer)."""
        if layer is None:
            return list(self._ring)
        return [e for e in self._ring if e.layer == layer]

    def layer_counts(self) -> Dict[str, int]:
        """Retained events per layer."""
        counts: Dict[str, int] = {}
        for entry in self._ring:
            counts[entry.layer] = counts.get(entry.layer, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {len(self._ring)}/{self.capacity} "
            f"total={self.total}>"
        )


def postmortem_document(
    recorder: FlightRecorder,
    reason: str,
    time: float,
    audit_name: str,
    violation: Optional[Dict[str, Any]] = None,
    violations: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Build the self-contained JSON dump for one trigger."""
    return {
        "schema": POSTMORTEM_SCHEMA,
        "audit": audit_name,
        "reason": reason,
        "time": time,
        "violation": violation,
        "violations": list(violations or []),
        "events": [entry.to_dict() for entry in recorder.events()],
        "events_dropped": recorder.dropped,
        "layer_counts": recorder.layer_counts(),
    }


def validate_postmortem(document: Dict[str, Any]) -> Dict[str, Any]:
    """Check ``document`` against the v1 schema; returns it."""
    if not isinstance(document, dict):
        raise AuditError("post-mortem must be a JSON object")
    if document.get("schema") != POSTMORTEM_SCHEMA:
        raise AuditError(
            f"unknown post-mortem schema {document.get('schema')!r}"
        )
    for field, kind in (
        ("audit", str),
        ("reason", str),
        ("time", (int, float)),
        ("violations", list),
        ("events", list),
        ("events_dropped", int),
        ("layer_counts", dict),
    ):
        if not isinstance(document.get(field), kind):
            raise AuditError(f"post-mortem field {field!r} missing or wrong type")
    if document["violation"] is not None and not isinstance(
        document["violation"], dict
    ):
        raise AuditError("post-mortem 'violation' must be null or an object")
    for entry in document["events"]:
        if not isinstance(entry, dict):
            raise AuditError("post-mortem events must be objects")
        for field, kind in (
            ("index", int),
            ("time", (int, float)),
            ("layer", str),
            ("event", str),
            ("fields", dict),
        ):
            if not isinstance(entry.get(field), kind):
                raise AuditError(
                    f"post-mortem event field {field!r} missing or wrong type"
                )
    return document


def write_postmortem(document: Dict[str, Any], path: str) -> str:
    """Write one validated dump to ``path``; returns the path."""
    validate_postmortem(document)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
