"""Unit tests for the CPU cost model and core scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.net import Cpu, CpuCosts
from repro.sim import Environment


def test_costs_defaults_are_positive():
    costs = CpuCosts()
    assert costs.copy_per_byte > 0
    assert costs.syscall > 0
    assert costs.post_wr < costs.syscall  # kernel bypass must be cheaper


def test_costs_reject_negative_values():
    with pytest.raises(ConfigurationError):
        CpuCosts(syscall=-1.0)


def test_copy_seconds_scales_linearly():
    costs = CpuCosts(copy_per_byte=1e-9)
    assert costs.copy_seconds(1000) == pytest.approx(1e-6)
    assert costs.copy_seconds(0) == 0.0


def test_copy_negative_bytes_raises():
    with pytest.raises(ConfigurationError):
        CpuCosts().copy_seconds(-1)


def test_execute_charges_duration():
    env = Environment()
    cpu = Cpu(env, cores=1)

    def work(env):
        yield cpu.execute(5e-6)
        return env.now

    p = env.process(work(env))
    assert env.run(until=p) == pytest.approx(5e-6)


def test_zero_duration_execute_completes_immediately():
    env = Environment()
    cpu = Cpu(env, cores=1)

    def work(env):
        yield cpu.execute(0.0)
        return env.now

    p = env.process(work(env))
    assert env.run(until=p) == 0.0


def test_single_core_serializes_work():
    env = Environment()
    cpu = Cpu(env, cores=1)
    finish = []

    def work(env, tag):
        yield cpu.execute(1e-6)
        finish.append((tag, env.now))

    env.process(work(env, "a"))
    env.process(work(env, "b"))
    env.run()
    assert finish[0] == ("a", pytest.approx(1e-6))
    assert finish[1] == ("b", pytest.approx(2e-6))


def test_multi_core_overlaps_work():
    env = Environment()
    cpu = Cpu(env, cores=2)
    finish = []

    def work(env, tag):
        yield cpu.execute(1e-6)
        finish.append((tag, env.now))

    env.process(work(env, "a"))
    env.process(work(env, "b"))
    env.run()
    assert finish[0][1] == pytest.approx(1e-6)
    assert finish[1][1] == pytest.approx(1e-6)


def test_negative_duration_raises():
    env = Environment()
    cpu = Cpu(env)
    with pytest.raises(ConfigurationError):
        cpu.execute(-1.0)


def test_invalid_core_count_raises():
    env = Environment()
    with pytest.raises(ConfigurationError):
        Cpu(env, cores=0)


def test_utilization_tracks_busy_fraction():
    env = Environment()
    cpu = Cpu(env, cores=1)

    def work(env):
        yield cpu.execute(1.0)
        yield env.timeout(1.0)  # idle
        yield cpu.execute(1.0)

    env.process(work(env))
    env.run()
    assert env.now == pytest.approx(3.0)
    assert cpu.utilization() == pytest.approx(2.0 / 3.0)


def test_copy_uses_cost_model():
    env = Environment()
    cpu = Cpu(env, cores=1, costs=CpuCosts(copy_per_byte=1e-9))

    def work(env):
        yield cpu.copy(10_000)
        return env.now

    p = env.process(work(env))
    assert env.run(until=p) == pytest.approx(1e-5)
