"""Property-based tests for verbs-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdma import Access

from tests.rdma.conftest import RdmaPair, recv_wr, send_wr


@settings(deadline=None, max_examples=20)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=12_000), min_size=1, max_size=8)
)
def test_messages_arrive_intact_and_in_order(sizes):
    rig = RdmaPair()
    payloads = [bytes((i + j) % 256 for j in range(size)) for i, size in enumerate(sizes)]
    src = rig.register("left", max(sizes))
    dsts = [rig.register("right", size) for size in sizes]
    rig.right_qp.post_recv_batch([recv_wr(i, dst) for i, dst in enumerate(dsts)])
    for i, payload in enumerate(payloads):
        src.buffer[: len(payload)] = payload
        rig.left_qp.post_send(send_wr(100 + i, src, length=len(payload)))
        # Wait for this message's recv completion before reusing src.
        wcs = rig.poll_until(rig.right_recv_cq)
        assert wcs[0].wr_id == i
        assert wcs[0].byte_len == len(payload)
        assert bytes(dsts[i].buffer[: len(payload)]) == payload


@settings(deadline=None, max_examples=20)
@given(
    signal_mask=st.lists(st.booleans(), min_size=1, max_size=12),
)
def test_cqe_count_equals_signaled_count(signal_mask):
    # Make the last WR signaled so all slots eventually retire.
    signal_mask = signal_mask + [True]
    rig = RdmaPair()
    src = rig.register("left", 16, fill=b"s" * 16)
    dst = rig.register("right", 16)
    rig.right_qp.post_recv_batch(
        [recv_wr(i, dst) for i in range(len(signal_mask))]
    )
    for i, signaled in enumerate(signal_mask):
        rig.left_qp.post_send(send_wr(i, src, length=4, signaled=signaled))
    rig.run_for(10e-3)
    wcs = rig.left_send_cq.poll(max_entries=64)
    assert len(wcs) == sum(signal_mask)
    assert [w.wr_id for w in wcs] == [i for i, s in enumerate(signal_mask) if s]
    assert rig.left_qp.send_queue_free == rig.left_qp.caps.max_send_wr


@settings(deadline=None, max_examples=15)
@given(
    size=st.integers(min_value=1, max_value=30_000),
    seed=st.integers(min_value=0, max_value=2**31),
    loss_rate=st.floats(min_value=0.0, max_value=0.08),
)
def test_send_reliability_under_random_loss(size, seed, loss_rate):
    import random

    rng = random.Random(seed)
    from repro.rdma import QpCapabilities

    rig = RdmaPair(
        caps=QpCapabilities(retry_timeout=150e-6),
        drop_fn=lambda frame: rng.random() < loss_rate,
    )
    payload = bytes(i % 251 for i in range(size))
    src = rig.register("left", size, fill=payload)
    dst = rig.register("right", size)
    rig.right_qp.post_recv(recv_wr(1, dst))
    rig.left_qp.post_send(send_wr(1, src))
    wcs = rig.poll_until(rig.right_recv_cq, deadline=3.0)
    assert wcs and wcs[0].ok
    assert bytes(dst.buffer) == payload


@settings(deadline=None, max_examples=20)
@given(
    offset=st.integers(min_value=0, max_value=64),
    length=st.integers(min_value=0, max_value=128),
)
def test_one_sided_write_respects_bounds(offset, length):
    from repro.rdma import Opcode, SendWorkRequest, Sge, WcStatus

    rig = RdmaPair()
    region_size = 96
    src = rig.register("left", 128, fill=b"w" * 128)
    dst = rig.register(
        "right", region_size, access=Access.LOCAL_WRITE | Access.REMOTE_WRITE
    )
    rig.left_qp.post_send(
        SendWorkRequest(
            wr_id=1,
            opcode=Opcode.RDMA_WRITE,
            sge=Sge(src, 0, length),
            remote=dst.remote_address(offset),
        )
    )
    wcs = rig.poll_until(rig.left_send_cq)
    in_bounds = offset + length <= region_size
    if in_bounds:
        assert wcs[0].status is WcStatus.SUCCESS
        assert bytes(dst.buffer[offset : offset + length]) == b"w" * length
    else:
        assert wcs[0].status is WcStatus.REM_ACCESS_ERR
        # Not a single byte may have landed.
        assert bytes(dst.buffer) == b"\x00" * region_size
