"""An epoll-style readiness facility over simulated TCP sockets.

The Java NIO selector "internally relies on epoll to check the readiness of
the channels" (paper, Section III).  This module provides that kernel-side
mechanism: register connections/listeners with an interest mask, then
``wait()`` blocks (in simulated time) until at least one registered object
is ready and returns the ready set.  The NIO selector in :mod:`repro.nio`
is a thin layer over this, exactly like the real implementation stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from repro.errors import TcpError
from repro.tcpstack.connection import TcpConnection
from repro.tcpstack.listener import TcpListener

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.host import Host
    from repro.sim import Event

__all__ = ["Epoll", "EPOLLIN", "EPOLLOUT"]

#: Interest/readiness bits (names follow the Linux API).
EPOLLIN = 0x1
EPOLLOUT = 0x4

Pollable = Union[TcpConnection, TcpListener]


class Epoll:
    """Readiness multiplexer for the simulated TCP stack."""

    def __init__(self, host: "Host"):
        self.host = host
        self.env = host.env
        self._interest: Dict[Pollable, int] = {}
        self._watchers: Dict[Pollable, object] = {}
        self._wakeup: "Event | None" = None
        self._wakeup_requested = False
        self.closed = False

    # -- registration ---------------------------------------------------

    def register(self, pollable: Pollable, events: int) -> None:
        """Watch ``pollable`` for the ``events`` mask."""
        self._check_open()
        if pollable in self._interest:
            raise TcpError(f"{pollable!r} already registered; use modify()")
        if not events:
            raise TcpError("empty interest mask")
        self._interest[pollable] = events

        def watcher() -> None:
            self._maybe_wake()

        self._watchers[pollable] = watcher
        pollable.add_watcher(watcher)

    def modify(self, pollable: Pollable, events: int) -> None:
        """Change the interest mask for an already registered object."""
        self._check_open()
        if pollable not in self._interest:
            raise TcpError(f"{pollable!r} is not registered")
        if not events:
            raise TcpError("empty interest mask")
        self._interest[pollable] = events
        self._maybe_wake()

    def unregister(self, pollable: Pollable) -> None:
        """Stop watching ``pollable``."""
        self._check_open()
        if pollable not in self._interest:
            raise TcpError(f"{pollable!r} is not registered")
        del self._interest[pollable]
        watcher = self._watchers.pop(pollable)
        pollable.remove_watcher(watcher)  # type: ignore[arg-type]

    def _check_open(self) -> None:
        if self.closed:
            raise TcpError("epoll instance is closed")

    # -- readiness ---------------------------------------------------------

    def _ready_mask(self, pollable: Pollable, interest: int) -> int:
        ready = 0
        if isinstance(pollable, TcpListener):
            if interest & EPOLLIN and pollable.acceptable:
                ready |= EPOLLIN
        else:
            if interest & EPOLLIN and pollable.readable:
                ready |= EPOLLIN
            if interest & EPOLLOUT and pollable.writable:
                ready |= EPOLLOUT
            if pollable.state == "CLOSED":
                # Error/hang-up conditions are always reported (EPOLLERR /
                # EPOLLHUP semantics): surface every requested interest so
                # the caller notices and fails its operation.
                ready |= interest
        return ready

    def poll(self) -> List[Tuple[Pollable, int]]:
        """Non-blocking snapshot of ready (object, mask) pairs."""
        self._check_open()
        ready = []
        for pollable, interest in self._interest.items():
            mask = self._ready_mask(pollable, interest)
            if mask:
                ready.append((pollable, mask))
        return ready

    def wait(self, timeout: float | None = None) -> "Event":
        """Block until something is ready; value is the ready list.

        With ``timeout`` the event triggers with ``[]`` after that many
        seconds of nothing becoming ready.  Charges the epoll_wait syscall
        plus a wake-up context switch when it actually blocked.
        """
        self._check_open()
        return self.env.process(self._wait_proc(timeout), name="epoll.wait")

    def _wait_proc(self, timeout: float | None):
        cpu = self.host.cpu
        yield cpu.execute(cpu.costs.syscall)
        ready = self.poll()
        if ready or self._wakeup_requested:
            self._wakeup_requested = False
            return ready
        deadline = None if timeout is None else self.env.now + timeout
        while True:
            self._wakeup = self.env.event()
            if deadline is None:
                yield self._wakeup
            else:
                remaining = deadline - self.env.now
                if remaining <= 0:
                    return []
                yield self.env.any_of([self._wakeup, self.env.timeout(remaining)])
            self._wakeup = None
            if self.closed:
                raise TcpError("epoll instance closed while waiting")
            yield cpu.execute(cpu.costs.context_switch)
            ready = self.poll()
            if ready or self._wakeup_requested:
                self._wakeup_requested = False
                return ready
            if deadline is not None and self.env.now >= deadline:
                return []

    def _maybe_wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def wakeup(self) -> None:
        """Force a blocked :meth:`wait` to return its current ready set
        (possibly empty) — the ``Selector.wakeup()`` mechanism."""
        self._wakeup_requested = True
        self._maybe_wake()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unregister everything and wake any waiter."""
        if self.closed:
            return
        for pollable, watcher in self._watchers.items():
            pollable.remove_watcher(watcher)  # type: ignore[arg-type]
        self._interest.clear()
        self._watchers.clear()
        self.closed = True
        self._maybe_wake()

    def __repr__(self) -> str:
        return f"<Epoll on {self.host.name} fds={len(self._interest)}>"
