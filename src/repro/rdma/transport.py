"""RoCE-style wire packets for the RC (reliable connection) transport.

The simulated transport keeps the properties protocol code depends on:

* per-direction packet sequence numbers (PSNs) with cumulative ACKs,
  NAK-based go-back-N recovery and sender retry timers;
* receiver-not-ready (RNR) NAKs when a SEND arrives and no receive work
  request is posted, with bounded retries;
* remote-access NAKs when a one-sided operation fails rkey/bounds/
  permission validation — both QPs transition to ERROR, as in IB;
* RDMA READ as a request plus a stream of response chunks reassembled by
  the requester (responses are matched by ``read_id``; a lost response
  re-triggers the idempotent request — a simplification of the IB
  response-channel PSN scheme, with identical observable behaviour on an
  in-order fabric).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.rdma.verbs import ACK_WIRE_BYTES, ROCE_HEADER_BYTES

__all__ = ["PacketType", "RocePacket"]

_packet_ids = itertools.count(1)


class PacketType:
    """Wire packet kinds (BTH opcodes, collapsed to what we need)."""

    SEND_FIRST = "SEND_FIRST"
    SEND_MIDDLE = "SEND_MIDDLE"
    SEND_LAST = "SEND_LAST"
    SEND_ONLY = "SEND_ONLY"
    WRITE_FIRST = "WRITE_FIRST"
    WRITE_MIDDLE = "WRITE_MIDDLE"
    WRITE_LAST = "WRITE_LAST"
    WRITE_ONLY = "WRITE_ONLY"
    READ_REQUEST = "READ_REQUEST"
    READ_RESPONSE = "READ_RESPONSE"
    ACK = "ACK"
    NAK_SEQUENCE = "NAK_SEQUENCE"
    NAK_RNR = "NAK_RNR"
    NAK_ACCESS = "NAK_ACCESS"

    #: Packet types that occupy the request PSN space.
    SEQUENCED = frozenset(
        {
            SEND_FIRST,
            SEND_MIDDLE,
            SEND_LAST,
            SEND_ONLY,
            WRITE_FIRST,
            WRITE_MIDDLE,
            WRITE_LAST,
            WRITE_ONLY,
            READ_REQUEST,
        }
    )

    #: First/only packets, which begin a new message.
    STARTS_MESSAGE = frozenset({SEND_FIRST, SEND_ONLY, WRITE_FIRST, WRITE_ONLY})

    #: Last/only packets, which finish a message (and elicit an ACK).
    ENDS_MESSAGE = frozenset({SEND_LAST, SEND_ONLY, WRITE_LAST, WRITE_ONLY})


@dataclass(slots=True)
class RocePacket:
    """One RoCE packet.

    ``psn`` orders request packets per direction; ACK/NAK packets carry
    the cumulative/expected PSN in ``psn`` instead.  One-sided packets
    carry the RETH fields (``rkey``/``remote_offset``/``total_length``)
    on their first/only packet; READ traffic additionally carries
    ``read_id`` so responses match their request.
    """

    kind: str
    src_host: str
    src_qp: int
    dst_host: str
    dst_qp: int
    psn: int = 0
    payload: bytes = field(default=b"", repr=False)
    total_length: int = 0
    rkey: Optional[int] = None
    remote_offset: int = 0
    read_id: int = 0
    chunk_index: int = 0
    chunk_count: int = 0
    rnr_timer: float = 0.0
    #: Cumulative posted-receive count advertised by the responder on
    #: ACK/NAK packets (the IB AETH credit field; -1 = not carried).
    #: Rides in header bits already accounted for in ACK_WIRE_BYTES.
    credit: int = -1
    #: Out-of-band trace context (never serialized, no wire bytes).
    trace_ctx: Optional[object] = field(default=None, repr=False)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire: RoCE headers plus payload."""
        if self.kind in (
            PacketType.ACK,
            PacketType.NAK_SEQUENCE,
            PacketType.NAK_RNR,
            PacketType.NAK_ACCESS,
        ):
            return ACK_WIRE_BYTES
        extra = 16 if self.rkey is not None else 0  # RETH on one-sided ops
        return ROCE_HEADER_BYTES + extra + len(self.payload)

    def __repr__(self) -> str:
        return (
            f"<RocePacket {self.kind} {self.src_host}/qp{self.src_qp}->"
            f"{self.dst_host}/qp{self.dst_qp} psn={self.psn} "
            f"len={len(self.payload)}>"
        )
