"""Latency-breakdown math: interval unions, clipping, coverage."""

import pytest

from repro.trace import TraceError, Tracer, latency_breakdown, span_row
from repro.trace.breakdown import TraceBreakdown, _merged_length


class FakeEnv:
    def __init__(self):
        self.now = 0.0


def span_at(tracer, env, name, layer, start, end, parent=None):
    env.now = start
    span = tracer.start_span(name, layer=layer, parent=parent)
    env.now = end
    span.end()
    return span


class TestMergedLength:
    def test_empty(self):
        assert _merged_length([]) == 0.0

    def test_disjoint(self):
        assert _merged_length([(0.0, 1.0), (2.0, 3.0)]) == pytest.approx(2.0)

    def test_overlap_counted_once(self):
        assert _merged_length([(0.0, 2.0), (1.0, 3.0)]) == pytest.approx(3.0)

    def test_containment(self):
        assert _merged_length([(0.0, 4.0), (1.0, 2.0)]) == pytest.approx(4.0)


class TestTraceBreakdown:
    def test_layer_attribution_and_coverage(self):
        env = FakeEnv()
        tracer = Tracer(env)
        env.now = 0.0
        root = tracer.start_trace("req", layer="client")
        # Two overlapping link spans: union is 3us of a 10us request.
        span_at(tracer, env, "l1", "link", 1e-6, 3e-6, parent=root)
        span_at(tracer, env, "l2", "link", 2e-6, 4e-6, parent=root)
        span_at(tracer, env, "q", "qp", 6e-6, 8e-6, parent=root)
        env.now = 10e-6
        root.end()

        breakdown = TraceBreakdown(root, tracer.spans)
        assert breakdown.end_to_end == pytest.approx(10e-6)
        assert breakdown.layer_seconds["link"] == pytest.approx(3e-6)
        assert breakdown.layer_seconds["qp"] == pytest.approx(2e-6)
        assert breakdown.layer_share("link") == pytest.approx(0.3)
        assert breakdown.layer_share("missing") == 0.0
        # Coverage = union of all child spans: 3us + 2us of 10us.
        assert breakdown.coverage == pytest.approx(0.5)

    def test_spans_clipped_to_root_window(self):
        env = FakeEnv()
        tracer = Tracer(env)
        env.now = 1e-6
        root = tracer.start_trace("req", layer="client")
        # Extends past the root's end: only the inside part counts.
        span_at(tracer, env, "q", "qp", 2e-6, 9e-6, parent=root)
        env.now = 5e-6
        root.end()
        breakdown = TraceBreakdown(root, tracer.spans)
        assert breakdown.layer_seconds["qp"] == pytest.approx(3e-6)

    def test_open_child_spans_excluded_but_counted(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        env.now = 1e-6
        tracer.start_span("dangling", layer="qp", parent=root)
        env.now = 2e-6
        root.end()
        breakdown = TraceBreakdown(root, tracer.spans)
        assert breakdown.open_spans == 1
        assert "qp" not in breakdown.layer_seconds

    def test_open_root_rejected(self):
        tracer = Tracer(FakeEnv())
        root = tracer.start_trace("req", layer="client")
        with pytest.raises(TraceError):
            TraceBreakdown(root, tracer.spans)

    def test_to_dict(self):
        env = FakeEnv()
        tracer = Tracer(env)
        root = tracer.start_trace("req", layer="client")
        span_at(tracer, env, "q", "qp", 0.0, 1e-6, parent=root)
        env.now = 2e-6
        root.end()
        d = TraceBreakdown(root, tracer.spans).to_dict()
        assert d["root"] == "req"
        assert d["end_to_end_us"] == pytest.approx(2.0)
        assert d["layers"]["qp"]["share"] == pytest.approx(0.5)


class TestLatencyBreakdown:
    def build(self):
        env = FakeEnv()
        tracer = Tracer(env)
        for e2e in (10e-6, 20e-6):
            start = env.now
            root = tracer.start_trace("req", layer="client")
            span_at(
                tracer, env, "q", "qp",
                start + 1e-6, start + 1e-6 + e2e / 2, parent=root,
            )
            env.now = start + e2e
            root.end()
        return tracer

    def test_groups_by_trace(self):
        report = latency_breakdown(self.build())
        assert len(report.traces) == 2
        assert report.layers == ["qp"]
        assert report.layer_stats("qp").p50 == pytest.approx(0.5)

    def test_open_roots_skipped(self):
        tracer = self.build()
        tracer.start_trace("in-flight", layer="client")
        assert len(latency_breakdown(tracer).traces) == 2

    def test_filter_by_trace_id(self):
        tracer = self.build()
        tid = tracer.trace_ids()[0]
        report = latency_breakdown(tracer, trace_id=tid)
        assert len(report.traces) == 1
        assert report.traces[0].trace_id == tid

    def test_render_and_json(self, tmp_path):
        report = latency_breakdown(self.build())
        text = report.render()
        assert "qp" in text
        assert "coverage" in text
        path = tmp_path / "breakdown.json"
        report.to_json(str(path))
        assert path.exists()

    def test_empty_report_renders(self):
        report = latency_breakdown(Tracer(FakeEnv()))
        assert report.traces == []
        assert "no completed traces" in report.render()


class TestSpanRow:
    def test_ungrouped_span_keeps_layer_row(self):
        env = FakeEnv()
        tracer = Tracer(env)
        span = span_at(tracer, env, "bft.prepare", "bft", 0.0, 1e-6)
        assert span_row(span) == "bft"

    def test_group_attr_qualifies_row(self):
        env = FakeEnv()
        tracer = Tracer(env)
        env.now = 0.0
        span = tracer.start_span("bft.prepare", layer="bft", group=2)
        env.now = 1e-6
        span.end()
        assert span_row(span) == "bft.group.2.prepare"

    def test_name_without_layer_prefix_kept_whole(self):
        env = FakeEnv()
        tracer = Tracer(env)
        span = tracer.start_span("oddball", layer="bft", group=0)
        span.end()
        assert span_row(span) == "bft.group.0.oddball"


class TestCopGroupBreakdown:
    def test_g4_run_reports_per_group_phase_rows(self):
        """A real COP G=4 run: every group's phases get their own rows.

        Folding all four ordering pipelines into one ``bft`` row would
        hide a single slow group; the breakdown must keep them apart.
        """
        from repro.bench.cop import run_cop_point

        tracer = Tracer()
        run_cop_point(4, messages=32, num_clients=4, tracer=tracer)
        report = latency_breakdown(tracer)
        rows = set()
        for breakdown in report.traces:
            rows.update(breakdown.layer_seconds)
        for group in range(4):
            assert f"bft.group.{group}.prepare" in rows
            assert f"bft.group.{group}.commit" in rows
        # No un-grouped bft rows leak through under COP...
        assert "bft" not in rows
        rendered = report.render()
        assert "bft.group.3.prepare" in rendered

    def test_g1_rows_unchanged(self):
        """Without COP the breakdown keeps the plain per-layer rows."""
        from repro.bft import BftCluster, BftConfig

        tracer = Tracer()
        cluster = BftCluster(
            transport="rubin",
            config=BftConfig(batch_size=1, batch_delay=0.0),
            tracer=tracer,
        )
        cluster.start()
        assert cluster.invoke_and_wait(b"PUT k=v") == b"OK"
        report = latency_breakdown(tracer)
        rows = {
            row
            for breakdown in report.traces
            for row in breakdown.layer_seconds
        }
        assert "bft" in rows
        assert not any(".group." in row for row in rows)
