"""Regression tests for stack behaviours found during calibration:
delayed ACKs, window accounting, zero-window recovery, duplicate SYNs."""

import pytest

from repro.tcpstack import ACK, SYN, TcpConfig

from tests.tcpstack.conftest import TcpPair


def test_delayed_acks_halve_pure_ack_traffic():
    """Bulk transfer must generate roughly one ACK per two segments."""
    pair = TcpPair()
    client_conn, server_conn = pair.establish()
    payload = b"d" * 100_000  # ~69 segments
    acks_seen = []

    original = client_conn._process_ack

    def counting(segment):
        if not segment.data:
            acks_seen.append(segment)
        return original(segment)

    client_conn._process_ack = counting
    received = bytearray()

    def sender(env):
        yield client_conn.send(payload)

    def receiver(env):
        while len(received) < len(payload):
            data = yield server_conn.receive()
            received.extend(data)

    pair.env.process(sender(pair.env))
    p = pair.env.process(receiver(pair.env))
    pair.env.run(until=p)
    assert bytes(received) == payload
    segments = -(-len(payload) // 1460)
    # Delayed ACKs: distinctly fewer ACKs than data segments.
    assert len(acks_seen) < segments * 0.8


def test_window_accounts_for_queued_segments():
    """Advertised window must cover bytes still in the NIC ring, so an
    overcommitting sender can never force receiver-side drops."""
    pair = TcpPair(config=TcpConfig(send_buffer=1 << 20, recv_buffer=16384))
    client_conn, server_conn = pair.establish()
    payload = b"w" * 200_000
    received = bytearray()
    drops = []

    original = server_conn._process_data

    def watching(segment):
        if (
            segment.data
            and segment.seq == server_conn._rcv_nxt
            and len(segment.data) > server_conn._recv_free_space()
        ):
            drops.append(segment)
        return original(segment)

    server_conn._process_data = watching

    def sender(env):
        yield client_conn.send(payload)

    def slow_receiver(env):
        while len(received) < len(payload):
            data = yield server_conn.receive(max_bytes=2048)
            received.extend(data)
            yield env.timeout(30e-6)

    pair.env.process(sender(pair.env))
    p = pair.env.process(slow_receiver(pair.env))
    pair.env.run(until=p)
    assert bytes(received) == payload
    # Zero-window probes may be dropped (1 byte); real data never.
    assert all(len(d.data) <= 1 for d in drops)


def test_zero_window_reopen_is_prompt():
    """After a zero-window episode, transfer must resume without waiting
    out a backed-off RTO (regression: the dropped probe wedged the
    stream for tens of ms)."""
    pair = TcpPair(config=TcpConfig(send_buffer=1 << 20, recv_buffer=8192))
    client_conn, server_conn = pair.establish()
    payload = b"z" * 65536
    received = bytearray()

    def sender(env):
        yield client_conn.send(payload)

    def stall_then_drain(env):
        yield env.timeout(20e-3)  # guarantee a zero-window episode
        while len(received) < len(payload):
            data = yield server_conn.receive()
            received.extend(data)

    pair.env.process(sender(pair.env))
    p = pair.env.process(stall_then_drain(pair.env))
    start_drain = 20e-3
    pair.env.run(until=p)
    assert bytes(received) == payload
    # Once draining began, completion must take single-digit ms, not
    # multiple backed-off RTO cycles (rto=5ms; backoff would be 20ms+).
    assert pair.env.now - start_drain < 15e-3


def test_duplicate_syn_ack_is_reacked():
    """A retransmitted SYN-ACK (lost handshake ACK) must be re-ACKed by
    an established client, or the server never leaves SYN_RCVD
    (regression: this deadlocked lossy handshakes forever)."""
    pair = TcpPair()
    client_conn, server_conn = pair.establish()
    from repro.tcpstack import Segment

    acks_before = server_conn._snd_una
    dup = Segment(
        src_host="server",
        src_port=server_conn.local_port,
        dst_host="client",
        dst_port=client_conn.local_port,
        flags=SYN | ACK,
        seq=0,
        ack=1,
        window=65536,
    )
    got_ack = []
    original = server_conn._process_ack

    def watching(segment):
        got_ack.append(segment)
        return original(segment)

    server_conn._process_ack = watching
    client_conn.enqueue_segment(dup)
    pair.env.run(until=pair.env.now + 5e-3)
    assert got_ack, "client did not re-ACK the duplicate SYN-ACK"


def test_handshake_survives_each_lost_packet():
    """Drop exactly the Nth frame of the handshake for N = 1, 2, 3."""
    for nth in (1, 2, 3):
        counter = {"n": 0}

        def drop_nth(frame, nth=nth):
            counter["n"] += 1
            return counter["n"] == nth

        pair = TcpPair(config=TcpConfig(rto=1e-3), drop_fn=drop_nth)
        client_conn, server_conn = pair.establish()
        assert client_conn.is_established, f"failed with frame {nth} lost"
        assert server_conn.is_established, f"failed with frame {nth} lost"


def test_interrupt_coalescing_charges_less_cpu_for_bursts():
    """A burst of segments must cost less CPU than isolated arrivals."""
    def run(spaced):
        pair = TcpPair()
        client_conn, server_conn = pair.establish()
        busy_before = pair.server_host.cpu.tracker.busy_time()

        def sender(env):
            for _ in range(20):
                yield client_conn.send(b"x" * 1460)
                if spaced:
                    yield env.timeout(1e-3)  # isolated arrivals

        def receiver(env):
            total = 0
            while total < 20 * 1460:
                data = yield server_conn.receive()
                total += len(data)

        pair.env.process(sender(pair.env))
        p = pair.env.process(receiver(pair.env))
        pair.env.run(until=p)
        return pair.server_host.cpu.tracker.busy_time() - busy_before

    assert run(spaced=False) < run(spaced=True)
