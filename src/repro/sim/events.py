"""Event primitives for the discrete-event kernel.

The kernel follows the classic generator-coroutine design: simulation
processes are Python generators that ``yield`` :class:`Event` objects and are
resumed when those events are *processed* (their callbacks run).  The design
is deliberately close to SimPy's, because that model has proven itself for
exactly this kind of protocol simulation, but it is implemented from scratch
here and trimmed to what the RUBIN reproduction needs.

Key vocabulary
--------------

triggered
    The event has a value (or an exception) and has been scheduled; its
    callbacks *will* run at its scheduled time.
processed
    The event's callbacks have already run.  Yielding an already-processed
    event is allowed and resumes the process on the next kernel step.
ok
    Whether the event succeeded (``succeed``) or failed (``fail``).  A failed
    event re-raises its exception inside every process that waits on it.
"""

from __future__ import annotations

from bisect import insort as _insort
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.core import Environment

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Interrupt",
]


class _Pending:
    """Sentinel for "this event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event is triggered.
PENDING = _Pending()


class Interrupt(Exception):
    """Raised *inside* a process when :meth:`Process.interrupt` is called.

    The interrupt cause is available as :attr:`cause`.  Interrupts are not
    :class:`repro.errors.ReproError` subclasses on purpose: they are control
    flow, not failures, and processes are expected to catch them.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """Whatever was passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """A happening in simulated time that processes can wait for.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail` assigns
    the value and schedules the event on the environment's agenda; when the
    kernel reaches it, all registered callbacks run exactly once and the
    event becomes *processed*.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        #: The environment this event lives in.
        self.env = env
        #: Callbacks run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the agenda."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined Environment.schedule (delay 0, NORMAL priority): this is
        # the kernel's hottest call site and the indirection costs real
        # wall-clock at sweep scale.  Identical agenda entry either way;
        # zero-delay NORMAL pushes go to the kernel's FIFO lane.
        env = self.env
        env._eid += 1
        env._dq.append((env._now, 1, env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Every process waiting on this event will have ``exception`` raised
        at its ``yield``.  If *nobody* ever waits on a failed event the
        kernel re-raises the exception at the end of the step in which it
        was processed so that failures never pass silently (an event can opt
        out with :meth:`defused`).
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() needs an exception instance, got {exception!r}"
            )
        self._ok = False
        self._value = exception
        env = self.env
        env._eid += 1
        env._dq.append((env._now, 1, env._eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (chaining helper)."""
        if event._value is PENDING:
            raise SimulationError(f"cannot chain from untriggered {event!r}")
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._eid += 1
        env._dq.append((env._now, 1, env._eid, self))

    def defused(self) -> "Event":
        """Mark a failed event as handled out-of-band.

        Suppresses the "unhandled failed event" error the kernel would
        otherwise raise when a failed event is processed with no waiters.
        """
        self._defused = True
        return self

    # -- waiting ------------------------------------------------------------

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when this event is processed.

        If the event was already processed, the callback is scheduled to run
        on the immediate next kernel step (same simulated time), preserving
        the invariant that callbacks never run synchronously inside the
        subscriber's own stack frame.
        """
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            # Already processed: deliver asynchronously via a proxy event so
            # re-yielding old events behaves deterministically.
            proxy = Event(self.env)
            proxy.callbacks.append(lambda _e: callback(self))
            proxy._ok = True
            proxy._value = None
            self.env.schedule(proxy)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of simulated time from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Open-coded Event.__init__ + schedule: a Timeout is born triggered,
        # so the PENDING dance and the schedule() indirection are pure
        # overhead on the simulator's single most-allocated type.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid += 1
        far = env._far
        when = env._now + delay
        # Inlined CalendarQueue.push fast path: ~93% of timeouts on the
        # calibrated testbed land inside the bucket being served (widths
        # are sized to the NIC/CPU-cost scale), where the insert is one C
        # bisect into the current run.  The heap scheduler's lane shim
        # advertises ``_bucket_top = -inf`` so it always takes the
        # generic ``push`` branch.
        if when < far._bucket_top:
            entry = (when, 1, env._eid, self)
            cur = far._cur
            _insort(cur, entry, far._idx)
            far.head = cur[far._idx]
        else:
            far.push((when, 1, env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of the events a :class:`Condition` collected.

    Behaves like a read-only dict keyed by the original event objects, in
    the order they were passed to the condition.
    """

    __slots__ = ("events",)

    def __init__(self, events: list[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (event.value for event in self.events)

    def items(self):
        return ((event, event.value) for event in self.events)

    def todict(self) -> dict[Event, Any]:
        return {event: event.value for event in self.events}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of other events.

    ``evaluate`` receives the list of composed events and the count of
    triggered ones and returns True once the condition is satisfied.  The
    value of a processed condition is a :class:`ConditionValue` of all
    composed events that had triggered *successfully* by then.  If any
    composed event fails, the condition fails with the same exception.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._events: list[Event] = list(events)
        self._evaluate = evaluate
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            event.subscribe(self._on_event)

    def _collect_values(self) -> ConditionValue:
        return ConditionValue([e for e in self._events if e.processed and e._ok])

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluator: every composed event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Evaluator: at least one composed event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
